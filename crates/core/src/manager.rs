//! The storage budget manager (Sec 4.3 taken to its conclusion): adaptive
//! materialization promotes hot intermediates, this module walks them back
//! down when the store outgrows `MistiqueConfig::storage_budget_bytes`.
//!
//! A reclaim pass repeatedly picks the **coldest** materialized intermediate
//! — the one with the lowest γ (Eq 5), recomputed against its *current*
//! query count — and takes one step down the demotion ladder:
//!
//! ```text
//! FULL → LP_QT → 8BIT_QT → THRESHOLD_QT → DELTA → purged
//! ```
//!
//! Each demotion re-encodes the stored values under the cheaper scheme and
//! overwrites the same chunk keys (the displaced bytes become dead chunks in
//! their partitions). The DELTA rung keeps the THRESHOLD_QT scheme but asks
//! the store to re-store each chunk as a base+delta frame against a similar
//! stored chunk ([`mistique_store::DataStore::reencode_as_delta`]) — answers
//! stay bit-identical, only the physical bytes shrink; it runs at most once
//! per materialization. A purge retracts every chunk and flips
//! `materialized = false`: future queries transparently re-run the model and
//! may re-promote the intermediate through the ordinary γ test. When the
//! accounting is back under budget the pass compacts partitions whose
//! live-byte ratio dropped below [`COMPACT_LIVE_RATIO`], physically
//! reclaiming the dead bytes.
//!
//! Crash-safety discipline: the catalog on disk must stop referencing
//! demoted/purged chunks *before* compaction drops their bytes, so the pass
//! persists the manifest first and skips compaction when a stale manifest
//! exists that could not be refreshed. Each rewrite is a single atomic
//! overwrite of the partition file, so a crash at any point leaves each
//! partition in exactly its pre- or post-compaction state (see
//! `crates/store/tests/compaction.rs`).

use mistique_dataframe::{Column, ColumnData, DataFrame};
use mistique_quantize::half::encode_f16;
use mistique_quantize::{KbitQuantizer, ThresholdQuantizer};
use mistique_store::{ChunkKey, PlacementPolicy};

use crate::capture::{CaptureScheme, ValueScheme};
use crate::error::MistiqueError;
use crate::report::{DemotionRecord, ReclaimReport};
use crate::system::Mistique;

/// Partitions whose live-byte ratio is at or below this are rewritten by the
/// post-reclaim compaction (fully-dead partitions are always deleted).
pub const COMPACT_LIVE_RATIO: f64 = 0.7;

/// The next rung down the demotion ladder, or `None` when the only step
/// left is a purge.
pub fn next_demotion(scheme: ValueScheme) -> Option<ValueScheme> {
    match scheme {
        ValueScheme::Full => Some(ValueScheme::Lp),
        ValueScheme::Lp => Some(ValueScheme::Kbit { bits: 8 }),
        ValueScheme::Kbit { .. } => Some(ValueScheme::Threshold { pct: 0.995 }),
        ValueScheme::Threshold { .. } => None,
    }
}

impl Mistique {
    /// Bytes of materialized intermediates the budget accounting charges:
    /// the sum of `stored_bytes` over every `materialized` intermediate.
    /// (Physical disk usage can transiently exceed this between a demotion
    /// and the compaction that drops the displaced chunks.)
    pub fn storage_budget_used(&self) -> u64 {
        self.meta
            .model_ids()
            .iter()
            .flat_map(|id| self.meta.intermediates_of(id))
            .filter(|m| m.materialized)
            .map(|m| m.stored_bytes)
            .sum()
    }

    /// The configured storage budget (0 = unlimited).
    pub fn storage_budget(&self) -> u64 {
        self.config.storage_budget_bytes
    }

    /// Change the storage budget at runtime. Takes effect at the next
    /// materialization or explicit [`Mistique::reclaim`].
    pub fn set_storage_budget(&mut self, bytes: u64) {
        self.config.storage_budget_bytes = bytes;
    }

    /// Run a reclaim pass against the configured budget. With an unlimited
    /// budget the demotion loop is a no-op but compaction still runs,
    /// recovering bytes dead from chunk overwrites.
    pub fn reclaim(&mut self) -> Result<ReclaimReport, MistiqueError> {
        self.reclaim_to(self.config.storage_budget_bytes)
    }

    /// Run a reclaim pass against an explicit budget (the `mistique reclaim
    /// <dir> [budget]` entry point). See the module docs for the ladder and
    /// the crash-safety discipline.
    pub fn reclaim_to(&mut self, budget_bytes: u64) -> Result<ReclaimReport, MistiqueError> {
        let args = vec![("budget", budget_bytes.to_string())];
        self.audited("reclaim", args, |sys| sys.reclaim_to_impl(budget_bytes))
    }

    fn reclaim_to_impl(&mut self, budget_bytes: u64) -> Result<ReclaimReport, MistiqueError> {
        let sp = mistique_obs::span!(self.obs, "reclaim", budget = budget_bytes);
        let trace_id = sp.trace_id();
        let used_before = self.storage_budget_used();

        let mut demotions: Vec<DemotionRecord> = Vec::new();
        let mut purged: Vec<String> = Vec::new();
        // Index bytes are the cheapest bytes to reclaim: dropping an index
        // can never change an answer (queries degrade to the scan path), so
        // the pass sheds the coldest intermediates' indexes before touching
        // any data. Index bytes are accounted *on top of* the data-only
        // `storage_budget_used()`, which this phase leaves untouched.
        if budget_bytes > 0 && self.index_enabled() {
            let mut cold: Vec<(String, f64)> = Vec::new();
            for model_id in self.meta.model_ids() {
                let Some(model) = self.meta.model(&model_id) else {
                    continue;
                };
                for m in self.meta.intermediates_of(&model_id) {
                    if m.materialized {
                        cold.push((m.id.clone(), self.cost.gamma_now(model, m)));
                    }
                }
            }
            cold.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            // Load lazily first so on-disk indexes from a previous session
            // show up in the byte accounting.
            for (id, _) in &cold {
                let _ = self.index_for(id);
            }
            for (id, gamma) in cold {
                if self.storage_budget_used() + self.index_total_bytes() <= budget_bytes {
                    break;
                }
                let bytes_before = self.index_bytes_of(&id);
                if bytes_before == 0 {
                    continue;
                }
                self.index_drop(&id);
                self.obs.counter("adaptive.demotions").inc();
                demotions.push(DemotionRecord {
                    intermediate: id,
                    from: "INDEX".to_string(),
                    to: "DROPPED".to_string(),
                    bytes_before,
                    bytes_after: 0,
                    gamma,
                });
            }
        }
        if budget_bytes > 0 {
            // Ladder is finite (≤ 5 steps per intermediate: three scheme
            // demotions, one delta re-encode, one purge), but keep a hard
            // cap so a pathological accounting bug cannot spin forever.
            let mut steps_left = self.meta.n_intermediates() * 6 + 8;
            while self.storage_budget_used() > budget_bytes && steps_left > 0 {
                steps_left -= 1;
                let Some((victim, gamma)) = self.coldest_materialized() else {
                    break;
                };
                let before = self.meta.intermediate(&victim).unwrap().clone();
                match next_demotion(before.scheme.value) {
                    Some(next) => {
                        let bytes_after = self.demote_to(&victim, next)?;
                        self.obs.counter("adaptive.demotions").inc();
                        demotions.push(DemotionRecord {
                            intermediate: victim,
                            from: before.scheme.value.name(),
                            to: next.name(),
                            bytes_before: before.stored_bytes,
                            bytes_after,
                            gamma,
                        });
                    }
                    // One rung below THRESHOLD_QT and above purge: re-encode
                    // the binarized chunks as base+delta frames against
                    // similar stored chunks. The flag flips even when no
                    // chunk wins, so the ladder cannot revisit this rung.
                    None if !before.delta_encoded && self.store.delta_enabled() => {
                        let bytes_after = self.reencode_delta(&victim)?;
                        self.obs.counter("adaptive.demotions").inc();
                        demotions.push(DemotionRecord {
                            intermediate: victim,
                            from: before.scheme.value.name(),
                            to: "DELTA".to_string(),
                            bytes_before: before.stored_bytes,
                            bytes_after,
                            gamma,
                        });
                    }
                    None => {
                        self.purge_intermediate(&victim)?;
                        self.obs.counter("adaptive.purges").inc();
                        demotions.push(DemotionRecord {
                            intermediate: victim.clone(),
                            from: before.scheme.value.name(),
                            to: "PURGED".to_string(),
                            bytes_before: before.stored_bytes,
                            bytes_after: 0,
                            gamma,
                        });
                        purged.push(victim);
                    }
                }
            }
        }

        // The catalog on disk must drop demoted/purged chunk keys before
        // compaction deletes their bytes — otherwise a crash after
        // compaction could reopen through a manifest that references chunks
        // that no longer exist.
        let mut persisted = false;
        let (compaction, compaction_skipped) = match self.persist() {
            Ok(()) => {
                persisted = true;
                (Some(self.store.compact(COMPACT_LIVE_RATIO)?), None)
            }
            Err(MistiqueError::Invalid(msg)) if msg.contains("manifest serialize") => {
                // No JSON serializer in this environment. Compacting is
                // still safe when no manifest exists (nothing stale to
                // reopen through); with a stale manifest on disk, keep the
                // dead bytes rather than risk dangling references.
                if self
                    .backend
                    .exists(&self.dir.join(crate::persist::MANIFEST_FILE))
                {
                    (
                        None,
                        Some(format!("stale manifest could not be refreshed: {msg}")),
                    )
                } else {
                    self.store.flush()?;
                    (Some(self.store.compact(COMPACT_LIVE_RATIO)?), None)
                }
            }
            Err(e) => return Err(e),
        };
        // Compaction moved the accounting (partition totals, removed
        // partitions); refresh the manifest so reopen sees the final state.
        if persisted
            && compaction
                .as_ref()
                .is_some_and(|c| c.partitions_rewritten + c.partitions_removed > 0)
        {
            self.persist()?;
        }

        let elapsed = sp.finish();
        let mut report = ReclaimReport {
            seq: 0,
            budget_bytes,
            used_before,
            used_after: self.storage_budget_used(),
            demotions,
            purged,
            compaction,
            compaction_skipped,
            elapsed,
            trace_id,
        };
        self.obs
            .gauge("storage.budget_used")
            .set_u64(report.used_after);
        // The ring stamps the sequence number; hand the caller the same
        // seq its report carries in `reclaim_reports()`.
        report.seq = self.reclaims.push(report.clone());

        // Journal the pass for the flight recorder: one event per ladder
        // step, one for the compaction if it moved bytes, then a capture.
        for d in &report.demotions {
            let kind = if d.to == "PURGED" {
                "reclaim.purge"
            } else if d.to == "DELTA" {
                "reclaim.delta"
            } else if d.from == "INDEX" {
                "reclaim.index_drop"
            } else {
                "reclaim.demote"
            };
            let details = vec![
                ("from".to_string(), d.from.clone()),
                ("to".to_string(), d.to.clone()),
                ("bytes_before".to_string(), d.bytes_before.to_string()),
                ("bytes_after".to_string(), d.bytes_after.to_string()),
                ("gamma".to_string(), format!("{:.6}", d.gamma)),
            ];
            let interm = d.intermediate.clone();
            self.telemetry_event(kind, Some(&interm), details);
        }
        if let Some(c) = report
            .compaction
            .as_ref()
            .filter(|c| c.partitions_rewritten + c.partitions_removed > 0)
        {
            let details = vec![
                ("scanned".to_string(), c.partitions_scanned.to_string()),
                ("rewritten".to_string(), c.partitions_rewritten.to_string()),
                ("removed".to_string(), c.partitions_removed.to_string()),
                ("bytes_reclaimed".to_string(), c.bytes_reclaimed.to_string()),
                ("chunks_dropped".to_string(), c.chunks_dropped.to_string()),
            ];
            self.telemetry_event("compaction", None, details);
        }
        self.telemetry_capture("reclaim");
        Ok(report)
    }

    /// Budget hook run after every materialization (logging bursts and
    /// adaptive promotions): reclaim only when the accounting is actually
    /// over a configured budget.
    pub(crate) fn reclaim_if_over_budget(&mut self) -> Result<(), MistiqueError> {
        let budget = self.config.storage_budget_bytes;
        if budget > 0 && self.storage_budget_used() > budget {
            self.reclaim()?;
        }
        Ok(())
    }

    /// Up to the last `n` reclaim reports, oldest first.
    pub fn reclaim_reports(&self, n: usize) -> Vec<ReclaimReport> {
        self.reclaims.recent(n).into_iter().cloned().collect()
    }

    /// The most recent reclaim report, if any is retained.
    pub fn last_reclaim(&self) -> Option<&ReclaimReport> {
        self.reclaims.last()
    }

    /// The materialized intermediate with the lowest γ (Eq 5) at the
    /// *current* query count — the next demotion victim. Deterministic:
    /// models and stages are walked in sorted order and ties keep the first.
    fn coldest_materialized(&self) -> Option<(String, f64)> {
        let mut best: Option<(String, f64)> = None;
        for model_id in self.meta.model_ids() {
            let Some(model) = self.meta.model(&model_id) else {
                continue;
            };
            for m in self.meta.intermediates_of(&model_id) {
                if !m.materialized {
                    continue;
                }
                let g = self.cost.gamma_now(model, m);
                if best.as_ref().is_none_or(|(_, bg)| g < *bg) {
                    best = Some((m.id.clone(), g));
                }
            }
        }
        best
    }

    /// Demote a materialized intermediate one rung down the ladder. Returns
    /// the scheme it now uses, or `None` when it is already on the last rung
    /// (use [`Mistique::purge_intermediate`] for the final step).
    pub fn demote_one_step(
        &mut self,
        intermediate_id: &str,
    ) -> Result<Option<ValueScheme>, MistiqueError> {
        let meta = self
            .meta
            .intermediate(intermediate_id)
            .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate_id.into()))?;
        if !meta.materialized {
            return Err(MistiqueError::Invalid(format!(
                "{intermediate_id} is not materialized; nothing to demote"
            )));
        }
        match next_demotion(meta.scheme.value) {
            Some(next) => {
                self.demote_to(intermediate_id, next)?;
                self.obs.counter("adaptive.demotions").inc();
                Ok(Some(next))
            }
            None => Ok(None),
        }
    }

    /// Re-encode a materialized intermediate under `next` and overwrite its
    /// chunks in place (same keys, so the displaced bytes become dead chunks
    /// for compaction). Returns the new stored byte count.
    fn demote_to(
        &mut self,
        intermediate_id: &str,
        next: ValueScheme,
    ) -> Result<u64, MistiqueError> {
        let meta = self.meta.intermediate(intermediate_id).unwrap().clone();
        // Decide *before* the metadata changes whether the index follows the
        // intermediate down the ladder: a rebuild only happens if an index
        // existed, so a reclaim pass that shed it is not undone here.
        let had_index = self.index_exists(intermediate_id);
        let mut sp = mistique_obs::span!(self.obs, "reclaim.demote", interm = intermediate_id);
        sp.attr("to", next.name());

        // Decode the currently stored representation (dequantizing through
        // the current scheme), then re-encode column by column so the
        // original column names — and therefore the chunk keys — survive.
        let frame = self.read_stored(&meta, None, meta.n_rows)?;
        let cols: Vec<(String, Vec<f32>)> = frame
            .columns()
            .iter()
            .map(|c| {
                let vals: Vec<f32> = c.data.to_f64().iter().map(|&v| v as f32).collect();
                (c.name.clone(), vals)
            })
            .collect();

        // Schemes with fitted state share one fit across all columns, like
        // the capture path. NaN/inf values (missing data, f16 overflow from
        // an earlier LP_QT step) are excluded from the fit — the quantile
        // sort cannot order NaN.
        let finite_sample = || -> Vec<f32> {
            let mut sample: Vec<f32> = cols
                .iter()
                .flat_map(|(_, vals)| vals.iter().copied())
                .filter(|v| v.is_finite())
                .collect();
            if sample.is_empty() {
                sample.push(0.0);
            }
            sample
        };
        let mut quantizer: Option<Vec<u8>> = None;
        let mut threshold: Option<f32> = None;
        match next {
            ValueScheme::Kbit { bits } => {
                quantizer = Some(KbitQuantizer::fit(&finite_sample(), bits).to_bytes());
            }
            ValueScheme::Threshold { pct } => {
                threshold = Some(ThresholdQuantizer::fit(&finite_sample(), pct).threshold());
            }
            ValueScheme::Full | ValueScheme::Lp => {}
        }
        let kbit = quantizer
            .as_deref()
            .map(|b| KbitQuantizer::from_bytes(b).expect("round-trips its own serialization"));

        let encoded: Vec<Column> = cols
            .into_iter()
            .map(|(name, vals)| {
                let data = match next {
                    ValueScheme::Full => ColumnData::F32(vals),
                    ValueScheme::Lp => {
                        let bytes = encode_f16(&vals);
                        let bits: Vec<u16> = bytes
                            .chunks_exact(2)
                            .map(|c| u16::from_le_bytes([c[0], c[1]]))
                            .collect();
                        ColumnData::F16(bits)
                    }
                    ValueScheme::Kbit { .. } => {
                        ColumnData::U8(kbit.as_ref().unwrap().encode_codes(&vals))
                    }
                    ValueScheme::Threshold { .. } => {
                        let t = threshold.unwrap();
                        ColumnData::Bool(vals.iter().map(|&v| v > t).collect())
                    }
                };
                Column::new(name, data)
            })
            .collect();
        let encoded = DataFrame::from_columns(encoded);

        self.qcache.invalidate(intermediate_id);
        let row_block_size = self.config.row_block_size;
        let mut bytes = 0u64;
        for (block, column, chunk) in encoded.chunks(row_block_size) {
            let key = ChunkKey::new(intermediate_id, column, block as u32);
            let (_, serialized) =
                self.store
                    .put_chunk_sized(key, &chunk, PlacementPolicy::ByIntermediate, true)?;
            bytes += serialized;
        }

        // Re-index the re-encoded representation (decoding it exactly as the
        // read path will) so indexed answers stay bit-identical after the
        // demotion.
        if had_index {
            self.index_observe_frame(intermediate_id, &encoded, next, quantizer.as_deref());
        }

        let m = self.meta.intermediate_mut(intermediate_id).unwrap();
        m.scheme = CaptureScheme {
            value: next,
            pool_sigma: meta.scheme.pool_sigma,
        };
        m.stored_bytes = bytes;
        m.quantizer = quantizer;
        m.threshold = threshold;
        if had_index {
            // Finish after the metadata mutation: the persisted file pins
            // the *new* scheme and row count for staleness checks.
            self.index_finish_build(intermediate_id);
        }
        sp.finish();
        Ok(bytes)
    }

    /// Re-encode every chunk of an intermediate as a base+delta frame where
    /// the store finds a similar enough base and the frame wins — the
    /// reclaim rung between THRESHOLD_QT and purge. Keys, schemes, and read
    /// answers are untouched (rehydration is transparent); only the physical
    /// representation shrinks. Returns the summed stored bytes afterwards.
    fn reencode_delta(&mut self, intermediate_id: &str) -> Result<u64, MistiqueError> {
        let meta = self.meta.intermediate(intermediate_id).unwrap().clone();
        let mut sp = mistique_obs::span!(self.obs, "reclaim.delta", interm = intermediate_id);
        // Cached query results hold decoded values; they stay correct, but
        // invalidating keeps the cache's byte accounting honest with the
        // relocated chunks.
        self.qcache.invalidate(intermediate_id);
        let blocks = meta.n_rows.div_ceil(self.config.row_block_size).max(1);
        let mut bytes = 0u64;
        for column in &meta.columns {
            for block in 0..blocks {
                let key = ChunkKey::new(intermediate_id, column, block as u32);
                match self.store.reencode_as_delta(&key) {
                    Ok(len) => bytes += len,
                    // Ragged intermediates may miss trailing blocks.
                    Err(mistique_store::StoreError::NotFound) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        let m = self.meta.intermediate_mut(intermediate_id).unwrap();
        m.delta_encoded = true;
        m.stored_bytes = bytes;
        sp.attr("bytes_after", bytes);
        sp.finish();
        Ok(bytes)
    }

    /// Purge a materialized intermediate: retract every chunk from the store
    /// and flip `materialized = false`. Future fetches transparently re-run
    /// the model, and the ordinary γ test may re-promote it. The last stored
    /// size is kept as the γ size estimate. Returns the bytes whose last
    /// reference was released (they become dead until compaction).
    pub fn purge_intermediate(&mut self, intermediate_id: &str) -> Result<u64, MistiqueError> {
        let meta = self
            .meta
            .intermediate(intermediate_id)
            .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate_id.into()))?;
        if !meta.materialized {
            return Ok(0);
        }
        let mut sp = mistique_obs::span!(self.obs, "reclaim.purge", interm = intermediate_id);
        self.qcache.invalidate(intermediate_id);
        let outcome = self.store.retract_intermediate(intermediate_id);
        let m = self.meta.intermediate_mut(intermediate_id).unwrap();
        m.materialized = false;
        m.quantizer = None;
        m.threshold = None;
        // A re-materialized copy starts raw; the ladder may delta it again.
        m.delta_encoded = false;
        // An index over purged data is pure garbage; drop it with the data.
        self.index_drop(intermediate_id);
        sp.attr("bytes_released", outcome.bytes_released);
        sp.finish();
        Ok(outcome.bytes_released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_descends_to_purge() {
        let mut s = ValueScheme::Full;
        let mut names = vec![s.name()];
        while let Some(n) = next_demotion(s) {
            s = n;
            names.push(s.name());
        }
        assert_eq!(names, vec!["FULL", "LP_QT", "8BIT_QT", "THRESHOLD_QT"]);
        assert!(next_demotion(s).is_none(), "threshold is the last rung");
    }
}
