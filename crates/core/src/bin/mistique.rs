//! `mistique` — inspect and query a persisted MISTIQUE store.
//!
//! ```sh
//! mistique demo  <dir>                       # build a small demo store
//! mistique info  <dir>                       # models, intermediates, storage
//! mistique show  <dir> <intermediate>        # schema + stats of one intermediate
//! mistique head  <dir> <intermediate> [n]    # first n rows
//! mistique topk  <dir> <intermediate> <column> [k]
//! mistique hist  <dir> <intermediate> <column> [buckets]
//! mistique stats <dir> [--json <file>] [--prom <file>]
//! mistique explain <dir> [--last <n>] [--perfetto <file>] [--flame <file>]
//! mistique reclaim <dir> [budget_bytes]      # demote/purge cold intermediates, compact
//! mistique timeline <dir> [--json] [--metric <name>] [--perfetto <file>]
//! mistique replay <dir> [--into <dir2>] [--differential] [--bench <file>]
//! mistique top   <dir> [--once] [--interval <ms>]
//! ```
//!
//! `reclaim` runs one storage-reclamation pass: while the materialized bytes
//! exceed the budget, the coldest-γ intermediate is demoted one rung down
//! the quantization ladder (FULL → LP_QT → 8BIT_QT → THRESHOLD_QT) or, on
//! the last rung, purged; then under-occupied partitions are compacted and
//! the manifest re-persisted. Without an explicit budget the configured
//! `storage_budget_bytes` applies (0 = unlimited: only compaction runs).
//!
//! `timeline` replays the flight recorder: the durable telemetry timeline
//! written under `<dir>/telemetry/` at every burst boundary (logging,
//! reclaim, recovery, query anomalies). The default view is a table of
//! metric delta points with journal events interleaved; `--json` dumps the
//! full timeline, `--metric` prints one metric's series, and `--perfetto`
//! writes a Chrome-trace counter track loadable at `ui.perfetto.dev`.
//! Unlike the other commands it needs no manifest — it reads the segments
//! directly, so it also works on a store that never persisted.
//!
//! `replay` re-executes the workload captured in the audit journal under
//! `<dir>/audit/` (see the `audit` module): by default into a throwaway
//! fresh store, with `--into` onto an existing directory (registrations of
//! known models re-attach instead of erroring). `--differential` replays
//! the journal at `read_parallelism` 1, 2, 4 and 0 (= all CPUs) and demands
//! bit-identical answer transcripts and identical plan choices across every
//! leg, exiting nonzero on any divergence. `--bench` additionally measures
//! the capture overhead (replay wall-clock with auditing on vs off) and
//! writes a flat `BENCH_replay.json` consumed by `scripts/bench_gate.sh`.
//!
//! `top` renders a live workload dashboard — per-operation rates and
//! latency quantiles, plan mix, cache/index effectiveness, SLO classes,
//! budget headroom and journal health — assembled entirely from the on-disk
//! audit journal and telemetry timeline. `--once` prints a single frame
//! (works on a closed store with no live engine); otherwise the screen
//! refreshes every `--interval` ms (default 1000) until interrupted.
//!
//! `stats --prom` writes the metric snapshot in Prometheus text exposition
//! format 0.0.4 and validates the rendering before writing; a validation
//! failure exits nonzero (CI uses this as a format gate).
//!
//! `explain` replays one read per materialized intermediate plus a sample
//! diagnostic query, then prints the per-query EXPLAIN reports (plan chosen,
//! predicted vs actual cost, cache/partition/codec attribution) and the
//! hierarchical span tree of the last query. `--perfetto` writes a
//! Chrome-trace JSON loadable at `ui.perfetto.dev`; `--flame` writes
//! flamegraph collapsed stacks.
//!
//! Works on any directory produced by `Mistique::persist()`; only reads are
//! available (re-running needs the executable model, see `persist` docs).

use std::process::ExitCode;
use std::sync::Arc;

use mistique_core::{FetchStrategy, Mistique, MistiqueConfig};
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mistique <demo|info|show|head|topk|hist|stats|explain|reclaim|timeline|replay|top> <dir> [args...]\n\
         run `mistique demo /tmp/mq && mistique explain /tmp/mq` to try it"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage(),
    };
    let Some(dir) = rest.first() else {
        return usage();
    };

    match run(cmd, dir, &rest[1..]) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn open(dir: &str) -> Result<Mistique, Box<dyn std::error::Error>> {
    Ok(Mistique::reopen(dir, MistiqueConfig::default())?)
}

/// `mistique replay <dir> [--into <dir2>] [--differential] [--bench <file>]`.
fn run_replay(dir: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use mistique_core::replay::{differential_replay, replay_into, ReplayOptions};

    let records = Mistique::load_audit(dir)?;
    if records.is_empty() {
        println!("no audit journal under {dir}/audit — nothing to replay (audit_budget_bytes = 0, or no workload ran)");
        return Ok(());
    }
    println!("loaded {} journal records from {dir}/audit", records.len());

    let differential = rest.iter().any(|a| a == "--differential");
    let bench_path = match rest.iter().position(|a| a == "--bench") {
        Some(pos) => Some(
            rest.get(pos + 1)
                .ok_or("--bench needs a file path")?
                .clone(),
        ),
        None => None,
    };
    let into = match rest.iter().position(|a| a == "--into") {
        Some(pos) => Some(rest.get(pos + 1).ok_or("--into needs a directory")?.clone()),
        None => None,
    };
    let config = MistiqueConfig::default();
    let scratch = std::env::temp_dir().join(format!("mistique-replay-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    // Best-effort scratch cleanup on every exit path.
    struct Scratch(std::path::PathBuf);
    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let _scratch_guard = Scratch(scratch.clone());

    // The basic replay leg: into the target directory if given (reopening an
    // existing manifest so registrations re-attach), else a fresh scratch
    // store.
    let mut sys = match &into {
        Some(target) => {
            let manifest = std::path::Path::new(target).join("mistique_manifest.json");
            if manifest.exists() {
                Mistique::reopen(target, config.clone())?
            } else {
                std::fs::create_dir_all(target)?;
                Mistique::open(target, config.clone())?
            }
        }
        None => Mistique::open(scratch.join("replay"), config.clone())?,
    };
    let t0 = std::time::Instant::now();
    let outcome = replay_into(&mut sys, &records, &ReplayOptions::default())?;
    let replay_s = t0.elapsed().as_secs_f64();
    println!(
        "replayed {} ops in {replay_s:.2}s ({} failed, {} skipped) — transcript digest {:016x}",
        outcome.executed,
        outcome.failed,
        outcome.skipped.len(),
        outcome.transcript_digest()
    );
    for (seq, reason) in &outcome.skipped {
        println!("  skipped seq {seq}: {reason}");
    }
    if let Some(target) = &into {
        sys.persist()?;
        println!("persisted replayed store at {target}");
    }
    drop(sys);

    // Differential legs (also required for the bench report's verdict).
    let report = if differential || bench_path.is_some() {
        let workers = [1usize, 2, 4, 0];
        let report = differential_replay(&records, &scratch, &config, &workers)?;
        for run in &report.runs {
            println!(
                "  workers={}: {} ops, {} failed, transcript {:016x}",
                run.workers,
                run.outcome.executed,
                run.outcome.failed,
                run.outcome.transcript_digest()
            );
        }
        let (matched, compared) = report.plan_agreement;
        println!(
            "differential: {} — plan agreement with original capture {matched}/{compared}",
            if report.consistent() {
                "CONSISTENT (bit-identical answers, identical plans at every worker count)"
            } else {
                "DIVERGED"
            }
        );
        for m in &report.mismatches {
            eprintln!("  mismatch: {m}");
        }
        Some(report)
    } else {
        None
    };

    // Capture-overhead measurement + BENCH_replay.json.
    if let Some(path) = &bench_path {
        let report = report.as_ref().expect("bench implies differential");
        let mut on_s = f64::INFINITY;
        let mut off_s = f64::INFINITY;
        for i in 0..2 {
            let mut cfg_on = config.clone();
            if cfg_on.audit_budget_bytes == 0 {
                cfg_on.audit_budget_bytes = 1 << 20;
            }
            let mut sys = Mistique::open(scratch.join(format!("bench_on_{i}")), cfg_on)?;
            let t = std::time::Instant::now();
            replay_into(&mut sys, &records, &ReplayOptions::default())?;
            on_s = on_s.min(t.elapsed().as_secs_f64());

            let mut cfg_off = config.clone();
            cfg_off.audit_budget_bytes = 0;
            let mut sys = Mistique::open(scratch.join(format!("bench_off_{i}")), cfg_off)?;
            let t = std::time::Instant::now();
            replay_into(&mut sys, &records, &ReplayOptions::default())?;
            off_s = off_s.min(t.elapsed().as_secs_f64());
        }
        let overhead_pct = if off_s > 0.0 {
            (on_s - off_s) / off_s * 100.0
        } else {
            0.0
        };
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (matched, compared) = report.plan_agreement;
        let json = format!(
            "{{\"bench\":\"replay\",\
             \"config_fingerprint\":\"{:08x}\",\
             \"config_detail\":\"{}\",\
             \"host_cpus\":{cpus},\
             \"records\":{},\
             \"executed\":{},\
             \"failed\":{},\
             \"skipped\":{},\
             \"transcript_digest\":\"{:016x}\",\
             \"differential_workers\":\"1;2;4;0\",\
             \"differential_consistent\":{},\
             \"plan_agreement_matched\":{matched},\
             \"plan_agreement_compared\":{compared},\
             \"audit_on_s\":{on_s:.6},\
             \"audit_off_s\":{off_s:.6},\
             \"capture_overhead_pct\":{overhead_pct:.3}}}",
            config.fingerprint_hash(),
            config.fingerprint(),
            records.len(),
            outcome.executed,
            outcome.failed,
            outcome.skipped.len(),
            outcome.transcript_digest(),
            if report.consistent() { 1 } else { 0 },
        );
        std::fs::write(path, &json)?;
        println!(
            "capture overhead: {overhead_pct:.2}% (audit on {on_s:.3}s vs off {off_s:.3}s) — wrote {path}"
        );
    }

    if let Some(report) = &report {
        if !report.consistent() {
            return Err("differential replay diverged".into());
        }
    }
    Ok(())
}

fn run(cmd: &str, dir: &str, rest: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match cmd {
        "demo" => {
            std::fs::create_dir_all(dir)?;
            let mut sys = Mistique::open(dir, MistiqueConfig::default())?;
            let data = Arc::new(ZillowData::generate(2_000, 42));
            let mut trad_ids = Vec::new();
            for p in zillow_pipelines().into_iter().take(2) {
                let id = sys.register_trad(p, Arc::clone(&data))?;
                sys.log_intermediates(&id)?;
                println!("logged {id}");
                trad_ids.push(id);
            }
            // A small DNN checkpoint, so the captured workload (and thus
            // `mistique replay`) mixes TRAD and DNN intermediates.
            let cifar = Arc::new(mistique_nn::CifarLike::generate(48, 4, 7));
            let labels = cifar.labels.clone();
            let dnn_id =
                sys.register_dnn(Arc::new(mistique_nn::simple_cnn(16)), 9, 1, cifar, 16)?;
            sys.log_intermediates(&dnn_id)?;
            println!("logged {dnn_id}");
            // A handful of diagnostics, so the journal carries queries with
            // plan choices, not just registrations and logging.
            if let Some(interm) = sys.intermediates_of(&trad_ids[0]).first().cloned() {
                if let Some(col) = sys
                    .metadata()
                    .intermediate(&interm)
                    .and_then(|m| m.columns.first().cloned())
                {
                    sys.topk(&interm, &col, 10)?;
                    sys.pointq(&interm, &col, 3)?;
                    sys.col_dist(&interm, &col, 8)?;
                }
            }
            let dnn_interms = sys.intermediates_of(&dnn_id);
            if let Some(softmax) = dnn_interms.last().cloned() {
                sys.argmax_predictions(&softmax)?;
                sys.accuracy(&softmax, &labels)?;
            }
            if let Some(first) = dnn_interms.first().cloned() {
                sys.knn(&first, 0, 5)?;
            }
            sys.persist()?;
            sys.audit_flush();
            println!("persisted demo store at {dir}");
        }
        "info" => {
            let sys = open(dir)?;
            let stats = sys.store().stats();
            println!("store: {dir}");
            println!("  disk bytes     : {}", sys.store().disk_bytes()?);
            println!("  chunks stored  : {}", stats.chunks_stored);
            println!("  dedup hits     : {}", stats.dedup_hits);
            println!(
                "  dedup ratio    : {:.2}x",
                stats.logical_bytes as f64 / stats.unique_bytes.max(1) as f64
            );
            for model in sys.model_ids() {
                let m = sys.metadata().model(&model).unwrap();
                println!(
                    "model {model} ({:?}, {} stages, {} examples)",
                    m.kind, m.n_stages, m.n_examples
                );
                for i in sys.metadata().intermediates_of(&model) {
                    println!(
                        "  {:<44} {:>6} rows x {:>4} cols  {:>10} B  {}  q={}",
                        i.id,
                        i.n_rows,
                        i.columns.len(),
                        i.stored_bytes,
                        if i.materialized { "stored" } else { "virtual" },
                        i.n_queries
                    );
                }
            }
        }
        "show" => {
            let interm = rest.first().ok_or("missing intermediate id")?;
            let sys = open(dir)?;
            let m = sys
                .metadata()
                .intermediate(interm)
                .ok_or_else(|| format!("no intermediate {interm}"))?;
            println!("{}", m.id);
            println!("  model        : {}", m.model_id);
            println!("  stage        : {}", m.stage_index);
            println!("  rows         : {}", m.n_rows);
            println!("  scheme       : {}", m.scheme.name());
            println!("  materialized : {}", m.materialized);
            println!("  stored bytes : {}", m.stored_bytes);
            println!(
                "  exec time    : {:?} (cumulative {:?})",
                m.exec_time, m.cum_exec_time
            );
            if let Some((c, h, w)) = m.shape {
                println!("  shape        : {c} x {h} x {w}");
            }
            println!("  columns ({}) : {}", m.columns.len(), m.columns.join(", "));
        }
        "head" => {
            let interm = rest.first().ok_or("missing intermediate id")?;
            let n: usize = rest.get(1).map(|s| s.parse()).transpose()?.unwrap_or(5);
            let mut sys = open(dir)?;
            let r = sys.fetch_with_strategy(interm, None, Some(n), FetchStrategy::Read)?;
            let names = r.frame.column_names().join("\t");
            println!("{names}");
            let cols: Vec<Vec<f64>> = r.frame.columns().iter().map(|c| c.data.to_f64()).collect();
            for row in 0..r.frame.n_rows() {
                let cells: Vec<String> = cols.iter().map(|c| format!("{:.4}", c[row])).collect();
                println!("{}", cells.join("\t"));
            }
        }
        "topk" => {
            let interm = rest.first().ok_or("missing intermediate id")?;
            let column = rest.get(1).ok_or("missing column")?;
            let k: usize = rest.get(2).map(|s| s.parse()).transpose()?.unwrap_or(10);
            let mut sys = open(dir)?;
            for (row, value) in sys.topk(interm, column, k)? {
                println!("{row}\t{value:.6}");
            }
        }
        "hist" => {
            let interm = rest.first().ok_or("missing intermediate id")?;
            let column = rest.get(1).ok_or("missing column")?;
            let buckets: usize = rest.get(2).map(|s| s.parse()).transpose()?.unwrap_or(10);
            let mut sys = open(dir)?;
            let hist = sys.col_dist(interm, column, buckets)?;
            let max = hist.iter().map(|b| b.count).max().unwrap_or(1).max(1);
            for b in hist {
                println!(
                    "[{:>12.4}, {:>12.4})  {:>7}  {}",
                    b.lo,
                    b.hi,
                    b.count,
                    "#".repeat(b.count * 50 / max)
                );
            }
        }
        "stats" => {
            // Exercise the read path once per materialized intermediate so
            // the report covers live chunk reads and cost decisions, not
            // just load-time state.
            let mut sys = open(dir)?;
            let interms: Vec<String> = sys
                .model_ids()
                .iter()
                .flat_map(|m| sys.intermediates_of(m))
                .collect();
            let mut exercised = 0;
            for interm in &interms {
                let materialized = sys
                    .metadata()
                    .intermediate(interm)
                    .map(|m| m.materialized)
                    .unwrap_or(false);
                if materialized
                    && sys
                        .fetch_with_strategy(interm, None, Some(8), FetchStrategy::Read)
                        .is_ok()
                {
                    exercised += 1;
                }
            }
            println!("observability report for {dir} ({exercised} sample reads)\n");
            print!("{}", sys.obs_report());
            if let Some(pos) = rest.iter().position(|a| a == "--json") {
                let path = rest.get(pos + 1).ok_or("--json needs a file path")?;
                std::fs::write(path, sys.obs_snapshot_json().to_string())?;
                println!("\nwrote JSON snapshot to {path}");
            }
            if let Some(pos) = rest.iter().position(|a| a == "--prom") {
                let path = rest.get(pos + 1).ok_or("--prom needs a file path")?;
                let exposition = sys.render_prometheus();
                mistique_core::validate_prometheus(&exposition)
                    .map_err(|e| format!("prometheus exposition failed validation: {e}"))?;
                std::fs::write(path, exposition)?;
                println!("\nwrote Prometheus exposition to {path} (validated)");
            }
        }
        "explain" => {
            let mut sys = open(dir)?;
            // Replay live queries so the reports and trace ring reflect real
            // reads against this store, not just load-time state.
            let interms: Vec<String> = sys
                .model_ids()
                .iter()
                .flat_map(|m| sys.intermediates_of(m))
                .collect();
            for interm in &interms {
                let materialized = sys
                    .metadata()
                    .intermediate(interm)
                    .map(|m| m.materialized)
                    .unwrap_or(false);
                if materialized {
                    let _ = sys.fetch_with_strategy(interm, None, Some(64), FetchStrategy::Read);
                }
            }
            // One diagnostic query, so at least one report carries a
            // `diag.*` attribution.
            if let Some(interm) = interms.iter().find(|i| {
                sys.metadata()
                    .intermediate(i)
                    .map(|m| m.materialized && !m.columns.is_empty())
                    .unwrap_or(false)
            }) {
                let interm = interm.clone();
                let col = sys.metadata().intermediate(&interm).unwrap().columns[0].clone();
                let _ = sys.topk(&interm, &col, 5);
            }

            let last: usize = match rest.iter().position(|a| a == "--last") {
                Some(pos) => rest.get(pos + 1).ok_or("--last needs a count")?.parse()?,
                None => 10,
            };
            let reports = sys.query_reports(last);
            if reports.is_empty() {
                println!("no queries ran against {dir}; nothing to explain");
            }
            for r in &reports {
                print!("{}", r.render());
            }
            if let Some(r) = reports.last() {
                println!("\ntrace tree of query #{} (trace {}):", r.seq, r.trace_id);
                print!("{}", sys.render_trace(r.trace_id));
            }
            let drift = sys.drift_monitor();
            println!(
                "\ncost model drift: worst ratio {:.3} (tolerance {:.1}){}",
                drift.worst_drift(),
                drift.tolerance(),
                if drift.any_flagged() {
                    "  ** MISCALIBRATED **"
                } else {
                    ""
                }
            );
            if let Some(pos) = rest.iter().position(|a| a == "--perfetto") {
                let path = rest.get(pos + 1).ok_or("--perfetto needs a file path")?;
                std::fs::write(path, sys.perfetto_json())?;
                println!("wrote Chrome-trace JSON to {path} (open at ui.perfetto.dev)");
            }
            if let Some(pos) = rest.iter().position(|a| a == "--flame") {
                let path = rest.get(pos + 1).ok_or("--flame needs a file path")?;
                std::fs::write(path, sys.flamegraph_folded())?;
                println!("wrote folded stacks to {path} (pipe through flamegraph.pl)");
            }
        }
        "reclaim" => {
            let mut sys = open(dir)?;
            let report = match rest.first() {
                Some(b) => sys.reclaim_to(b.parse()?)?,
                None => sys.reclaim()?,
            };
            print!("{}", report.render());
        }
        "timeline" => {
            let tl = Mistique::load_timeline(dir)?;
            if tl.points.is_empty() && tl.events.is_empty() {
                println!(
                    "no telemetry recorded under {dir}/telemetry \
                     (telemetry_budget_bytes = 0, or nothing logged yet)"
                );
                return Ok(());
            }
            if let Some(pos) = rest.iter().position(|a| a == "--metric") {
                let metric = rest.get(pos + 1).ok_or("--metric needs a metric name")?;
                let series = tl.series(metric);
                if series.is_empty() {
                    let names = tl.metric_names().into_iter().collect::<Vec<_>>().join(", ");
                    return Err(format!("metric {metric} not in timeline; have: {names}").into());
                }
                for (seq, t_ms, v) in series {
                    println!("{seq}\t{t_ms}\t{v}");
                }
            } else if rest.iter().any(|a| a == "--json") {
                println!("{}", tl.to_json_string());
            } else {
                print!("{}", tl.render_table());
                println!(
                    "{} points, {} events, seq <= {}",
                    tl.points.len(),
                    tl.events.len(),
                    tl.max_seq().unwrap_or(0)
                );
            }
            if let Some(pos) = rest.iter().position(|a| a == "--perfetto") {
                let path = rest.get(pos + 1).ok_or("--perfetto needs a file path")?;
                std::fs::write(path, mistique_core::counter_trace_json(&tl))?;
                println!("wrote counter-track JSON to {path} (open at ui.perfetto.dev)");
            }
        }
        "replay" => return run_replay(dir, rest),
        "top" => {
            let once = rest.iter().any(|a| a == "--once");
            let interval_ms: u64 = match rest.iter().position(|a| a == "--interval") {
                Some(pos) => rest
                    .get(pos + 1)
                    .ok_or("--interval needs milliseconds")?
                    .parse()?,
                None => 1000,
            };
            if once {
                print!("{}", mistique_core::render_top(dir)?);
            } else {
                loop {
                    let frame = mistique_core::render_top(dir)?;
                    // Clear screen + home, then one dashboard frame.
                    print!("\x1b[2J\x1b[H{frame}");
                    use std::io::Write as _;
                    std::io::stdout().flush()?;
                    std::thread::sleep(std::time::Duration::from_millis(interval_ms));
                }
            }
        }
        _ => {
            usage();
            return Err(format!("unknown command {cmd}").into());
        }
    }
    Ok(())
}
