//! Re-execute a captured workload from the audit journal (`mistique replay`).
//!
//! Every [`AuditRecord`]'s argument fingerprint (see [`crate::audit`]) is
//! sufficient to reconstruct the call that produced it: model registrations
//! carry the pipeline template id / encoded DNN architecture plus the
//! dataset generator's provenance `(n, seed)`, and queries carry their
//! argument lists verbatim. Replay walks the journal in sequence order,
//! regenerates the datasets (cached per provenance key), and re-issues each
//! operation against a target [`Mistique`] instance.
//!
//! Each replayed operation yields a 64-bit FNV digest of its *answer*
//! (every f64 folded in via `to_bits`, so "equal" means bit-identical — not
//! approximately close). [`differential_replay`] replays the same journal
//! into fresh stores at several `read_parallelism` settings and asserts the
//! digest transcript and the per-operation plan sequences agree across all
//! of them: the parallel read path must be indistinguishable from the
//! serial one, answer for answer, plan for plan.
//!
//! Two kinds of record don't replay: `diag.netdissect` (its pixel-level
//! concept masks are journaled only as a digest) and registrations whose
//! dataset lacks generator provenance. Both are reported as skipped with a
//! reason, never silently dropped.

use std::collections::HashMap;
use std::path::Path;
use std::str::FromStr;
use std::sync::Arc;

use mistique_nn::{ArchConfig, CifarLike, LayerSpec};
use mistique_obs::AuditRecord;
use mistique_pipeline::templates::zillow_pipelines;
use mistique_pipeline::ZillowData;

use crate::audit::fnv1a;
use crate::error::MistiqueError;
use crate::reader::FetchStrategy;
use crate::system::{Mistique, MistiqueConfig};

/// Encode an [`ArchConfig`] as one journal-safe token:
/// `name|in_c|in_hw|n_classes|frozen_prefix|c64,c64,p,d512,x`
/// (`c` = conv, `p` = pool, `d` = dense, `x` = classifier head).
pub fn encode_arch(arch: &ArchConfig) -> String {
    let layers: Vec<String> = arch
        .layers
        .iter()
        .map(|l| match l {
            LayerSpec::Conv(c) => format!("c{c}"),
            LayerSpec::Pool => "p".to_string(),
            LayerSpec::Dense(d) => format!("d{d}"),
            LayerSpec::Classifier => "x".to_string(),
        })
        .collect();
    format!(
        "{}|{}|{}|{}|{}|{}",
        arch.name,
        arch.in_c,
        arch.in_hw,
        arch.n_classes,
        arch.frozen_prefix,
        layers.join(",")
    )
}

/// Inverse of [`encode_arch`]; `None` when the token doesn't parse.
pub fn decode_arch(s: &str) -> Option<ArchConfig> {
    let parts: Vec<&str> = s.split('|').collect();
    if parts.len() != 6 {
        return None;
    }
    let mut layers = Vec::new();
    for tok in parts[5].split(',') {
        layers.push(match tok {
            "p" => LayerSpec::Pool,
            "x" => LayerSpec::Classifier,
            t if t.starts_with('c') => LayerSpec::Conv(t[1..].parse().ok()?),
            t if t.starts_with('d') => LayerSpec::Dense(t[1..].parse().ok()?),
            _ => return None,
        });
    }
    Some(ArchConfig {
        name: parts[0].to_string(),
        in_c: parts[1].parse().ok()?,
        in_hw: parts[2].parse().ok()?,
        n_classes: parts[3].parse().ok()?,
        frozen_prefix: parts[4].parse().ok()?,
        layers,
    })
}

/// Replay tuning.
#[derive(Clone, Debug, Default)]
pub struct ReplayOptions {
    /// Abort at the first operation that errors during replay instead of
    /// digesting the failure and continuing.
    pub stop_on_error: bool,
}

/// One replayed operation: the original record's sequence number and the
/// answer digest produced this run. Operations that error digest the fixed
/// [`ERROR_DIGEST`] (the *fact* of the failure must also be reproducible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayStep {
    /// Sequence number of the journal record this step replayed.
    pub seq: u64,
    /// Operation name (`diag.topk`, `fetch.get`, …).
    pub op: String,
    /// FNV-64 digest of the answer (bit-exact over every float).
    pub digest: u64,
}

/// Digest recorded for an operation that returned an error during replay.
pub const ERROR_DIGEST: u64 = 0xE44;

/// What a replay pass did.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Operations re-executed (including ones that errored).
    pub executed: u64,
    /// Of `executed`, how many returned an error.
    pub failed: u64,
    /// `(seq, reason)` of records that cannot be replayed.
    pub skipped: Vec<(u64, String)>,
    /// Answer digests in journal order.
    pub transcript: Vec<ReplayStep>,
}

impl ReplayOutcome {
    /// Fold the whole transcript into one digest (what `--differential`
    /// prints and `BENCH_replay.json` records).
    pub fn transcript_digest(&self) -> u64 {
        let mut h = 0u64;
        for step in &self.transcript {
            h = fnv1a(h, step.op.as_bytes());
            h = fnv1a(h, &step.seq.to_le_bytes());
            h = fnv1a(h, &step.digest.to_le_bytes());
        }
        h
    }
}

fn mix_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

fn mix_f64(h: u64, v: f64) -> u64 {
    mix_u64(h, v.to_bits())
}

fn mix_str(h: u64, s: &str) -> u64 {
    fnv1a(h, s.as_bytes())
}

fn digest_frame(frame: &mistique_dataframe::DataFrame) -> u64 {
    let mut h = mix_u64(0, frame.n_rows() as u64);
    for col in frame.columns() {
        h = mix_str(h, &col.name);
        for v in col.data.to_f64() {
            h = mix_f64(h, v);
        }
    }
    h
}

fn digest_matrix(m: &mistique_linalg::Matrix) -> u64 {
    let mut h = mix_u64(mix_u64(0, m.rows() as u64), m.cols() as u64);
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            h = mix_f64(h, m[(r, c)]);
        }
    }
    h
}

fn arg<'a>(rec: &'a AuditRecord, key: &str) -> Result<&'a str, MistiqueError> {
    rec.args.get(key).map(String::as_str).ok_or_else(|| {
        MistiqueError::Invalid(format!(
            "audit record {} ({}) missing arg {key}",
            rec.seq, rec.op
        ))
    })
}

fn parse<T: FromStr>(rec: &AuditRecord, key: &str) -> Result<T, MistiqueError> {
    let s = arg(rec, key)?;
    s.parse().map_err(|_| {
        MistiqueError::Invalid(format!(
            "audit record {} ({}): arg {key}={s:?} does not parse",
            rec.seq, rec.op
        ))
    })
}

fn parse_csv<T: FromStr>(rec: &AuditRecord, key: &str) -> Result<Vec<T>, MistiqueError> {
    let s = arg(rec, key)?;
    if s.is_empty() {
        return Ok(vec![]);
    }
    s.split(',')
        .map(|tok| {
            tok.parse().map_err(|_| {
                MistiqueError::Invalid(format!(
                    "audit record {} ({}): {key} element {tok:?} does not parse",
                    rec.seq, rec.op
                ))
            })
        })
        .collect()
}

/// Decoded `(interm, cols, n_ex)` of a journaled fetch: `*` means all
/// columns, `all` means every row.
type FetchParams = (String, Option<Vec<String>>, Option<usize>);

/// `cols` / `n_ex` decoding shared by the fetch ops.
fn fetch_params(rec: &AuditRecord) -> Result<FetchParams, MistiqueError> {
    let interm = arg(rec, "interm")?.to_string();
    let cols = match arg(rec, "cols")? {
        "*" => None,
        s => Some(s.split(',').map(str::to_string).collect::<Vec<_>>()),
    };
    let n_ex = match arg(rec, "n_ex")? {
        "all" => None,
        s => Some(s.parse().map_err(|_| {
            MistiqueError::Invalid(format!("audit record {}: bad n_ex {s:?}", rec.seq))
        })?),
    };
    Ok((interm, cols, n_ex))
}

/// Dataset caches keyed by generator provenance, so a journal touching the
/// same dataset from many records regenerates it once.
#[derive(Default)]
struct DataCache {
    zillow: HashMap<(usize, u64), Arc<ZillowData>>,
    cifar: HashMap<(usize, usize, u64), Arc<CifarLike>>,
}

impl DataCache {
    fn zillow(&mut self, n: usize, seed: u64) -> Arc<ZillowData> {
        Arc::clone(
            self.zillow
                .entry((n, seed))
                .or_insert_with(|| Arc::new(ZillowData::generate(n, seed))),
        )
    }

    fn cifar(&mut self, n: usize, classes: usize, seed: u64) -> Arc<CifarLike> {
        Arc::clone(
            self.cifar
                .entry((n, classes, seed))
                .or_insert_with(|| Arc::new(CifarLike::generate(n, classes, seed))),
        )
    }
}

/// Replay one record. `Ok(None)` means "not replayable" (netdissect, or a
/// registration without provenance); the caller records the skip.
fn replay_one(
    sys: &mut Mistique,
    rec: &AuditRecord,
    cache: &mut DataCache,
) -> Result<Option<u64>, MistiqueError> {
    match rec.op.as_str() {
        "register" => {
            match arg(rec, "kind")? {
                "trad" => {
                    if !rec.args.contains_key("data_seed") {
                        return Ok(None); // dataset without generator provenance
                    }
                    let pid = arg(rec, "pipeline")?;
                    let pipeline = zillow_pipelines()
                        .into_iter()
                        .find(|p| p.id == pid)
                        .ok_or_else(|| {
                            MistiqueError::Invalid(format!("unknown pipeline template {pid}"))
                        })?;
                    let data = cache.zillow(parse(rec, "data_n")?, parse(rec, "data_seed")?);
                    // Replaying onto the original store: the model is already
                    // registered, it only needs its source re-attached.
                    let id = if sys.metadata().model(pid).is_some() {
                        sys.reattach_trad(pipeline, data)?;
                        pid.to_string()
                    } else {
                        sys.register_trad(pipeline, data)?
                    };
                    Ok(Some(mix_str(0, &id)))
                }
                "dnn" => {
                    if !rec.args.contains_key("data_seed") {
                        return Ok(None);
                    }
                    let arch = decode_arch(arg(rec, "arch")?).ok_or_else(|| {
                        MistiqueError::Invalid(format!("audit record {}: bad arch token", rec.seq))
                    })?;
                    let data = cache.cifar(
                        parse(rec, "data_n")?,
                        parse(rec, "data_classes")?,
                        parse(rec, "data_seed")?,
                    );
                    let seed: u64 = parse(rec, "seed")?;
                    let epoch: u32 = parse(rec, "epoch")?;
                    let batch: usize = parse(rec, "batch")?;
                    let id = format!("{}@epoch{epoch}", arch.name);
                    let id = if sys.metadata().model(&id).is_some() {
                        sys.reattach_dnn(Arc::new(arch), seed, epoch, data, batch)?;
                        id
                    } else {
                        sys.register_dnn(Arc::new(arch), seed, epoch, data, batch)?
                    };
                    Ok(Some(mix_str(0, &id)))
                }
                k => Err(MistiqueError::Invalid(format!("unknown model kind {k:?}"))),
            }
        }
        "log" => {
            let model = arg(rec, "model")?;
            sys.log_intermediates(model)?;
            Ok(Some(mix_str(mix_str(0, "log"), model)))
        }
        "log_parallel" => {
            let joined = arg(rec, "models")?;
            let models: Vec<&str> = joined.split(',').filter(|s| !s.is_empty()).collect();
            sys.log_intermediates_parallel(&models)?;
            Ok(Some(mix_str(mix_str(0, "log_parallel"), joined)))
        }
        "reclaim" => {
            let report = sys.reclaim_to(parse(rec, "budget")?)?;
            let mut h = mix_str(0, "reclaim");
            for p in &report.purged {
                h = mix_str(h, p);
            }
            Ok(Some(h))
        }
        "fetch.get" => {
            let (interm, cols, n_ex) = fetch_params(rec)?;
            let refs: Option<Vec<&str>> = cols
                .as_ref()
                .map(|cs| cs.iter().map(String::as_str).collect());
            let r = sys.get_intermediate(&interm, refs.as_deref(), n_ex)?;
            Ok(Some(digest_frame(&r.frame)))
        }
        "fetch.strategy" => {
            let (interm, cols, n_ex) = fetch_params(rec)?;
            let strategy = match arg(rec, "strategy")? {
                "read" => FetchStrategy::Read,
                "rerun" => FetchStrategy::Rerun,
                "cached" => FetchStrategy::Cached,
                s => {
                    return Err(MistiqueError::Invalid(format!("unknown strategy {s:?}")));
                }
            };
            let refs: Option<Vec<&str>> = cols
                .as_ref()
                .map(|cs| cs.iter().map(String::as_str).collect());
            let r = sys.fetch_with_strategy(&interm, refs.as_deref(), n_ex, strategy)?;
            Ok(Some(digest_frame(&r.frame)))
        }
        "fetch.rows" => {
            let (interm, cols, _) = fetch_params(rec)?;
            let rows: Vec<usize> = parse_csv(rec, "rows")?;
            let refs: Option<Vec<&str>> = cols
                .as_ref()
                .map(|cs| cs.iter().map(String::as_str).collect());
            let r = sys.get_rows(&interm, &rows, refs.as_deref())?;
            Ok(Some(digest_frame(&r.frame)))
        }
        "diag.pointq" => {
            let v = sys.pointq(arg(rec, "interm")?, arg(rec, "col")?, parse(rec, "row")?)?;
            Ok(Some(mix_f64(0, v)))
        }
        "diag.topk" => {
            let top = sys.topk(arg(rec, "interm")?, arg(rec, "col")?, parse(rec, "k")?)?;
            let mut h = 0;
            for (i, v) in top {
                h = mix_f64(mix_u64(h, i as u64), v);
            }
            Ok(Some(h))
        }
        "diag.col_dist" => {
            let hist = sys.col_dist(
                arg(rec, "interm")?,
                arg(rec, "col")?,
                parse(rec, "buckets")?,
            )?;
            let mut h = 0;
            for b in hist {
                h = mix_u64(mix_f64(mix_f64(h, b.lo), b.hi), b.count as u64);
            }
            Ok(Some(h))
        }
        "diag.col_diff" => {
            let rows = sys.col_diff(
                arg(rec, "interm_a")?,
                arg(rec, "col_a")?,
                arg(rec, "interm_b")?,
                arg(rec, "col_b")?,
                parse(rec, "tol")?,
            )?;
            let mut h = 0;
            for r in rows {
                h = mix_u64(h, r as u64);
            }
            Ok(Some(h))
        }
        "diag.row_diff" => {
            let d = sys.row_diff(
                arg(rec, "interm")?,
                parse(rec, "row_a")?,
                parse(rec, "row_b")?,
            )?;
            let mut h = 0;
            for (name, v) in d {
                h = mix_f64(mix_str(h, &name), v);
            }
            Ok(Some(h))
        }
        "diag.vis" => {
            let groups: Vec<u8> = parse_csv(rec, "groups")?;
            let m = sys.vis(arg(rec, "interm")?, &groups, parse(rec, "n_groups")?)?;
            Ok(Some(digest_matrix(&m)))
        }
        "diag.knn" => {
            let hits = sys.knn(arg(rec, "interm")?, parse(rec, "row")?, parse(rec, "k")?)?;
            let mut h = 0;
            for (i, d) in hits {
                h = mix_f64(mix_u64(h, i as u64), d);
            }
            Ok(Some(h))
        }
        "diag.svcca" => {
            let r = sys.svcca(
                arg(rec, "interm_a")?,
                arg(rec, "interm_b")?,
                parse(rec, "var_frac")?,
            )?;
            Ok(Some(mix_f64(0, r.mean_correlation())))
        }
        "diag.netdissect" => Ok(None), // concept masks journaled as digest only
        "diag.argmax_predictions" => {
            let preds = sys.argmax_predictions(arg(rec, "interm")?)?;
            let mut h = 0;
            for p in preds {
                h = mix_u64(h, p as u64);
            }
            Ok(Some(h))
        }
        "diag.confusion_matrix" => {
            let labels: Vec<u8> = parse_csv(rec, "labels")?;
            let m = sys.confusion_matrix(arg(rec, "interm")?, &labels, parse(rec, "n_classes")?)?;
            let mut h = 0;
            for row in m {
                for c in row {
                    h = mix_u64(h, c as u64);
                }
            }
            Ok(Some(h))
        }
        "diag.accuracy" => {
            let labels: Vec<u8> = parse_csv(rec, "labels")?;
            let acc = sys.accuracy(arg(rec, "interm")?, &labels)?;
            Ok(Some(mix_f64(0, acc)))
        }
        "diag.select_where_gt" => {
            let rows = sys.select_where_gt(
                arg(rec, "interm")?,
                arg(rec, "col")?,
                parse(rec, "threshold")?,
            )?;
            let mut h = 0;
            for r in rows {
                h = mix_u64(h, r as u64);
            }
            Ok(Some(h))
        }
        "diag.pca_projection" => {
            let (m, frac) = sys.pca_projection(arg(rec, "interm")?, parse(rec, "k")?)?;
            Ok(Some(mix_f64(digest_matrix(&m), frac)))
        }
        "diag.group_metric" => {
            let groups: Vec<u8> = parse_csv(rec, "groups")?;
            let rows = sys.group_metric(
                arg(rec, "interm")?,
                arg(rec, "col")?,
                &groups,
                parse(rec, "n_groups")?,
            )?;
            let mut h = 0;
            for (g, mean, count) in rows {
                h = mix_u64(mix_f64(mix_u64(h, g as u64), mean), count as u64);
            }
            Ok(Some(h))
        }
        op => Ok(Some(mix_str(mix_str(0, "unknown-op"), op))),
    }
}

/// Re-execute a captured journal against an open system (fresh, or the
/// original store with its manifest reopened — registrations of known
/// models re-attach their sources instead of erroring).
pub fn replay_into(
    sys: &mut Mistique,
    records: &[AuditRecord],
    opts: &ReplayOptions,
) -> Result<ReplayOutcome, MistiqueError> {
    let mut out = ReplayOutcome::default();
    let mut cache = DataCache::default();
    for rec in records {
        match replay_one(sys, rec, &mut cache) {
            Ok(Some(digest)) => {
                out.executed += 1;
                out.transcript.push(ReplayStep {
                    seq: rec.seq,
                    op: rec.op.clone(),
                    digest,
                });
            }
            Ok(None) => out
                .skipped
                .push((rec.seq, format!("{} is not replayable", rec.op))),
            Err(e) => {
                if opts.stop_on_error {
                    return Err(e);
                }
                out.executed += 1;
                out.failed += 1;
                out.transcript.push(ReplayStep {
                    seq: rec.seq,
                    op: rec.op.clone(),
                    digest: ERROR_DIGEST,
                });
            }
        }
    }
    Ok(out)
}

/// One worker-count leg of a differential replay.
#[derive(Clone, Debug)]
pub struct DifferentialRun {
    /// The `read_parallelism` this leg ran at.
    pub workers: usize,
    /// What the leg executed and digested.
    pub outcome: ReplayOutcome,
    /// Plan sequence `(op, plans)` re-captured by the leg's own journal.
    pub plans: Vec<(String, Vec<String>)>,
}

/// The verdict of [`differential_replay`].
#[derive(Clone, Debug)]
pub struct DifferentialReport {
    /// One leg per requested worker count.
    pub runs: Vec<DifferentialRun>,
    /// Human-readable descriptions of every divergence (empty = consistent).
    pub mismatches: Vec<String>,
    /// Of the original journal's records replayed with plan detail, how many
    /// chose the identical plan sequence this time. Informational: the cost
    /// model recalibrates from measured timings, so plan flips between the
    /// capture machine and the replay machine are legitimate.
    pub plan_agreement: (usize, usize),
}

impl DifferentialReport {
    /// True when every leg produced bit-identical answers and identical plan
    /// choices.
    pub fn consistent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The plan sequence a journal captured, keyed by op, in order — only for
/// records that fetched anything.
fn plan_seq(journal: &[AuditRecord]) -> Vec<(String, Vec<String>)> {
    journal
        .iter()
        .filter(|r| !r.plans.is_empty())
        .map(|r| (r.op.clone(), r.plans.clone()))
        .collect()
}

/// Replay `records` into a fresh store per worker count (subdirectories of
/// `base_dir`), asserting the answer transcript and the plan sequence agree
/// across every `read_parallelism` setting. Each leg runs with audit
/// capture ON, so the plan comparison reads each leg's own re-captured
/// journal.
pub fn differential_replay(
    records: &[AuditRecord],
    base_dir: &Path,
    config: &MistiqueConfig,
    workers: &[usize],
) -> Result<DifferentialReport, MistiqueError> {
    assert!(!workers.is_empty(), "need at least one worker count");
    let mut runs: Vec<DifferentialRun> = Vec::new();
    for &w in workers {
        let dir = base_dir.join(format!("replay_w{w}"));
        let mut cfg = config.clone();
        cfg.read_parallelism = w;
        if cfg.audit_budget_bytes == 0 {
            cfg.audit_budget_bytes = 1 << 20;
        }
        let mut sys = Mistique::open(&dir, cfg)?;
        let outcome = replay_into(&mut sys, records, &ReplayOptions::default())?;
        sys.audit_flush();
        let journal = sys.audit_records()?;
        runs.push(DifferentialRun {
            workers: w,
            outcome,
            plans: plan_seq(&journal),
        });
    }

    let mut mismatches = Vec::new();
    let base = &runs[0];
    for run in &runs[1..] {
        if run.outcome.transcript != base.outcome.transcript {
            let detail = base
                .outcome
                .transcript
                .iter()
                .zip(&run.outcome.transcript)
                .find(|(a, b)| a != b)
                .map(|(a, b)| {
                    format!(
                        "first divergence at seq {} ({}): {:016x} vs {:016x}",
                        a.seq, a.op, a.digest, b.digest
                    )
                })
                .unwrap_or_else(|| {
                    format!(
                        "transcript lengths differ: {} vs {}",
                        base.outcome.transcript.len(),
                        run.outcome.transcript.len()
                    )
                });
            mismatches.push(format!(
                "answers differ between workers={} and workers={}: {detail}",
                base.workers, run.workers
            ));
        }
        if run.plans != base.plans {
            mismatches.push(format!(
                "plan choices differ between workers={} and workers={}",
                base.workers, run.workers
            ));
        }
    }

    // Informational: how often the replay legs agreed with the *original*
    // capture's plan choices.
    let original = plan_seq(records);
    let compared = original.len().min(base.plans.len());
    let matched = original
        .iter()
        .zip(&base.plans)
        .filter(|(a, b)| a == b)
        .count();
    Ok(DifferentialReport {
        runs,
        mismatches,
        plan_agreement: (matched, compared),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_nn::{simple_cnn, vgg16_cifar};

    #[test]
    fn arch_round_trips_through_token() {
        for arch in [simple_cnn(16), vgg16_cifar(32)] {
            let token = encode_arch(&arch);
            let back = decode_arch(&token).unwrap();
            assert_eq!(back.name, arch.name);
            assert_eq!(back.in_c, arch.in_c);
            assert_eq!(back.in_hw, arch.in_hw);
            assert_eq!(back.n_classes, arch.n_classes);
            assert_eq!(back.frozen_prefix, arch.frozen_prefix);
            assert_eq!(back.layers, arch.layers);
        }
        assert!(decode_arch("not-an-arch").is_none());
        assert!(decode_arch("n|3|32|10|0|c8,q").is_none());
    }

    #[test]
    fn digests_are_value_sensitive() {
        assert_ne!(mix_f64(0, 1.0), mix_f64(0, 1.0000000000000002));
        assert_ne!(mix_u64(0, 1), mix_u64(0, 2));
        let a = mix_f64(mix_u64(0, 3), 0.5);
        let b = mix_f64(mix_u64(0, 3), 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn capture_then_replay_reproduces_answers() {
        use crate::system::{MistiqueConfig, StorageStrategy};
        use mistique_pipeline::templates::zillow_pipelines;

        let config = MistiqueConfig {
            row_block_size: 50,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        };
        let capture_dir = tempfile::tempdir().unwrap();
        let expected = {
            let mut sys = Mistique::open(capture_dir.path(), config.clone()).unwrap();
            let data = Arc::new(ZillowData::generate(150, 3));
            let id = sys
                .register_trad(zillow_pipelines().remove(0), data)
                .unwrap();
            sys.log_intermediates(&id).unwrap();
            let interm = sys.intermediates_of(&id)[0].clone();
            let top = sys.topk(&interm, "sqft", 7).unwrap();
            let acc = sys.pointq(&interm, "sqft", 11).unwrap();
            sys.audit_flush();
            (top, acc)
        };
        let records = Mistique::load_audit(capture_dir.path()).unwrap();
        assert_eq!(records.len(), 4);

        let replay_dir = tempfile::tempdir().unwrap();
        let mut fresh = Mistique::open(replay_dir.path(), config).unwrap();
        let outcome = replay_into(&mut fresh, &records, &ReplayOptions::default()).unwrap();
        assert_eq!(outcome.executed, 4);
        assert_eq!(outcome.failed, 0);
        assert!(outcome.skipped.is_empty());

        // The replayed answers are bit-identical to the captured session's.
        let interms: Vec<String> = fresh
            .model_ids()
            .iter()
            .flat_map(|m| fresh.intermediates_of(m))
            .collect();
        assert_eq!(fresh.topk(&interms[0], "sqft", 7).unwrap(), expected.0);
        assert_eq!(fresh.pointq(&interms[0], "sqft", 11).unwrap(), expected.1);
    }
}
