//! Capture-time transformation of intermediates: pooling summarization and
//! value quantization (Sec 4.1), applied before chunks reach the DataStore.

use mistique_dataframe::{Column, ColumnData, DataFrame};
use mistique_quantize::half::encode_f16;
use mistique_quantize::pool::pool_channels;
use mistique_quantize::{KbitQuantizer, PoolKind, ThresholdQuantizer};

/// Per-value storage scheme for captured activations.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ValueScheme {
    /// Full precision f32.
    Full,
    /// LP_QT: binary16 storage.
    Lp,
    /// KBIT_QT: `2^bits` quantile bins, fitted per intermediate.
    Kbit {
        /// Bits per code (paper default 8).
        bits: u32,
    },
    /// THRESHOLD_QT: binarize at the given percentile.
    Threshold {
        /// Percentile for the threshold (NetDissect: 0.995).
        pct: f64,
    },
}

impl ValueScheme {
    /// Scheme name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            ValueScheme::Full => "FULL".into(),
            ValueScheme::Lp => "LP_QT".into(),
            ValueScheme::Kbit { bits } => format!("{bits}BIT_QT"),
            ValueScheme::Threshold { .. } => "THRESHOLD_QT".into(),
        }
    }

    /// Worst-case per-value error bound of the scheme when statically known.
    /// `Some(0.0)` means lossless; `None` means the bound depends on the data
    /// distribution (KBIT quantile bins, THRESHOLD binarization). LP_QT's
    /// bound is binary16's relative rounding error (2^-11) for values inside
    /// the f16 range.
    pub fn error_bound(&self) -> Option<f64> {
        match self {
            ValueScheme::Full => Some(0.0),
            ValueScheme::Lp => Some(1.0 / 2048.0),
            ValueScheme::Kbit { .. } | ValueScheme::Threshold { .. } => None,
        }
    }

    /// Bytes per stored value (bit-level schemes round up per value for the
    /// cost model; actual chunk packing is byte-exact).
    pub fn bytes_per_value(&self) -> f64 {
        match self {
            ValueScheme::Full => 4.0,
            ValueScheme::Lp => 2.0,
            ValueScheme::Kbit { .. } => 1.0,
            ValueScheme::Threshold { .. } => 1.0 / 8.0,
        }
    }
}

/// The full capture configuration for one intermediate: optional pooling
/// summarization plus the value scheme.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CaptureScheme {
    /// Value quantization.
    pub value: ValueScheme,
    /// POOL_QT window σ (None = no pooling; paper default σ=2 for DNNs).
    pub pool_sigma: Option<usize>,
}

impl CaptureScheme {
    /// Full precision, no pooling — what TRAD intermediates use.
    pub fn full() -> CaptureScheme {
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: None,
        }
    }

    /// The paper's default DNN scheme: pool(2) over full-precision values.
    pub fn pool2() -> CaptureScheme {
        CaptureScheme {
            value: ValueScheme::Full,
            pool_sigma: Some(2),
        }
    }

    /// Display name, e.g. `POOL_QT(2)+FULL`.
    pub fn name(&self) -> String {
        match self.pool_sigma {
            Some(s) => format!("POOL_QT({s})+{}", self.value.name()),
            None => self.value.name(),
        }
    }
}

/// Result of capturing one activation tensor batch: the encoded dataframe
/// plus the fitted quantization state needed to decode it later.
pub struct CapturedBatch {
    /// Encoded dataframe (columns `n0..nK` after pooling).
    pub frame: DataFrame,
    /// Serialized KBIT quantizer, present the first time a KBIT intermediate
    /// is captured (fitted on this batch, reused for later batches).
    pub quantizer: Option<Vec<u8>>,
    /// Threshold value, present for THRESHOLD_QT.
    pub threshold: Option<f32>,
}

/// Pool a batch of per-example activation values laid out as
/// `channels x h x w` per example, returning pooled per-example values and
/// the pooled feature count.
pub fn pool_batch(
    examples: &[Vec<f32>],
    channels: usize,
    h: usize,
    w: usize,
    sigma: usize,
) -> (Vec<Vec<f32>>, usize) {
    let mut pooled = Vec::with_capacity(examples.len());
    let mut out_features = 0;
    for ex in examples {
        let (p, (oh, ow)) = pool_channels(ex, channels, h, w, sigma, PoolKind::Avg);
        out_features = channels * oh * ow;
        pooled.push(p);
    }
    (pooled, out_features)
}

/// Encode a batch of per-example feature vectors into a dataframe under the
/// given value scheme. For KBIT, `existing_quantizer` (serialized) is reused
/// when present; otherwise a quantizer is fitted on this batch's values and
/// returned. For THRESHOLD, `existing_threshold` works the same way.
pub fn encode_batch(
    examples: &[Vec<f32>],
    n_features: usize,
    scheme: ValueScheme,
    existing_quantizer: Option<&[u8]>,
    existing_threshold: Option<f32>,
) -> CapturedBatch {
    let n = examples.len();
    let col_values = |j: usize| -> Vec<f32> { examples.iter().map(|ex| ex[j]).collect() };

    match scheme {
        ValueScheme::Full => {
            let cols = (0..n_features)
                .map(|j| Column::new(format!("n{j}"), ColumnData::F32(col_values(j))))
                .collect();
            CapturedBatch {
                frame: DataFrame::from_columns(cols),
                quantizer: None,
                threshold: None,
            }
        }
        ValueScheme::Lp => {
            let cols = (0..n_features)
                .map(|j| {
                    let vals = col_values(j);
                    let bytes = encode_f16(&vals);
                    let bits: Vec<u16> = bytes
                        .chunks_exact(2)
                        .map(|c| u16::from_le_bytes([c[0], c[1]]))
                        .collect();
                    Column::new(format!("n{j}"), ColumnData::F16(bits))
                })
                .collect();
            CapturedBatch {
                frame: DataFrame::from_columns(cols),
                quantizer: None,
                threshold: None,
            }
        }
        ValueScheme::Kbit { bits } => {
            let q = match existing_quantizer {
                Some(bytes) => KbitQuantizer::from_bytes(bytes).expect("valid quantizer"),
                None => {
                    // Fit on this batch's pooled sample (the paper: "first
                    // collect samples of activations to build a distribution").
                    let mut sample: Vec<f32> = Vec::with_capacity(n * n_features.min(64));
                    for ex in examples {
                        sample.extend_from_slice(ex);
                    }
                    if sample.is_empty() {
                        sample.push(0.0);
                    }
                    KbitQuantizer::fit(&sample, bits)
                }
            };
            let cols = (0..n_features)
                .map(|j| {
                    let codes = q.encode_codes(&col_values(j));
                    Column::new(format!("n{j}"), ColumnData::U8(codes))
                })
                .collect();
            let ser = if existing_quantizer.is_none() {
                Some(q.to_bytes())
            } else {
                None
            };
            CapturedBatch {
                frame: DataFrame::from_columns(cols),
                quantizer: ser,
                threshold: None,
            }
        }
        ValueScheme::Threshold { pct } => {
            let t = match existing_threshold {
                Some(t) => t,
                None => {
                    let mut sample: Vec<f32> = Vec::new();
                    for ex in examples {
                        sample.extend_from_slice(ex);
                    }
                    if sample.is_empty() {
                        0.0
                    } else {
                        ThresholdQuantizer::fit(&sample, pct).threshold()
                    }
                }
            };
            let cols = (0..n_features)
                .map(|j| {
                    let flags: Vec<bool> = col_values(j).iter().map(|&v| v > t).collect();
                    Column::new(format!("n{j}"), ColumnData::Bool(flags))
                })
                .collect();
            let ser_t = if existing_threshold.is_none() {
                Some(t)
            } else {
                None
            };
            CapturedBatch {
                frame: DataFrame::from_columns(cols),
                quantizer: None,
                threshold: ser_t,
            }
        }
    }
}

/// Decode a stored (possibly quantized) column back to f64 values,
/// reconstructing KBIT codes through the stored quantizer — the paper's
/// "reconstruction cost" of 8BIT_QT reads.
pub fn decode_column(data: &ColumnData, scheme: ValueScheme, quantizer: Option<&[u8]>) -> Vec<f64> {
    match (scheme, data) {
        (ValueScheme::Kbit { .. }, ColumnData::U8(codes)) => {
            let q = quantizer
                .and_then(KbitQuantizer::from_bytes)
                .expect("KBIT intermediate requires its quantizer");
            codes.iter().map(|&c| q.value_of(c) as f64).collect()
        }
        // FULL / LP / THRESHOLD decode through the dataframe conversions
        // (f16 → f32 happens inside `to_f64`).
        (_, other) => other.to_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, f: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| (0..f).map(|j| ((i * f + j) % 100) as f32 / 10.0).collect())
            .collect()
    }

    #[test]
    fn full_scheme_is_lossless() {
        let ex = batch(10, 4);
        let cap = encode_batch(&ex, 4, ValueScheme::Full, None, None);
        assert_eq!(cap.frame.n_rows(), 10);
        assert_eq!(cap.frame.n_cols(), 4);
        let col0 = cap.frame.column("n0").unwrap();
        let dec = decode_column(&col0.data, ValueScheme::Full, None);
        assert_eq!(dec[1], ex[1][0] as f64);
    }

    #[test]
    fn lp_scheme_stores_f16() {
        let ex = batch(8, 3);
        let cap = encode_batch(&ex, 3, ValueScheme::Lp, None, None);
        let col = cap.frame.column("n1").unwrap();
        assert!(matches!(col.data, ColumnData::F16(_)));
        let dec = decode_column(&col.data, ValueScheme::Lp, None);
        for (i, d) in dec.iter().enumerate() {
            let orig = ex[i][1] as f64;
            assert!((d - orig).abs() <= orig.abs() * 1e-3 + 1e-3);
        }
    }

    #[test]
    fn kbit_fits_then_reuses_quantizer() {
        let ex = batch(50, 4);
        let first = encode_batch(&ex, 4, ValueScheme::Kbit { bits: 8 }, None, None);
        let qbytes = first.quantizer.expect("first batch fits a quantizer");
        let second = encode_batch(&ex, 4, ValueScheme::Kbit { bits: 8 }, Some(&qbytes), None);
        assert!(
            second.quantizer.is_none(),
            "reused quantizer is not re-emitted"
        );
        assert_eq!(first.frame, second.frame, "same quantizer, same codes");
        // Decode error bounded.
        let dec = decode_column(
            &first.frame.column("n2").unwrap().data,
            ValueScheme::Kbit { bits: 8 },
            Some(&qbytes),
        );
        for (i, d) in dec.iter().enumerate() {
            assert!((d - ex[i][2] as f64).abs() < 0.5, "row {i}");
        }
    }

    #[test]
    fn threshold_binarizes_against_fitted_threshold() {
        let ex = batch(100, 2);
        let cap = encode_batch(&ex, 2, ValueScheme::Threshold { pct: 0.9 }, None, None);
        let t = cap.threshold.expect("fitted threshold");
        assert!(t > 0.0);
        let col = cap.frame.column("n0").unwrap();
        assert!(matches!(col.data, ColumnData::Bool(_)));
        let dec = decode_column(&col.data, ValueScheme::Threshold { pct: 0.9 }, None);
        assert!(dec.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn pooling_reduces_feature_count() {
        // 2 channels of 4x4 = 32 features -> sigma 2 -> 2 channels of 2x2 = 8.
        let examples: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32; 32]).collect();
        let (pooled, f) = pool_batch(&examples, 2, 4, 4, 2);
        assert_eq!(f, 8);
        assert_eq!(pooled[1], vec![1.0; 8]);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(CaptureScheme::pool2().name(), "POOL_QT(2)+FULL");
        assert_eq!(CaptureScheme::full().name(), "FULL");
        let k = CaptureScheme {
            value: ValueScheme::Kbit { bits: 8 },
            pool_sigma: None,
        };
        assert_eq!(k.name(), "8BIT_QT");
    }

    #[test]
    fn error_bounds_match_scheme_lossiness() {
        assert_eq!(ValueScheme::Full.error_bound(), Some(0.0));
        assert_eq!(ValueScheme::Lp.error_bound(), Some(1.0 / 2048.0));
        assert_eq!(ValueScheme::Kbit { bits: 8 }.error_bound(), None);
        assert_eq!(ValueScheme::Threshold { pct: 0.995 }.error_bound(), None);
    }

    #[test]
    fn bytes_per_value_ordering() {
        assert!(ValueScheme::Full.bytes_per_value() > ValueScheme::Lp.bytes_per_value());
        assert!(
            ValueScheme::Lp.bytes_per_value() > ValueScheme::Kbit { bits: 8 }.bytes_per_value()
        );
        assert!(
            ValueScheme::Kbit { bits: 8 }.bytes_per_value()
                > ValueScheme::Threshold { pct: 0.995 }.bytes_per_value()
        );
    }
}
