//! Engine-side state of the secondary indexes (`mistique-index`): zone maps
//! and max-activation lists per materialized intermediate, persisted under
//! `<dir>/index/` through the same [`mistique_store::StorageBackend`] as
//! partition data and loaded lazily on first use.
//!
//! The index is a **pure accelerator**: every operation here is best-effort.
//! A failed write, a torn file, a garbage file, or a stale file (scheme /
//! row-block-size / row-count mismatch with the live metadata) degrades to
//! the scan path — it can never fail a logging call or return a wrong
//! answer. The query path never mutates the index directory; stale files
//! are overwritten by the next build and removed by purge or reclaim.
//!
//! Lifecycle:
//! - built incrementally while `log_intermediates{,_parallel}` stores blocks
//!   (and when a re-run adaptively materializes an intermediate);
//! - rebuilt after a demotion re-encode (the index follows the intermediate
//!   down the quantization ladder) — but only if one existed, so a reclaim
//!   pass that shed the index is not undone;
//! - dropped on purge, and shed first by the budget manager
//!   (`index.* bytes` are the cheapest bytes to reclaim);
//! - versioned: every persisted build carries a monotone `version` that
//!   feeds the query-cache key, so a drop or rebuild can never serve a
//!   stale cached frame as current.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use mistique_dataframe::{ColumnData, DataFrame};
use mistique_index::{IndexBuilder, IntermediateIndex};
use mistique_obs::{Counter, Gauge, Obs};
use mistique_store::{IndexDir, StorageBackend};

use crate::capture::{decode_column, ValueScheme};
use crate::system::{Mistique, MistiqueConfig};

/// Per-instance index state: the I/O adapter, lazily loaded indexes, and
/// in-flight builders.
pub(crate) struct IndexState {
    io: IndexDir,
    top_m: usize,
    row_block_size: usize,
    /// Lazily populated: `Some(idx)` = valid loaded index, `None` = known
    /// absent/stale/unreadable (re-checked only after a build or drop).
    loaded: HashMap<String, Option<Arc<IntermediateIndex>>>,
    /// Incremental builders for intermediates currently being logged.
    builders: HashMap<String, IndexBuilder>,
    /// Persisted index bytes per intermediate (file sizes).
    bytes: HashMap<String, u64>,
    /// Last persisted `version` per intermediate (survives drops so a
    /// rebuild always moves the query-cache key forward).
    versions: HashMap<String, u64>,
    hits: Counter,
    blocks_skipped: Counter,
    rebuilds: Counter,
    bytes_gauge: Gauge,
}

impl IndexState {
    /// Best-effort construction (the telemetry pattern): indexing disabled
    /// by `index_top_m == 0`, and any I/O failure creating the directory
    /// disables it for the session rather than failing the open. Metrics
    /// are registered eagerly so they appear in snapshots at zero.
    pub(crate) fn create(
        config: &MistiqueConfig,
        backend: &Arc<dyn StorageBackend>,
        dir: &Path,
        obs: &Obs,
    ) -> Option<IndexState> {
        if config.index_top_m == 0 {
            return None;
        }
        let io = IndexDir::create(Arc::clone(backend), dir).ok()?;
        Some(IndexState {
            io,
            top_m: config.index_top_m,
            row_block_size: config.row_block_size,
            loaded: HashMap::new(),
            builders: HashMap::new(),
            bytes: HashMap::new(),
            versions: HashMap::new(),
            hits: obs.counter("index.hits"),
            blocks_skipped: obs.counter("index.blocks_skipped"),
            rebuilds: obs.counter("index.rebuilds"),
            bytes_gauge: obs.gauge("index.bytes"),
        })
    }

    fn file_name(intermediate_id: &str) -> String {
        format!("idx_{}.idx", intermediate_id.replace(['/', '\\'], "_"))
    }

    fn sync_bytes_gauge(&self) {
        self.bytes_gauge.set_u64(self.bytes.values().sum());
    }
}

/// Block-skip attribution of one indexed read, carried into the query
/// report (`QueryReport::pruning`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexPruning {
    /// RowBlocks the column spans.
    pub blocks_total: usize,
    /// Blocks the zone maps proved free of matches (for a list-served
    /// top-k: every block).
    pub blocks_skipped: usize,
    /// The cost model's prediction for the indexed plan, in seconds
    /// ([`crate::cost::CostModel::t_indexed_read`]).
    pub predicted_s: f64,
}

impl Mistique {
    /// Whether secondary indexing is active for this instance.
    pub fn index_enabled(&self) -> bool {
        self.index.is_some()
    }

    /// The valid index of an intermediate, loading it from disk on first
    /// use. Returns `None` when indexing is disabled, the intermediate is
    /// unknown or unmaterialized, no file exists, the file is garbage, or
    /// the file is stale against the live metadata. Never errors and never
    /// touches the data store.
    pub(crate) fn index_for(&mut self, intermediate_id: &str) -> Option<Arc<IntermediateIndex>> {
        let (scheme, n_rows, materialized) = {
            let m = self.meta.intermediate(intermediate_id)?;
            (m.scheme.name(), m.n_rows, m.materialized)
        };
        let st = self.index.as_mut()?;
        if !materialized {
            return None;
        }
        let IndexState {
            io,
            loaded,
            bytes,
            versions,
            row_block_size,
            ..
        } = st;
        let entry = loaded
            .entry(intermediate_id.to_string())
            .or_insert_with(|| {
                let raw = io.read(&IndexState::file_name(intermediate_id)).ok()?;
                let idx = IntermediateIndex::from_bytes(&raw).ok()?;
                // Remember the on-disk version even for stale files, so the
                // next build still moves the cache key forward.
                versions
                    .entry(intermediate_id.to_string())
                    .or_insert(idx.version);
                bytes.insert(intermediate_id.to_string(), raw.len() as u64);
                Some(Arc::new(idx))
            });
        let idx = entry.clone()?;
        // Validate on every use: a demotion changes the scheme after load.
        if idx.matches(&scheme, *row_block_size, n_rows) {
            st.sync_bytes_gauge();
            Some(idx)
        } else {
            st.loaded.insert(intermediate_id.to_string(), None);
            None
        }
    }

    /// The index version feeding the query-cache key: `0` when no valid
    /// index exists, otherwise the monotone build counter.
    pub(crate) fn index_version(&mut self, intermediate_id: &str) -> u64 {
        if self.index.is_none() {
            return 0;
        }
        self.index_for(intermediate_id).map_or(0, |i| i.version)
    }

    /// Whether any index artifact exists for the intermediate (valid loaded
    /// index or a file on disk) — the demotion path's "rebuild only if one
    /// existed" check, evaluated *before* the metadata changes.
    pub(crate) fn index_exists(&self, intermediate_id: &str) -> bool {
        let Some(st) = self.index.as_ref() else {
            return false;
        };
        match st.loaded.get(intermediate_id) {
            Some(Some(_)) => true,
            // A load already concluded absent/stale; a demotion rebuild
            // would only resurrect a dead index, so treat as gone.
            Some(None) => false,
            None => st.io.exists(&IndexState::file_name(intermediate_id)),
        }
    }

    /// Persisted index bytes across all intermediates (as far as they have
    /// been loaded or built — reclaim loads lazily before accounting).
    pub(crate) fn index_total_bytes(&self) -> u64 {
        self.index.as_ref().map_or(0, |st| st.bytes.values().sum())
    }

    /// Persisted index bytes of one intermediate.
    pub(crate) fn index_bytes_of(&self, intermediate_id: &str) -> u64 {
        self.index
            .as_ref()
            .and_then(|st| st.bytes.get(intermediate_id).copied())
            .unwrap_or(0)
    }

    /// Feed one stored block's **encoded** column data to the builder; it is
    /// decoded here exactly as the read path would
    /// ([`decode_column`]), so indexed answers are bit-identical to scans.
    pub(crate) fn index_observe_block(
        &mut self,
        intermediate_id: &str,
        column: &str,
        block: usize,
        data: &ColumnData,
        value: ValueScheme,
        quantizer: Option<&[u8]>,
    ) {
        let Some(st) = self.index.as_mut() else {
            return;
        };
        let decoded = decode_column(data, value, quantizer);
        st.builders
            .entry(intermediate_id.to_string())
            .or_insert_with(|| IndexBuilder::new(st.top_m, st.row_block_size))
            .observe_block(column, block, &decoded);
    }

    /// Feed every block of a frame about to be stored (the TRAD / re-run
    /// materialization path).
    pub(crate) fn index_observe_frame(
        &mut self,
        intermediate_id: &str,
        frame: &DataFrame,
        value: ValueScheme,
        quantizer: Option<&[u8]>,
    ) {
        if self.index.is_none() {
            return;
        }
        let rbs = self.config.row_block_size;
        for (block, column, chunk) in frame.chunks(rbs) {
            let column = column.to_string();
            self.index_observe_block(
                intermediate_id,
                &column,
                block,
                &chunk.data,
                value,
                quantizer,
            );
        }
    }

    /// Finalize and persist the in-flight builder of an intermediate.
    /// Requires the metadata to be registered (scheme / row count are
    /// pinned into the file for staleness checks). Best-effort: a failed
    /// write leaves the system index-less for this intermediate.
    pub(crate) fn index_finish_build(&mut self, intermediate_id: &str) {
        let (scheme, n_rows) = match self.meta.intermediate(intermediate_id) {
            Some(m) => (m.scheme.name(), m.n_rows),
            None => return,
        };
        let Some(st) = self.index.as_mut() else {
            return;
        };
        let Some(builder) = st.builders.remove(intermediate_id) else {
            return;
        };
        let IndexState { io, versions, .. } = st;
        let file = IndexState::file_name(intermediate_id);
        let current = *versions
            .entry(intermediate_id.to_string())
            .or_insert_with(|| {
                io.read(&file)
                    .ok()
                    .and_then(|b| IntermediateIndex::from_bytes(&b).ok())
                    .map_or(0, |i| i.version)
            });
        let idx = builder.finish(intermediate_id, &scheme, n_rows, current + 1);
        let serialized = match idx.to_bytes() {
            Ok(b) => b,
            Err(_) => return,
        };
        match st.io.write_atomic(&file, &serialized) {
            Ok(()) => {
                st.versions.insert(intermediate_id.to_string(), current + 1);
                st.bytes
                    .insert(intermediate_id.to_string(), serialized.len() as u64);
                st.loaded
                    .insert(intermediate_id.to_string(), Some(Arc::new(idx)));
                st.rebuilds.inc();
                st.sync_bytes_gauge();
            }
            Err(_) => {
                // The on-disk state is unknown (old file, torn tmp, or
                // nothing); forget it and let the next query re-probe.
                st.bytes.remove(intermediate_id);
                st.loaded.remove(intermediate_id);
            }
        }
    }

    /// Discard every in-flight builder whose intermediate id starts with
    /// `prefix`, without persisting — a DNN logging pass that fails midway
    /// leaves one partially-fed builder per layer, and persisting any of
    /// them would index blocks that were never stored.
    pub(crate) fn index_discard_builders_with_prefix(&mut self, prefix: &str) {
        if let Some(st) = self.index.as_mut() {
            st.builders.retain(|k, _| !k.starts_with(prefix));
        }
    }

    /// Drop an intermediate's index: forget it in memory and remove the
    /// file (best-effort). Future queries fall back to the scan path; the
    /// version counter survives so a rebuild moves the cache key forward.
    pub(crate) fn index_drop(&mut self, intermediate_id: &str) {
        let Some(st) = self.index.as_mut() else {
            return;
        };
        st.builders.remove(intermediate_id);
        st.loaded.insert(intermediate_id.to_string(), None);
        st.bytes.remove(intermediate_id);
        let file = IndexState::file_name(intermediate_id);
        if st.io.exists(&file) {
            let _ = st.io.remove(&file);
        }
        st.sync_bytes_gauge();
    }

    /// Drop an intermediate's secondary index explicitly (the same step the
    /// budget manager takes under pressure). Subsequent top-k / threshold
    /// queries fall back to the scan path; answers are unchanged.
    pub fn drop_index(&mut self, intermediate_id: &str) {
        self.index_drop(intermediate_id);
    }

    /// Count an indexed-read hit against the metrics (`index.hits`,
    /// `index.blocks_skipped`).
    pub(crate) fn index_count_hit(&self, blocks_skipped: usize) {
        if let Some(st) = self.index.as_ref() {
            st.hits.inc();
            st.blocks_skipped.add(blocks_skipped as u64);
        }
    }
}
