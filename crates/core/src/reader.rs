//! The ChunkReader (Sec 6, Alg. 3): fetch an intermediate by reading stored
//! chunks or re-running the model, whichever the cost model prefers, plus
//! adaptive materialization (Sec 4.3) on the re-run path.

use std::time::Duration;

use mistique_dataframe::{Column, ColumnData, DataFrame};
use mistique_store::{ChunkKey, ReadAttribution};

use crate::capture::{decode_column, pool_batch, CaptureScheme, ValueScheme};
use crate::error::MistiqueError;
use crate::executor::ModelSource;
use crate::metadata::ModelKind;
use crate::report::{PlanChoice, QueryReport};
use crate::system::{Mistique, StorageStrategy};

/// How a fetch was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchStrategy {
    /// Chunks were read from the DataStore.
    Read,
    /// The model was re-run.
    Rerun,
    /// Served from the session query cache (see [`crate::qcache`]).
    Cached,
}

impl FetchStrategy {
    /// Stable lower-case name, used by the audit journal's argument
    /// fingerprint (parsed back by `mistique replay`).
    pub fn name(&self) -> &'static str {
        match self {
            FetchStrategy::Read => "read",
            FetchStrategy::Rerun => "rerun",
            FetchStrategy::Cached => "cached",
        }
    }
}

/// The result of fetching an intermediate.
#[derive(Debug)]
pub struct FetchResult {
    /// The fetched data, one f64-convertible column per requested column.
    pub frame: DataFrame,
    /// Strategy actually used.
    pub strategy: FetchStrategy,
    /// Wall-clock time of the fetch.
    pub fetch_time: Duration,
    /// The cost model's `t_read` prediction (seconds).
    pub predicted_read: f64,
    /// The cost model's `t_rerun` prediction (seconds).
    pub predicted_rerun: f64,
}

impl Mistique {
    /// Fetch an intermediate (all rows / all columns unless restricted),
    /// letting the cost model pick read vs re-run — the paper's
    /// `get_intermediates` API.
    pub fn get_intermediate(
        &mut self,
        intermediate_id: &str,
        columns: Option<&[&str]>,
        n_ex: Option<usize>,
    ) -> Result<FetchResult, MistiqueError> {
        let args = crate::audit::fetch_args(intermediate_id, columns, n_ex);
        self.audited("fetch.get", args, |sys| {
            sys.get_intermediate_impl(intermediate_id, columns, n_ex)
        })
    }

    fn get_intermediate_impl(
        &mut self,
        intermediate_id: &str,
        columns: Option<&[&str]>,
        n_ex: Option<usize>,
    ) -> Result<FetchResult, MistiqueError> {
        let (can_read, should_read, n_effective, predicted_read, predicted_rerun, scheme, bound) = {
            let meta = self
                .meta
                .intermediate(intermediate_id)
                .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate_id.into()))?;
            let model = self
                .meta
                .model(&meta.model_id)
                .ok_or_else(|| MistiqueError::UnknownModel(meta.model_id.clone()))?;
            let n = n_ex.unwrap_or(meta.n_rows).min(meta.n_rows);
            (
                meta.materialized,
                self.cost.should_read(model, meta, n),
                n,
                self.cost.t_read(meta, n),
                self.cost.t_rerun(model, meta, n),
                meta.scheme.name(),
                meta.scheme.value.error_bound(),
            )
        };
        // Session query cache: serve repeated identical fetches directly.
        // The key carries the clamped row count (the same one the cost model
        // and fetch use), so `None`, `Some(n_rows)`, and oversized requests —
        // which all return the identical frame — share a single entry.
        let index_version = self.index_version(intermediate_id);
        let cache_key = crate::qcache::CacheKey::new(
            intermediate_id,
            columns,
            Some(n_effective),
            index_version,
        );
        if let Some(frame) = self.qcache.get(&cache_key) {
            let mut sp = self.obs.span("fetch.cached");
            sp.attr("interm", intermediate_id).attr("n_ex", n_effective);
            let trace_id = sp.trace_id();
            let actual = sp.finish();
            self.obs.counter("decision.cached.count").inc();
            self.meta.bump_queries(intermediate_id);
            let query = self
                .query_label
                .clone()
                .unwrap_or_else(|| "fetch".to_string());
            self.push_report(QueryReport {
                seq: 0,
                query,
                intermediate: intermediate_id.to_string(),
                plan: PlanChoice::Cached,
                predicted_read_s: predicted_read,
                predicted_rerun_s: predicted_rerun,
                actual,
                n_ex: n_effective,
                cache_hit: true,
                attribution: ReadAttribution::default(),
                scheme,
                error_bound: bound,
                trace_id,
                drift_ratio: None,
                drift_flagged: false,
                pruning: None,
            });
            return Ok(FetchResult {
                frame,
                strategy: FetchStrategy::Cached,
                fetch_time: Duration::ZERO,
                predicted_read: 0.0,
                predicted_rerun: 0.0,
            });
        }
        let strategy = if can_read && should_read {
            FetchStrategy::Read
        } else {
            FetchStrategy::Rerun
        };
        let result = self.fetch_with_strategy(intermediate_id, columns, n_ex, strategy)?;
        self.qcache.insert(cache_key, &result.frame);
        Ok(result)
    }

    /// Fetch with an explicit strategy (benchmarks use this to measure both
    /// sides of the trade-off).
    pub fn fetch_with_strategy(
        &mut self,
        intermediate_id: &str,
        columns: Option<&[&str]>,
        n_ex: Option<usize>,
        strategy: FetchStrategy,
    ) -> Result<FetchResult, MistiqueError> {
        let mut args = crate::audit::fetch_args(intermediate_id, columns, n_ex);
        args.push(("strategy", strategy.name().to_string()));
        self.audited("fetch.strategy", args, |sys| {
            sys.fetch_with_strategy_impl(intermediate_id, columns, n_ex, strategy)
        })
    }

    fn fetch_with_strategy_impl(
        &mut self,
        intermediate_id: &str,
        columns: Option<&[&str]>,
        n_ex: Option<usize>,
        strategy: FetchStrategy,
    ) -> Result<FetchResult, MistiqueError> {
        let meta = self
            .meta
            .intermediate(intermediate_id)
            .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate_id.into()))?
            .clone();
        let model = self
            .meta
            .model(&meta.model_id)
            .ok_or_else(|| MistiqueError::UnknownModel(meta.model_id.clone()))?
            .clone();
        let n = n_ex.unwrap_or(meta.n_rows).min(meta.n_rows);

        let predicted_read = self.cost.t_read(&meta, n);
        let predicted_rerun = self.cost.t_rerun(&model, &meta, n);

        // Validate requested columns.
        if let Some(cols) = columns {
            for c in cols {
                if !meta.columns.iter().any(|m| m == c) {
                    return Err(MistiqueError::UnknownColumn {
                        intermediate: intermediate_id.into(),
                        column: (*c).to_string(),
                    });
                }
            }
        }

        let (span_name, decision) = match strategy {
            FetchStrategy::Read => ("fetch.read", "read"),
            FetchStrategy::Rerun => ("fetch.rerun", "rerun"),
            FetchStrategy::Cached => {
                return Err(MistiqueError::Invalid(
                    "Cached is not a forcible strategy; use get_intermediate".into(),
                ))
            }
        };
        // Attribute this fetch's DataStore activity by diffing the store's
        // cumulative read counters around the fetch.
        let store_before = self.store.read_attribution();
        // The span is the fetch timer (one source of truth for fetch_time).
        let mut sp = self.obs.span(span_name);
        sp.attr("interm", intermediate_id).attr("n_ex", n);
        let trace_id = sp.trace_id();
        let frame = match strategy {
            FetchStrategy::Read => {
                if !meta.materialized {
                    return Err(MistiqueError::Invalid(format!(
                        "{intermediate_id} is not materialized; cannot force Read"
                    )));
                }
                let f = self.read_stored(&meta, columns, n)?;
                let bytes = (meta.bytes_per_row() * n as f64) as u64;
                self.cost.observe_read(bytes, sp.elapsed());
                self.obs.counter("cost.observe_read.count").inc();
                self.obs
                    .gauge("cost.read_bandwidth")
                    .set(self.cost.read_bandwidth);
                f
            }
            FetchStrategy::Rerun => {
                let source = self
                    .sources
                    .get(&meta.model_id)
                    .cloned()
                    .ok_or_else(|| MistiqueError::UnknownModel(meta.model_id.clone()))?;
                self.rerun_and_maybe_materialize(&source, &meta.id, columns, n)?
            }
            FetchStrategy::Cached => unreachable!("rejected above"),
        };
        let fetch_time = sp.finish();

        // Record the decision with its estimated and actual costs.
        let predicted = match strategy {
            FetchStrategy::Read => predicted_read,
            _ => predicted_rerun,
        };
        self.obs
            .counter(&format!("decision.{decision}.count"))
            .inc();
        self.obs
            .histogram(&format!("decision.{decision}.predicted_ns"))
            .record((predicted.max(0.0) * 1e9) as u64);
        self.obs
            .histogram(&format!("decision.{decision}.actual_ns"))
            .record_duration(fetch_time);

        // Fold the prediction into the drift monitor and flag miscalibration.
        let (drift_ratio, drift_flagged) = self.drift.observe(decision, predicted, fetch_time);
        self.obs
            .gauge("cost_model.drift")
            .set(self.drift.worst_drift());
        if drift_flagged {
            self.obs.counter("cost_model.drift_flags").inc();
        }

        // Re-runs always serve freshly computed full-precision values; reads
        // serve whatever scheme the intermediate was stored under.
        let (scheme, error_bound) = match strategy {
            FetchStrategy::Read => (meta.scheme.name(), meta.scheme.value.error_bound()),
            _ => (CaptureScheme::full().name(), Some(0.0)),
        };
        let query = self
            .query_label
            .clone()
            .unwrap_or_else(|| "fetch".to_string());
        self.push_report(QueryReport {
            seq: 0,
            query,
            intermediate: intermediate_id.to_string(),
            plan: match strategy {
                FetchStrategy::Read => PlanChoice::Read,
                _ => PlanChoice::Rerun,
            },
            predicted_read_s: predicted_read,
            predicted_rerun_s: predicted_rerun,
            actual: fetch_time,
            n_ex: n,
            cache_hit: false,
            attribution: self.store.read_attribution().since(&store_before),
            scheme,
            error_bound,
            trace_id,
            drift_ratio: Some(drift_ratio),
            drift_flagged,
            pruning: None,
        });

        self.meta.bump_queries(intermediate_id);
        Ok(FetchResult {
            frame,
            strategy,
            fetch_time,
            predicted_read,
            predicted_rerun,
        })
    }

    /// Fetch specific rows by `row_id` using the primary index: only the
    /// RowBlocks containing a requested row are read (Sec 6 — "for
    /// particular kinds of queries (e.g. fetch results by row_id), MISTIQUE
    /// can use the primary index to speed up retrieval"). Rows are returned
    /// in the order requested. Falls back to re-run when the intermediate is
    /// not materialized.
    pub fn get_rows(
        &mut self,
        intermediate_id: &str,
        rows: &[usize],
        columns: Option<&[&str]>,
    ) -> Result<FetchResult, MistiqueError> {
        let mut args = crate::audit::fetch_args(intermediate_id, columns, None);
        args.push(("rows", crate::audit::csv_usize(rows)));
        self.audited("fetch.rows", args, |sys| {
            sys.get_rows_impl(intermediate_id, rows, columns)
        })
    }

    fn get_rows_impl(
        &mut self,
        intermediate_id: &str,
        rows: &[usize],
        columns: Option<&[&str]>,
    ) -> Result<FetchResult, MistiqueError> {
        let meta = self
            .meta
            .intermediate(intermediate_id)
            .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate_id.into()))?
            .clone();
        for &r in rows {
            if r >= meta.n_rows {
                return Err(MistiqueError::Invalid(format!(
                    "row {r} out of range ({} rows)",
                    meta.n_rows
                )));
            }
        }
        if !meta.materialized {
            // Re-run and gather.
            let full =
                self.fetch_with_strategy(intermediate_id, columns, None, FetchStrategy::Rerun)?;
            return Ok(FetchResult {
                frame: full.frame.gather_rows(rows),
                strategy: FetchStrategy::Rerun,
                fetch_time: full.fetch_time,
                predicted_read: full.predicted_read,
                predicted_rerun: full.predicted_rerun,
            });
        }

        let rbs = self.config.row_block_size;
        let wanted: Vec<String> = match columns {
            Some(cols) => {
                for c in cols {
                    if !meta.columns.iter().any(|m| m == c) {
                        return Err(MistiqueError::UnknownColumn {
                            intermediate: intermediate_id.into(),
                            column: (*c).to_string(),
                        });
                    }
                }
                cols.iter().map(|s| s.to_string()).collect()
            }
            None => meta.columns.clone(),
        };

        // Which blocks do the requested rows touch?
        let mut blocks: Vec<usize> = rows.iter().map(|r| r / rbs).collect();
        blocks.sort_unstable();
        blocks.dedup();

        let (predicted_read, predicted_rerun) = match self.meta.model(&meta.model_id) {
            Some(model) => (
                self.cost.t_read(&meta, rows.len()),
                self.cost.t_rerun(model, &meta, rows.len()),
            ),
            None => (0.0, 0.0),
        };
        let store_before = self.store.read_attribution();
        let mut sp = self.obs.span("fetch.rows");
        sp.attr("interm", intermediate_id).attr("rows", rows.len());
        let trace_id = sp.trace_id();
        // Fetch + decode only the touched blocks (possibly in parallel).
        let per_col = self.read_column_blocks(&meta, &wanted, &blocks)?;
        let mut out_cols = Vec::with_capacity(wanted.len());
        for (name, block_vals) in wanted.iter().zip(per_col) {
            let decoded: std::collections::HashMap<usize, Vec<f64>> =
                blocks.iter().copied().zip(block_vals).collect();
            let values: Vec<f64> = rows.iter().map(|&r| decoded[&(r / rbs)][r % rbs]).collect();
            out_cols.push(Column::f64(name.clone(), values));
        }
        let fetch_time = sp.finish();
        let query = self
            .query_label
            .clone()
            .unwrap_or_else(|| "fetch".to_string());
        self.push_report(QueryReport {
            seq: 0,
            query,
            intermediate: intermediate_id.to_string(),
            plan: PlanChoice::Read,
            predicted_read_s: predicted_read,
            predicted_rerun_s: predicted_rerun,
            actual: fetch_time,
            n_ex: rows.len(),
            cache_hit: false,
            attribution: self.store.read_attribution().since(&store_before),
            scheme: meta.scheme.name(),
            error_bound: meta.scheme.value.error_bound(),
            trace_id,
            drift_ratio: None,
            drift_flagged: false,
            pruning: None,
        });
        self.meta.bump_queries(intermediate_id);
        Ok(FetchResult {
            frame: DataFrame::from_columns(out_cols),
            strategy: FetchStrategy::Read,
            fetch_time,
            predicted_read: 0.0,
            predicted_rerun: 0.0,
        })
    }

    /// Serve a top-k query straight from the max-activation index. Returns
    /// `None` whenever the index cannot answer — disabled, absent, stale,
    /// column unknown, list shorter than `k`, or the cost model prefers a
    /// re-run. The last case is load-bearing for equivalence: the index
    /// holds *decoded stored* values, so it may only ever substitute for a
    /// Read plan (the scan path would serve the same decoded values), never
    /// for a full-precision Rerun.
    pub(crate) fn try_indexed_topk(
        &mut self,
        intermediate_id: &str,
        column: &str,
        k: usize,
    ) -> Option<Vec<(usize, f64)>> {
        if !self.index_enabled() {
            return None;
        }
        let (can_read, should_read, n_rows, predicted_read, predicted_rerun, pidx, scheme, bound) = {
            let meta = self.meta.intermediate(intermediate_id)?;
            let model = self.meta.model(&meta.model_id)?;
            if !meta.columns.iter().any(|m| m == column) {
                return None;
            }
            (
                meta.materialized,
                self.cost.should_read(model, meta, meta.n_rows),
                meta.n_rows,
                self.cost.t_read(meta, meta.n_rows),
                self.cost.t_rerun(model, meta, meta.n_rows),
                self.cost.t_indexed_read(meta, k.min(meta.n_rows)),
                meta.scheme.name(),
                meta.scheme.value.error_bound(),
            )
        };
        if !can_read || !should_read {
            return None;
        }
        let idx = self.index_for(intermediate_id)?;
        let top = idx.topk(column, k)?;
        // Served entirely from the in-memory list: every block is skipped.
        let blocks_total = n_rows.div_ceil(self.config.row_block_size);
        let mut sp = self.obs.span("fetch.indexed");
        sp.attr("interm", intermediate_id).attr("k", k);
        let trace_id = sp.trace_id();
        let actual = sp.finish();
        self.index_count_hit(blocks_total);
        self.meta.bump_queries(intermediate_id);
        let query = self
            .query_label
            .clone()
            .unwrap_or_else(|| "fetch".to_string());
        self.push_report(QueryReport {
            seq: 0,
            query,
            intermediate: intermediate_id.to_string(),
            plan: PlanChoice::IndexedRead,
            predicted_read_s: predicted_read,
            predicted_rerun_s: predicted_rerun,
            actual,
            n_ex: top.len(),
            cache_hit: false,
            attribution: ReadAttribution::default(),
            scheme,
            error_bound: bound,
            trace_id,
            drift_ratio: None,
            drift_flagged: false,
            pruning: Some(crate::index_state::IndexPruning {
                blocks_total,
                blocks_skipped: blocks_total,
                predicted_s: pidx,
            }),
        });
        Some(top)
    }

    /// Serve a `select_where_gt` via the zone maps: skip every RowBlock
    /// whose max (over non-NaN values) cannot exceed the threshold, read and
    /// filter only the surviving blocks. Returns `Ok(None)` whenever the
    /// index cannot answer (same degradation contract as
    /// [`Mistique::try_indexed_topk`]); read errors propagate.
    pub(crate) fn try_indexed_select_gt(
        &mut self,
        intermediate_id: &str,
        column: &str,
        threshold: f64,
    ) -> Result<Option<Vec<usize>>, MistiqueError> {
        if !self.index_enabled() {
            return Ok(None);
        }
        let Some(meta) = self.meta.intermediate(intermediate_id).cloned() else {
            return Ok(None);
        };
        let Some(model) = self.meta.model(&meta.model_id).cloned() else {
            return Ok(None);
        };
        if !meta.columns.iter().any(|m| m == column) {
            return Ok(None);
        }
        if !meta.materialized || !self.cost.should_read(&model, &meta, meta.n_rows) {
            return Ok(None);
        }
        let Some(idx) = self.index_for(intermediate_id) else {
            return Ok(None);
        };
        let Some((keep, blocks_total)) = idx.blocks_passing_gt(column, threshold) else {
            return Ok(None);
        };
        let predicted_read = self.cost.t_read(&meta, meta.n_rows);
        let predicted_rerun = self.cost.t_rerun(&model, &meta, meta.n_rows);
        let rbs = self.config.row_block_size;
        let store_before = self.store.read_attribution();
        let mut sp = self.obs.span("fetch.indexed");
        sp.attr("interm", intermediate_id)
            .attr("blocks", keep.len());
        let trace_id = sp.trace_id();
        // `keep` is ascending (zone maps are walked in block order), so
        // emitting `block * rbs + i` preserves the scan's ascending row-id
        // ordering exactly.
        let mut rows: Vec<usize> = Vec::new();
        let mut rows_scanned = 0usize;
        if !keep.is_empty() {
            let wanted = [column.to_string()];
            let per_col = self.read_column_blocks(&meta, &wanted, &keep)?;
            for (bi, &block) in keep.iter().enumerate() {
                for (i, &v) in per_col[0][bi].iter().enumerate() {
                    let row = block * rbs + i;
                    if row >= meta.n_rows {
                        break;
                    }
                    rows_scanned += 1;
                    if v > threshold {
                        rows.push(row);
                    }
                }
            }
        }
        let fetch_time = sp.finish();
        let blocks_skipped = blocks_total - keep.len();
        self.index_count_hit(blocks_skipped);
        self.meta.bump_queries(intermediate_id);
        let query = self
            .query_label
            .clone()
            .unwrap_or_else(|| "fetch".to_string());
        self.push_report(QueryReport {
            seq: 0,
            query,
            intermediate: intermediate_id.to_string(),
            plan: PlanChoice::IndexedRead,
            predicted_read_s: predicted_read,
            predicted_rerun_s: predicted_rerun,
            actual: fetch_time,
            n_ex: rows_scanned,
            cache_hit: false,
            attribution: self.store.read_attribution().since(&store_before),
            scheme: meta.scheme.name(),
            error_bound: meta.scheme.value.error_bound(),
            trace_id,
            drift_ratio: None,
            drift_flagged: false,
            pruning: Some(crate::index_state::IndexPruning {
                blocks_total,
                blocks_skipped,
                predicted_s: self.cost.t_indexed_read(&meta, rows_scanned),
            }),
        });
        Ok(Some(rows))
    }

    /// Read path: gather the chunks of each requested column across the
    /// RowBlocks covering rows `[0, n)`, decode (dequantize), and stitch.
    /// Also the storage manager's decode step before a demotion re-encode.
    pub(crate) fn read_stored(
        &mut self,
        meta: &crate::metadata::IntermediateMeta,
        columns: Option<&[&str]>,
        n: usize,
    ) -> Result<DataFrame, MistiqueError> {
        let rbs = self.config.row_block_size;
        let n_blocks = n.div_ceil(rbs);
        let wanted: Vec<String> = match columns {
            Some(cols) => cols.iter().map(|s| s.to_string()).collect(),
            None => meta.columns.clone(),
        };
        let blocks: Vec<usize> = (0..n_blocks).collect();
        let per_col = self.read_column_blocks(meta, &wanted, &blocks)?;
        let mut out_cols = Vec::with_capacity(wanted.len());
        for (name, block_vals) in wanted.iter().zip(per_col) {
            let mut values: Vec<f64> = Vec::with_capacity(n);
            for decoded in block_vals {
                values.extend(decoded);
            }
            values.truncate(n);
            out_cols.push(Column::f64(name.clone(), values));
        }
        Ok(DataFrame::from_columns(out_cols))
    }

    /// Fetch and decode the given RowBlocks of each wanted column. Returns,
    /// per column, the decoded values of each requested block (in the order
    /// of `blocks`).
    ///
    /// All chunk bytes are pulled through the store's batched read path, so
    /// cold partitions come off disk concurrently; decode (deserialize +
    /// dequantize) then fans out over one work item per `(column, block)`
    /// chunk — not per column — so the common DNN shape of one wide column
    /// across many RowBlocks still parallelizes. The fan-out is adaptive
    /// ([`adaptive_workers`]): clamped to the host CPUs and to the batch's
    /// byte volume, so tiny reads run serial with zero thread overhead.
    /// Items are assigned by round-robin striding and reassembled by index,
    /// so the output is identical at every `read_parallelism` setting, and a
    /// failing (or panicking) chunk surfaces as the error of the
    /// smallest-indexed item regardless of worker schedule.
    pub(crate) fn read_column_blocks(
        &mut self,
        meta: &crate::metadata::IntermediateMeta,
        wanted: &[String],
        blocks: &[usize],
    ) -> Result<Vec<Vec<Vec<f64>>>, MistiqueError> {
        let keys: Vec<ChunkKey> = wanted
            .iter()
            .flat_map(|name| {
                blocks
                    .iter()
                    .map(|&b| ChunkKey::new(meta.id.clone(), name.clone(), b as u32))
            })
            .collect();
        let workers = adaptive_workers(
            self.effective_read_parallelism(),
            keys.len(),
            self.store.batch_bytes_hint(&keys),
            self.config.min_read_bytes_per_worker,
        );
        let raw = self.store.get_chunk_bytes_batch(&keys, workers)?;

        let n_cols = wanted.len();
        let per_col = blocks.len();
        let n_items = n_cols * per_col;
        let value = meta.scheme.value;
        let quantizer = meta.quantizer.as_deref();
        // Capture the calling span before any fan-out so per-column decode
        // attribution parents identically whether decode runs serial or on
        // workers.
        let obs = self.obs.clone();
        let ctx = obs.current_context();
        let raw = &raw;
        // Item i = (column i / per_col, block i % per_col); returns the
        // decoded values plus the nanoseconds spent, for per-column span
        // attribution after the fan-out completes.
        let decode_item = |i: usize| -> Result<(Vec<f64>, u64), MistiqueError> {
            let t0 = std::time::Instant::now();
            let decoded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let chunk = mistique_dataframe::ColumnChunk::from_bytes(&raw[i])
                    .map_err(mistique_store::StoreError::from)?;
                Ok(decode_column(&chunk.data, value, quantizer))
            }))
            .unwrap_or_else(|payload| {
                Err(MistiqueError::Invalid(format!(
                    "decode of column '{}' block {} panicked: {}",
                    wanted[i / per_col],
                    blocks[i % per_col],
                    panic_message(payload.as_ref())
                )))
            })?;
            Ok((decoded, t0.elapsed().as_nanos() as u64))
        };

        let start_ns = obs.now_ns();
        let items = run_striped(n_items, workers, &decode_item)?;

        // Reassemble by index and emit one fetch.decode span per column —
        // its duration the sum of that column's block decodes — so the
        // trace tree keeps the per-column shape of PRs 2/4 even though the
        // work was striped at block granularity.
        let mut items = items.into_iter();
        let mut out = Vec::with_capacity(n_cols);
        for name in wanted {
            let mut col_blocks = Vec::with_capacity(per_col);
            let mut col_ns = 0u64;
            for _ in 0..per_col {
                let (vals, ns) = items.next().expect("one item per (col, block)");
                col_blocks.push(vals);
                col_ns += ns;
            }
            obs.record_span(
                "fetch.decode",
                ctx.as_ref(),
                start_ns,
                col_ns,
                vec![
                    ("col".to_string(), name.clone()),
                    ("blocks".to_string(), per_col.to_string()),
                ],
            );
            out.push(col_blocks);
        }
        Ok(out)
    }

    /// Re-run path: recreate the intermediate, align its layout with the
    /// stored schema (apply the same pooling), then apply adaptive
    /// materialization if configured (Alg. 4's γ test).
    fn rerun_and_maybe_materialize(
        &mut self,
        source: &ModelSource,
        intermediate_id: &str,
        columns: Option<&[&str]>,
        n: usize,
    ) -> Result<DataFrame, MistiqueError> {
        let meta = self.meta.intermediate(intermediate_id).unwrap().clone();
        let recreated = source.recreate_traced(
            meta.stage_index,
            match source.kind() {
                ModelKind::Trad => None,
                ModelKind::Dnn => Some(n),
            },
            &self.obs,
        );
        let mut frame = recreated.frame;

        // Align DNN layouts: stored intermediates may be pooled.
        if source.kind() == ModelKind::Dnn {
            if let (Some(sigma), Some(layer_shapes)) =
                (meta.scheme.pool_sigma, source.layer_shapes())
            {
                let (c, h, w) = layer_shapes[meta.stage_index];
                if h > 1 && sigma > 1 {
                    frame = pool_frame(&frame, c, h, w, sigma);
                }
            }
        }
        // TRAD pipelines recreate all rows; trim to the request.
        if frame.n_rows() > n {
            frame = frame.slice_rows(0, n);
        }

        // Adaptive materialization: store the full intermediate once its γ
        // clears the threshold. Only complete recreations are stored.
        if let StorageStrategy::Adaptive { gamma_min } = self.config.storage {
            let full = frame.n_rows() == meta.n_rows;
            if !meta.materialized && full {
                let model = self.meta.model(&meta.model_id).unwrap().clone();
                // γ uses the query count including this query — exactly
                // once: `n_queries` is bumped only after the fetch
                // completes, so the projection is the sole +1.
                let mut projected = meta.clone();
                projected.n_queries += 1;
                self.obs
                    .gauge("adaptive.decision_queries")
                    .set_u64(projected.n_queries);
                let gamma = self
                    .cost
                    .gamma(&model, &projected, meta.stored_bytes.max(1));
                self.obs.counter("adaptive.gamma_evals").inc();
                self.obs.gauge("adaptive.last_gamma").set(gamma);
                if gamma >= gamma_min {
                    self.obs.counter("adaptive.materializations").inc();
                    self.qcache.invalidate(intermediate_id);
                    let stored = self.store_frame(intermediate_id, &frame, source.kind())?;
                    let m = self.meta.intermediate_mut(intermediate_id).unwrap();
                    m.materialized = true;
                    m.stored_bytes = stored;
                    // Materialized from a re-run: full precision values.
                    m.scheme = CaptureScheme {
                        value: ValueScheme::Full,
                        pool_sigma: meta.scheme.pool_sigma,
                    };
                    m.quantizer = None;
                    m.threshold = None;
                    // The freshly stored chunks are full-precision: index
                    // them so subsequent top-k/threshold queries can prune.
                    self.index_observe_frame(intermediate_id, &frame, ValueScheme::Full, None);
                    self.index_finish_build(intermediate_id);
                    // The promotion may have pushed the store past the
                    // configured budget; demote/purge colder intermediates
                    // to make room.
                    self.reclaim_if_over_budget()?;
                }
            }
        }

        if let Some(cols) = columns {
            frame = frame.select(cols);
        }
        Ok(frame)
    }
}

/// Adaptive fan-out policy for the read path: the resolved worker count is
/// clamped to the number of work items and to the batch's serialized byte
/// volume — each worker must have at least `min_bytes_per_worker` bytes of
/// chunk data to justify its spawn cost, so small reads degrade to serial
/// instead of paying thread overhead for microseconds of decode.
fn adaptive_workers(
    requested: usize,
    items: usize,
    total_bytes: u64,
    min_bytes_per_worker: u64,
) -> usize {
    let by_bytes = (total_bytes / min_bytes_per_worker.max(1)).min(usize::MAX as u64) as usize;
    requested.max(1).min(items.max(1)).min(by_bytes.max(1))
}

/// Render a worker panic payload for error messages.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `f(0..n_items)` on up to `workers` scoped threads with round-robin
/// striding, reassembling results by item index. The output — including
/// which error is reported when several items fail (the smallest-indexed
/// one) — is identical at every worker count. Worker panics surface as
/// `MistiqueError`, never a process abort.
fn run_striped<T, F>(n_items: usize, workers: usize, f: &F) -> Result<Vec<T>, MistiqueError>
where
    T: Send,
    F: Fn(usize) -> Result<T, MistiqueError> + Sync,
{
    let workers = workers.max(1).min(n_items.max(1));
    if workers <= 1 {
        return (0..n_items).map(f).collect();
    }
    type Striped<T> = Vec<Vec<(usize, Result<T, MistiqueError>)>>;
    let scoped = crossbeam::thread::scope(|scope| -> std::thread::Result<Striped<T>> {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move |_| {
                    let mut part = Vec::new();
                    let mut i = w;
                    while i < n_items {
                        part.push((i, f(i)));
                        i += workers;
                    }
                    part
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let per_worker = match scoped {
        Ok(Ok(v)) => v,
        _ => {
            return Err(MistiqueError::Invalid(
                "read worker panicked outside the decode guard".to_string(),
            ))
        }
    };
    let mut slots: Vec<Option<Result<T, MistiqueError>>> = (0..n_items).map(|_| None).collect();
    for (i, res) in per_worker.into_iter().flatten() {
        slots[i] = Some(res);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("striding covers every item"))
        .collect()
}

/// Pool each row of an activation frame laid out as `c x h x w` features.
fn pool_frame(frame: &DataFrame, c: usize, h: usize, w: usize, sigma: usize) -> DataFrame {
    let n = frame.n_rows();
    let cols: Vec<Vec<f64>> = frame
        .columns()
        .iter()
        .map(|col| col.data.to_f64())
        .collect();
    let mut examples: Vec<Vec<f32>> = Vec::with_capacity(n);
    for r in 0..n {
        examples.push(cols.iter().map(|col| col[r] as f32).collect());
    }
    let (pooled, features) = pool_batch(&examples, c, h, w, sigma);
    let out_cols = (0..features)
        .map(|j| {
            let vals: Vec<f32> = pooled.iter().map(|ex| ex[j]).collect();
            Column::new(format!("n{j}"), ColumnData::F32(vals))
        })
        .collect();
    DataFrame::from_columns(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MistiqueConfig;
    use mistique_nn::{simple_cnn, CifarLike};
    use mistique_pipeline::templates::zillow_pipelines;
    use mistique_pipeline::ZillowData;
    use std::sync::Arc;

    fn trad_system(strategy: StorageStrategy) -> (tempfile::TempDir, Mistique, String) {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 40,
            storage: strategy,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(ZillowData::generate(150, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        (dir, sys, id)
    }

    #[test]
    fn read_matches_rerun_for_trad() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[4].clone();
        let read = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        let rerun = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Rerun)
            .unwrap();
        assert_eq!(read.frame.n_rows(), rerun.frame.n_rows());
        // Numeric columns agree (read path renders everything as f64).
        for col in read.frame.columns() {
            let a = col.data.to_f64();
            let b = rerun.frame.column(&col.name).unwrap().data.to_f64();
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()),
                    "col {} {x} vs {y}",
                    col.name
                );
            }
        }
    }

    #[test]
    fn column_subset_fetch() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[3].clone();
        let all = sys.get_intermediate(&interm, None, None).unwrap();
        let first_col = all.frame.column_names()[0].to_string();
        let one = sys
            .get_intermediate(&interm, Some(&[first_col.as_str()]), None)
            .unwrap();
        assert_eq!(one.frame.n_cols(), 1);
        assert_eq!(one.frame.n_rows(), all.frame.n_rows());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[0].clone();
        assert!(matches!(
            sys.get_intermediate(&interm, Some(&["no_such_col"]), None),
            Err(MistiqueError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn unmaterialized_forced_read_is_invalid() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::NoStore);
        let interm = sys.intermediates_of(&id)[0].clone();
        assert!(matches!(
            sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read),
            Err(MistiqueError::Invalid(_))
        ));
        // But the automatic path falls back to rerun.
        let r = sys.get_intermediate(&interm, None, None).unwrap();
        assert_eq!(r.strategy, FetchStrategy::Rerun);
    }

    #[test]
    fn query_counts_increment() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[2].clone();
        sys.get_intermediate(&interm, None, None).unwrap();
        sys.get_intermediate(&interm, None, None).unwrap();
        assert_eq!(sys.metadata().intermediate(&interm).unwrap().n_queries, 2);
    }

    #[test]
    fn adaptive_materializes_hot_intermediate() {
        // γ threshold of ~0 means: materialize as soon as reading would be
        // cheaper than re-running.
        let (_d, mut sys, id) = trad_system(StorageStrategy::Adaptive { gamma_min: 1e-12 });
        let interm = sys.intermediates_of(&id).last().unwrap().clone();
        assert!(!sys.metadata().intermediate(&interm).unwrap().materialized);
        // First query re-runs and (γ > 0 with n_queries=1) materializes.
        let r1 = sys.get_intermediate(&interm, None, None).unwrap();
        assert_eq!(r1.strategy, FetchStrategy::Rerun);
        assert!(sys.metadata().intermediate(&interm).unwrap().materialized);
        // Second query reads.
        let r2 = sys.get_intermediate(&interm, None, None).unwrap();
        assert_eq!(r2.strategy, FetchStrategy::Read);
        // And returns the same data.
        assert_eq!(r1.frame.n_rows(), r2.frame.n_rows());
        for col in r1.frame.columns() {
            let a = col.data.to_f64();
            let b = r2.frame.column(&col.name).unwrap().data.to_f64();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9 || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn adaptive_high_threshold_never_materializes() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Adaptive {
            gamma_min: f64::MAX,
        });
        let interm = sys.intermediates_of(&id)[1].clone();
        for _ in 0..3 {
            let r = sys.get_intermediate(&interm, None, None).unwrap();
            assert_eq!(r.strategy, FetchStrategy::Rerun);
        }
        assert!(!sys.metadata().intermediate(&interm).unwrap().materialized);
    }

    #[test]
    fn dnn_read_and_rerun_align_with_pooling() {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 8,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(CifarLike::generate(16, 10, 1));
        let id = sys
            .register_dnn(Arc::new(simple_cnn(16)), 5, 0, data, 8)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interm = format!("{id}.layer1");
        let read = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        let rerun = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Rerun)
            .unwrap();
        // pool(2) layout: both paths expose the pooled column count.
        assert_eq!(read.frame.n_cols(), rerun.frame.n_cols());
        assert_eq!(read.frame.n_rows(), rerun.frame.n_rows());
        for col in read.frame.columns() {
            let a = col.data.to_f64();
            let b = rerun.frame.column(&col.name).unwrap().data.to_f64();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-4, "col {}: {x} vs {y}", col.name);
            }
        }
    }

    #[test]
    fn get_rows_matches_full_fetch() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[3].clone();
        let full = sys
            .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap()
            .frame;
        let rows = [104usize, 0, 77, 41, 41];
        let picked = sys.get_rows(&interm, &rows, None).unwrap();
        assert_eq!(picked.strategy, FetchStrategy::Read);
        assert_eq!(picked.frame.n_rows(), 5);
        for col in picked.frame.columns() {
            let p = col.data.to_f64();
            let f = full.column(&col.name).unwrap().data.to_f64();
            for (k, &r) in rows.iter().enumerate() {
                assert!(
                    (p[k] - f[r]).abs() < 1e-9 || (p[k].is_nan() && f[r].is_nan()),
                    "col {} row {r}",
                    col.name
                );
            }
        }
    }

    #[test]
    fn get_rows_out_of_range_errors() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::Dedup);
        let interm = sys.intermediates_of(&id)[0].clone();
        assert!(sys.get_rows(&interm, &[10_000], None).is_err());
    }

    #[test]
    fn get_rows_falls_back_to_rerun_when_unmaterialized() {
        let (_d, mut sys, id) = trad_system(StorageStrategy::NoStore);
        let interm = sys.intermediates_of(&id)[0].clone();
        let r = sys.get_rows(&interm, &[3, 1], Some(&["sqft"])).unwrap();
        assert_eq!(r.strategy, FetchStrategy::Rerun);
        assert_eq!(r.frame.n_rows(), 2);
    }

    #[test]
    fn adaptive_workers_policy() {
        const MIN: u64 = 256 * 1024;
        // A batch smaller than one worker's minimum runs serial.
        assert_eq!(adaptive_workers(8, 100, 1_000, MIN), 1);
        // The byte volume caps the fan-out below the requested count.
        assert_eq!(adaptive_workers(8, 100, 3 * MIN, MIN), 3);
        assert_eq!(adaptive_workers(8, 100, 8 * MIN, MIN), 8);
        // Never more workers than work items.
        assert_eq!(adaptive_workers(8, 2, 100 * MIN, MIN), 2);
        // A zero threshold disables the byte clamp (treated as 1 byte).
        assert_eq!(adaptive_workers(4, 100, 1_024, 0), 4);
        // Degenerate inputs still resolve to at least one worker.
        assert_eq!(adaptive_workers(0, 0, 0, MIN), 1);
        assert_eq!(adaptive_workers(1, 16, u64::MAX, 1), 1);
    }

    #[test]
    fn run_striped_reassembles_identically_at_every_worker_count() {
        // 13 items (not divisible by 2 or 4): every worker count must yield
        // the same in-order output.
        let f = |i: usize| -> Result<u64, MistiqueError> { Ok((i as u64) * 31 + 7) };
        let serial = run_striped(13, 1, &f).unwrap();
        for workers in [2usize, 4, 8] {
            assert_eq!(
                run_striped(13, workers, &f).unwrap(),
                serial,
                "workers={workers}"
            );
        }
        // Zero items is an empty result, not an error.
        assert!(run_striped(0, 4, &f).unwrap().is_empty());
    }

    #[test]
    fn run_striped_reports_the_smallest_indexed_error() {
        // Items 2, 5 and 9 fail; every schedule must deterministically
        // surface item 2's error.
        let f = |i: usize| -> Result<usize, MistiqueError> {
            if i == 2 || i == 5 || i == 9 {
                Err(MistiqueError::Invalid(format!("item {i} failed")))
            } else {
                Ok(i)
            }
        };
        for workers in [1usize, 2, 4] {
            match run_striped(12, workers, &f) {
                Err(MistiqueError::Invalid(msg)) => {
                    assert_eq!(msg, "item 2 failed", "workers={workers}")
                }
                other => panic!("workers={workers}: expected Invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_striped_worker_panic_is_an_error_not_an_abort() {
        // A panic that escapes the per-item closure (i.e. outside the decode
        // guard) must come back as an error from the scope, not unwind
        // through crossbeam into an abort.
        let f = |i: usize| -> Result<usize, MistiqueError> {
            if i == 3 {
                panic!("boom in worker");
            }
            Ok(i)
        };
        let err = run_striped(8, 4, &f).unwrap_err();
        assert!(
            matches!(&err, MistiqueError::Invalid(m) if m.contains("panicked")),
            "unexpected error: {err:?}"
        );
    }

    #[test]
    fn stripped_quantizer_decode_panic_surfaces_as_error() {
        // A KBIT intermediate whose quantizer goes missing makes
        // `decode_column` panic. The per-item guard must convert that into
        // a MistiqueError naming the column — on the serial path and on the
        // striped path alike — instead of aborting the process.
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 8,
            storage: StorageStrategy::Dedup,
            dnn_capture: crate::capture::CaptureScheme {
                value: crate::capture::ValueScheme::Kbit { bits: 8 },
                pool_sigma: None,
            },
            min_read_bytes_per_worker: 0,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(CifarLike::generate(16, 10, 1));
        let id = sys
            .register_dnn(Arc::new(simple_cnn(16)), 5, 0, data, 8)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interm = format!("{id}.layer1");
        // Sanity: the intact read decodes.
        sys.fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
            .unwrap();
        // Strip the quantizer from the metadata.
        sys.meta.intermediate_mut(&interm).unwrap().quantizer = None;
        for workers in [1usize, 4] {
            sys.set_read_parallelism(workers);
            sys.store_mut().clear_read_cache();
            let err = sys
                .fetch_with_strategy(&interm, None, None, FetchStrategy::Read)
                .unwrap_err();
            match &err {
                MistiqueError::Invalid(msg) => {
                    assert!(
                        msg.contains("panicked") && msg.contains("quantizer"),
                        "workers={workers}: {msg}"
                    );
                }
                other => panic!("workers={workers}: expected Invalid, got {other:?}"),
            }
        }
    }

    #[test]
    fn dnn_partial_fetch_limits_rows() {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 8,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(CifarLike::generate(24, 10, 1));
        let id = sys
            .register_dnn(Arc::new(simple_cnn(16)), 5, 0, data, 8)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interm = format!("{id}.layer3");
        let r = sys
            .fetch_with_strategy(&interm, None, Some(10), FetchStrategy::Read)
            .unwrap();
        assert_eq!(r.frame.n_rows(), 10);
    }
}
