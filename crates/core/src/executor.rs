//! The PipelineExecutor: a uniform interface for running TRAD pipelines and
//! DNN checkpoints, used both when logging and when re-running for a query.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mistique_dataframe::DataFrame;
use mistique_nn::model::activation_to_frame;
use mistique_nn::{ArchConfig, CifarLike, Model};
use mistique_obs::Obs;
use mistique_pipeline::{Pipeline, ZillowData};

use crate::metadata::ModelKind;

/// An executable model MISTIQUE can re-run on demand.
#[derive(Clone)]
pub enum ModelSource {
    /// A traditional ML pipeline with its input tables.
    Trad {
        /// The executable pipeline.
        pipeline: Pipeline,
        /// Input tables (the paper's `input_func`).
        data: Arc<ZillowData>,
    },
    /// A DNN checkpoint with its input images.
    Dnn {
        /// Architecture description.
        arch: Arc<ArchConfig>,
        /// Weight seed.
        seed: u64,
        /// Checkpoint epoch.
        epoch: u32,
        /// Input dataset.
        data: Arc<CifarLike>,
        /// Forward batch size (the paper uses 1000).
        batch_size: usize,
    },
}

/// One re-created intermediate plus timing breakdown.
pub struct RecreatedIntermediate {
    /// The intermediate dataframe (full precision, unquantized).
    pub frame: DataFrame,
    /// Time to instantiate the model (`t_model_load`).
    pub model_load: Duration,
    /// Time to execute stages/layers up to the target.
    pub exec_time: Duration,
}

impl ModelSource {
    /// The model id.
    pub fn id(&self) -> String {
        match self {
            ModelSource::Trad { pipeline, .. } => pipeline.id.clone(),
            ModelSource::Dnn { arch, epoch, .. } => format!("{}@epoch{}", arch.name, epoch),
        }
    }

    /// TRAD or DNN.
    pub fn kind(&self) -> ModelKind {
        match self {
            ModelSource::Trad { .. } => ModelKind::Trad,
            ModelSource::Dnn { .. } => ModelKind::Dnn,
        }
    }

    /// Number of stages (TRAD) or layers (DNN).
    pub fn n_stages(&self) -> usize {
        match self {
            ModelSource::Trad { pipeline, .. } => pipeline.len(),
            ModelSource::Dnn { arch, seed, .. } => {
                // Layer count depends on arch expansion; build once cheaply.
                Model::build(arch, *seed, 0).n_layers()
            }
        }
    }

    /// Intermediate ids in stage order.
    pub fn intermediate_ids(&self) -> Vec<String> {
        match self {
            ModelSource::Trad { pipeline, .. } => (0..pipeline.len())
                .map(|i| pipeline.intermediate_id(i))
                .collect(),
            ModelSource::Dnn { .. } => {
                let id = self.id();
                (1..=self.n_stages())
                    .map(|i| format!("{id}.layer{i}"))
                    .collect()
            }
        }
    }

    /// Number of input examples the model runs over.
    pub fn n_examples(&self) -> usize {
        match self {
            // TRAD pipelines are defined over whole tables; "examples" are
            // the training rows.
            ModelSource::Trad { data, .. } => data.train.n_rows(),
            ModelSource::Dnn { data, .. } => data.len(),
        }
    }

    /// Re-create the intermediate at `stage_index` by running the model
    /// forward, over the first `n_ex` examples (DNN only; TRAD pipelines
    /// always run over their full tables, as in the paper's evaluation).
    pub fn recreate(&self, stage_index: usize, n_ex: Option<usize>) -> RecreatedIntermediate {
        self.recreate_inner(stage_index, n_ex, None)
    }

    /// [`ModelSource::recreate`] with tracing: model load and stage/layer
    /// execution become child spans of whatever span is active on the
    /// calling thread (e.g. the reader's `fetch.rerun`).
    pub fn recreate_traced(
        &self,
        stage_index: usize,
        n_ex: Option<usize>,
        obs: &Obs,
    ) -> RecreatedIntermediate {
        self.recreate_inner(stage_index, n_ex, Some(obs))
    }

    fn recreate_inner(
        &self,
        stage_index: usize,
        n_ex: Option<usize>,
        obs: Option<&Obs>,
    ) -> RecreatedIntermediate {
        match self {
            ModelSource::Trad { pipeline, data } => {
                let sp = obs.map(|o| {
                    let mut s = o.span("exec.run_stages");
                    s.attr("model", &pipeline.id).attr("stage", stage_index);
                    s
                });
                let t0 = Instant::now();
                let records = pipeline.run_to(data, stage_index);
                let exec_time = t0.elapsed();
                if let Some(s) = sp {
                    s.finish();
                }
                let frame = records
                    .into_iter()
                    .last()
                    .expect("at least one stage")
                    .output;
                RecreatedIntermediate {
                    frame,
                    model_load: Duration::ZERO,
                    exec_time,
                }
            }
            ModelSource::Dnn {
                arch,
                seed,
                epoch,
                data,
                batch_size,
            } => {
                let sp_load = obs.map(|o| {
                    let mut s = o.span("exec.model_load");
                    s.attr("model", self.id());
                    s
                });
                let t0 = Instant::now();
                let model = Model::build(arch, *seed, *epoch);
                let model_load = t0.elapsed();
                if let Some(s) = sp_load {
                    s.finish();
                }

                let n = n_ex.unwrap_or(data.len()).min(data.len());
                let input = data.images.slice_examples(0, n);
                let sp_fwd = obs.map(|o| {
                    let mut s = o.span("exec.forward");
                    s.attr("layer", stage_index).attr("n_ex", n);
                    s
                });
                let t1 = Instant::now();
                let out = model.forward_to_batched(&input, stage_index, *batch_size);
                let exec_time = t1.elapsed();
                if let Some(s) = sp_fwd {
                    s.finish();
                }
                RecreatedIntermediate {
                    frame: activation_to_frame(&out),
                    model_load,
                    exec_time,
                }
            }
        }
    }

    /// For DNN models: the activation shape `(c, h, w)` of each layer.
    pub fn layer_shapes(&self) -> Option<Vec<(usize, usize, usize)>> {
        match self {
            ModelSource::Trad { .. } => None,
            ModelSource::Dnn { arch, seed, .. } => {
                let m = Model::build(arch, *seed, 0);
                Some(m.layers.iter().map(|l| l.out_shape).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_nn::simple_cnn;
    use mistique_pipeline::templates::zillow_pipelines;

    fn trad_source() -> ModelSource {
        ModelSource::Trad {
            pipeline: zillow_pipelines().remove(0),
            data: Arc::new(ZillowData::generate(150, 1)),
        }
    }

    fn dnn_source() -> ModelSource {
        ModelSource::Dnn {
            arch: Arc::new(simple_cnn(16)),
            seed: 7,
            epoch: 2,
            data: Arc::new(CifarLike::generate(12, 10, 3)),
            batch_size: 5,
        }
    }

    #[test]
    fn trad_ids_and_stages() {
        let s = trad_source();
        assert_eq!(s.kind(), ModelKind::Trad);
        assert_eq!(s.intermediate_ids().len(), s.n_stages());
        assert!(s.intermediate_ids()[0].contains("interm0_ReadCSV"));
    }

    #[test]
    fn dnn_ids_and_stages() {
        let s = dnn_source();
        assert_eq!(s.kind(), ModelKind::Dnn);
        assert_eq!(s.id(), "CIFAR10_CNN@epoch2");
        let ids = s.intermediate_ids();
        assert_eq!(ids.len(), s.n_stages());
        assert_eq!(ids[0], "CIFAR10_CNN@epoch2.layer1");
    }

    #[test]
    fn trad_recreate_matches_direct_run() {
        let s = trad_source();
        let rec = s.recreate(3, None);
        if let ModelSource::Trad { pipeline, data } = &s {
            let direct = pipeline.run_to(data, 3).pop().unwrap().output;
            assert_eq!(rec.frame, direct);
        }
    }

    #[test]
    fn dnn_recreate_respects_n_ex() {
        let s = dnn_source();
        let all = s.recreate(0, None);
        let some = s.recreate(0, Some(4));
        assert_eq!(all.frame.n_rows(), 12);
        assert_eq!(some.frame.n_rows(), 4);
        assert_eq!(all.frame.n_cols(), some.frame.n_cols());
    }

    #[test]
    fn dnn_layer_shapes_available() {
        let s = dnn_source();
        let shapes = s.layer_shapes().unwrap();
        assert_eq!(shapes.len(), s.n_stages());
        assert_eq!(shapes[0].1, 32, "first conv keeps 32x32");
        assert!(
            s.layer_shapes().unwrap().last().unwrap().0 == 10,
            "10 classes"
        );
        assert!(trad_source().layer_shapes().is_none());
    }
}
