//! The MetadataDB (Fig 3): the central registry tying models, intermediates,
//! storage state, measured costs, and query statistics together.

use std::collections::HashMap;
use std::time::Duration;

use crate::capture::CaptureScheme;

/// What kind of model produced an intermediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// Traditional ML pipeline (scikit-learn-style stages).
    Trad,
    /// Deep neural network checkpoint.
    Dnn,
}

/// Registered model metadata.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelMeta {
    /// Model id (`P3_v1` or `CIFAR10_VGG16@epoch5`).
    pub id: String,
    /// TRAD or DNN.
    pub kind: ModelKind,
    /// Number of stages / layers.
    pub n_stages: usize,
    /// Measured time to instantiate the model (the cost model's
    /// `t_model_load`; the paper measured 1.2 s for VGG16).
    pub model_load: Duration,
    /// Examples the model was logged over.
    pub n_examples: usize,
    /// Ordered intermediate ids, one per stage.
    pub intermediates: Vec<String>,
}

/// Per-intermediate metadata: schema, storage state, measured costs, and the
/// query counter driving adaptive materialization.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IntermediateMeta {
    /// Intermediate id: `<model>.<stage>` (e.g. `P3_v1.interm4_Join`,
    /// `CIFAR10_VGG16@epoch5.layer11`).
    pub id: String,
    /// Owning model id.
    pub model_id: String,
    /// Stage / layer index within the model.
    pub stage_index: usize,
    /// Rows in the intermediate.
    pub n_rows: usize,
    /// Column names in order.
    pub columns: Vec<String>,
    /// Capture scheme the stored bytes use.
    pub scheme: CaptureScheme,
    /// Whether chunks for this intermediate are materialized in the store.
    pub materialized: bool,
    /// Serialized (uncompressed) bytes of the stored representation.
    pub stored_bytes: u64,
    /// Measured execution time of this stage alone during logging.
    pub exec_time: Duration,
    /// Measured cumulative execution time of stages `0..=stage_index`
    /// (the re-run cost numerator of Eq 2/3).
    pub cum_exec_time: Duration,
    /// Number of queries that have touched this intermediate (Eq 5's
    /// `n_query(i)`).
    pub n_queries: u64,
    /// Serialized KBIT quantizer when the value scheme is KBIT.
    pub quantizer: Option<Vec<u8>>,
    /// Fitted threshold when the value scheme is THRESHOLD.
    pub threshold: Option<f32>,
    /// Post-pooling activation geometry `(channels, h, w)` for DNN layers.
    pub shape: Option<(usize, usize, usize)>,
    /// Whether the reclaim ladder already re-encoded this intermediate's
    /// chunks as base+delta frames (the rung between THRESHOLD and purge);
    /// re-encoding is attempted at most once per materialization.
    #[serde(default)]
    pub delta_encoded: bool,
}

impl IntermediateMeta {
    /// Stored bytes per row (used by the cost model's `t_read`, Eq 4).
    pub fn bytes_per_row(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.stored_bytes as f64 / self.n_rows as f64
        }
    }
}

/// The metadata database.
#[derive(Debug, Default)]
pub struct MetadataDb {
    models: HashMap<String, ModelMeta>,
    intermediates: HashMap<String, IntermediateMeta>,
}

impl MetadataDb {
    /// Create an empty registry.
    pub fn new() -> MetadataDb {
        MetadataDb::default()
    }

    /// Register a model. Returns `false` if the id already exists.
    pub fn register_model(&mut self, meta: ModelMeta) -> bool {
        if self.models.contains_key(&meta.id) {
            return false;
        }
        self.models.insert(meta.id.clone(), meta);
        true
    }

    /// Look up a model.
    pub fn model(&self, id: &str) -> Option<&ModelMeta> {
        self.models.get(id)
    }

    /// Mutable model lookup.
    pub fn model_mut(&mut self, id: &str) -> Option<&mut ModelMeta> {
        self.models.get_mut(id)
    }

    /// All model ids, sorted for determinism.
    pub fn model_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.models.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Insert or replace intermediate metadata.
    pub fn upsert_intermediate(&mut self, meta: IntermediateMeta) {
        self.intermediates.insert(meta.id.clone(), meta);
    }

    /// Look up an intermediate.
    pub fn intermediate(&self, id: &str) -> Option<&IntermediateMeta> {
        self.intermediates.get(id)
    }

    /// Mutable intermediate lookup.
    pub fn intermediate_mut(&mut self, id: &str) -> Option<&mut IntermediateMeta> {
        self.intermediates.get_mut(id)
    }

    /// Intermediates of a model in stage order.
    pub fn intermediates_of(&self, model_id: &str) -> Vec<&IntermediateMeta> {
        let mut v: Vec<&IntermediateMeta> = self
            .intermediates
            .values()
            .filter(|m| m.model_id == model_id)
            .collect();
        v.sort_by_key(|m| m.stage_index);
        v
    }

    /// Count of registered intermediates.
    pub fn n_intermediates(&self) -> usize {
        self.intermediates.len()
    }

    /// Record one query against an intermediate, returning the new count.
    pub fn bump_queries(&mut self, id: &str) -> u64 {
        match self.intermediates.get_mut(id) {
            Some(m) => {
                m.n_queries += 1;
                m.n_queries
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_interm(id: &str, model: &str, stage: usize) -> IntermediateMeta {
        IntermediateMeta {
            id: id.into(),
            model_id: model.into(),
            stage_index: stage,
            n_rows: 100,
            columns: vec!["a".into(), "b".into()],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes: 1600,
            exec_time: Duration::from_millis(5),
            cum_exec_time: Duration::from_millis(20),
            n_queries: 0,
            quantizer: None,
            threshold: None,
            shape: None,
            delta_encoded: false,
        }
    }

    #[test]
    fn register_and_lookup_models() {
        let mut db = MetadataDb::new();
        assert!(db.register_model(ModelMeta {
            id: "m1".into(),
            kind: ModelKind::Trad,
            n_stages: 3,
            model_load: Duration::ZERO,
            n_examples: 100,
            intermediates: vec![],
        }));
        assert!(!db.register_model(ModelMeta {
            id: "m1".into(),
            kind: ModelKind::Trad,
            n_stages: 3,
            model_load: Duration::ZERO,
            n_examples: 100,
            intermediates: vec![],
        }));
        assert!(db.model("m1").is_some());
        assert!(db.model("m2").is_none());
    }

    #[test]
    fn intermediates_sorted_by_stage() {
        let mut db = MetadataDb::new();
        db.upsert_intermediate(sample_interm("m.i2", "m", 2));
        db.upsert_intermediate(sample_interm("m.i0", "m", 0));
        db.upsert_intermediate(sample_interm("other.i0", "other", 0));
        let of_m = db.intermediates_of("m");
        assert_eq!(of_m.len(), 2);
        assert_eq!(of_m[0].stage_index, 0);
        assert_eq!(of_m[1].stage_index, 2);
    }

    #[test]
    fn query_counter_increments() {
        let mut db = MetadataDb::new();
        db.upsert_intermediate(sample_interm("m.i0", "m", 0));
        assert_eq!(db.bump_queries("m.i0"), 1);
        assert_eq!(db.bump_queries("m.i0"), 2);
        assert_eq!(db.bump_queries("nope"), 0);
    }

    #[test]
    fn bytes_per_row() {
        let m = sample_interm("m.i0", "m", 0);
        assert_eq!(m.bytes_per_row(), 16.0);
        let mut empty = m.clone();
        empty.n_rows = 0;
        assert_eq!(empty.bytes_per_row(), 0.0);
    }
}
