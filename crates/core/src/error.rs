//! Error type for MISTIQUE operations.

use mistique_store::StoreError;

/// Errors surfaced by the MISTIQUE facade.
#[derive(Debug)]
pub enum MistiqueError {
    /// The underlying data store failed.
    Store(StoreError),
    /// The referenced model id is not registered.
    UnknownModel(String),
    /// The referenced intermediate id is not known.
    UnknownIntermediate(String),
    /// The referenced column does not exist in the intermediate.
    UnknownColumn {
        /// Intermediate id.
        intermediate: String,
        /// Missing column name.
        column: String,
    },
    /// A model id was registered twice.
    DuplicateModel(String),
    /// [`crate::system::Mistique::reopen`] found no manifest in the
    /// directory — nothing was ever persisted, or the crash happened before
    /// the first manifest rename.
    NoManifest,
    /// Invalid argument (message explains).
    Invalid(String),
}

impl std::fmt::Display for MistiqueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MistiqueError::Store(e) => write!(f, "store error: {e}"),
            MistiqueError::UnknownModel(m) => write!(f, "unknown model {m}"),
            MistiqueError::UnknownIntermediate(i) => write!(f, "unknown intermediate {i}"),
            MistiqueError::UnknownColumn {
                intermediate,
                column,
            } => {
                write!(f, "no column {column} in {intermediate}")
            }
            MistiqueError::DuplicateModel(m) => write!(f, "model {m} already registered"),
            MistiqueError::NoManifest => write!(f, "no manifest in directory"),
            MistiqueError::Invalid(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for MistiqueError {}

impl From<StoreError> for MistiqueError {
    fn from(e: StoreError) -> Self {
        MistiqueError::Store(e)
    }
}
