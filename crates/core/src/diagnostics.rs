//! Diagnostic queries (Table 1 / Table 5): implemented on top of
//! `get_intermediates`, as the paper's "common analytic functions applied on
//! top of the numpy array result".

use mistique_dataframe::DataFrame;
use mistique_linalg::stats::percentile;
use mistique_linalg::{svcca, Matrix, Pca, SvccaResult};

use crate::error::MistiqueError;
use crate::system::Mistique;

/// Convert a fetched intermediate into a dense matrix (rows = examples).
pub fn frame_to_matrix(frame: &DataFrame) -> Matrix {
    let n = frame.n_rows();
    let p = frame.n_cols();
    let cols: Vec<Vec<f64>> = frame.columns().iter().map(|c| c.data.to_f64()).collect();
    let mut data = Vec::with_capacity(n * p);
    for r in 0..n {
        for col in &cols {
            data.push(col[r]);
        }
    }
    Matrix::from_vec(n, p, data)
}

/// A histogram bucket for COL_DIST.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistBucket {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last bucket).
    pub hi: f64,
    /// Number of values in the bucket.
    pub count: usize,
}

impl Mistique {
    /// POINTQ: a single cell — e.g. "the activation of neuron-35 in layer-4
    /// for image-345".
    pub fn pointq(
        &mut self,
        intermediate: &str,
        column: &str,
        row: usize,
    ) -> Result<f64, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("col", column.to_string()),
            ("row", row.to_string()),
        ];
        self.audited("diag.pointq", args, |sys| {
            sys.with_query_label("diag.pointq", |sys| {
                sys.pointq_inner(intermediate, column, row)
            })
        })
    }

    fn pointq_inner(
        &mut self,
        intermediate: &str,
        column: &str,
        row: usize,
    ) -> Result<f64, MistiqueError> {
        let r = self.get_intermediate(intermediate, Some(&[column]), None)?;
        let values = r.frame.columns()[0].data.to_f64();
        values
            .get(row)
            .copied()
            .ok_or_else(|| MistiqueError::Invalid(format!("row {row} out of range")))
    }

    /// TOPK: the `k` rows with the highest values in one column — e.g. "the
    /// top-10 images that produce the highest activations for neuron-35".
    /// Returns `(row_id, value)` pairs, highest first.
    pub fn topk(
        &mut self,
        intermediate: &str,
        column: &str,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("col", column.to_string()),
            ("k", k.to_string()),
        ];
        self.audited("diag.topk", args, |sys| {
            sys.with_query_label("diag.topk", |sys| sys.topk_inner(intermediate, column, k))
        })
    }

    fn topk_inner(
        &mut self,
        intermediate: &str,
        column: &str,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, MistiqueError> {
        // Indexed fast path: the max-activation list answers without
        // touching the store whenever the planner would have chosen Read.
        if let Some(top) = self.try_indexed_topk(intermediate, column, k) {
            return Ok(top);
        }
        let r = self.get_intermediate(intermediate, Some(&[column]), None)?;
        let values = r.frame.columns()[0].data.to_f64();
        let mut pairs: Vec<(usize, f64)> = values.into_iter().enumerate().collect();
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
        pairs.truncate(k);
        Ok(pairs)
    }

    /// COL_DIST: histogram of a column — e.g. "plot the error rates for all
    /// homes".
    pub fn col_dist(
        &mut self,
        intermediate: &str,
        column: &str,
        n_buckets: usize,
    ) -> Result<Vec<HistBucket>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("col", column.to_string()),
            ("buckets", n_buckets.to_string()),
        ];
        self.audited("diag.col_dist", args, |sys| {
            sys.with_query_label("diag.col_dist", |sys| {
                sys.col_dist_inner(intermediate, column, n_buckets)
            })
        })
    }

    fn col_dist_inner(
        &mut self,
        intermediate: &str,
        column: &str,
        n_buckets: usize,
    ) -> Result<Vec<HistBucket>, MistiqueError> {
        if n_buckets == 0 {
            return Err(MistiqueError::Invalid("need at least one bucket".into()));
        }
        let r = self.get_intermediate(intermediate, Some(&[column]), None)?;
        let values: Vec<f64> = r.frame.columns()[0]
            .data
            .to_f64()
            .into_iter()
            .filter(|v| v.is_finite())
            .collect();
        if values.is_empty() {
            return Ok(vec![]);
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / n_buckets as f64).max(f64::MIN_POSITIVE);
        let mut buckets: Vec<HistBucket> = (0..n_buckets)
            .map(|i| HistBucket {
                lo: lo + width * i as f64,
                hi: lo + width * (i + 1) as f64,
                count: 0,
            })
            .collect();
        for v in values {
            let idx = (((v - lo) / width) as usize).min(n_buckets - 1);
            buckets[idx].count += 1;
        }
        Ok(buckets)
    }

    /// COL_DIFF: rows whose values differ between two columns (possibly of
    /// different intermediates/models) — e.g. "find the examples whose
    /// predictions differed between CIFAR10_CNN and CIFAR10_VGG16".
    pub fn col_diff(
        &mut self,
        intermediate_a: &str,
        column_a: &str,
        intermediate_b: &str,
        column_b: &str,
        tolerance: f64,
    ) -> Result<Vec<usize>, MistiqueError> {
        let args = vec![
            ("interm_a", intermediate_a.to_string()),
            ("col_a", column_a.to_string()),
            ("interm_b", intermediate_b.to_string()),
            ("col_b", column_b.to_string()),
            ("tol", tolerance.to_string()),
        ];
        self.audited("diag.col_diff", args, |sys| {
            sys.with_query_label("diag.col_diff", |sys| {
                sys.col_diff_inner(
                    intermediate_a,
                    column_a,
                    intermediate_b,
                    column_b,
                    tolerance,
                )
            })
        })
    }

    fn col_diff_inner(
        &mut self,
        intermediate_a: &str,
        column_a: &str,
        intermediate_b: &str,
        column_b: &str,
        tolerance: f64,
    ) -> Result<Vec<usize>, MistiqueError> {
        let a = self.get_intermediate(intermediate_a, Some(&[column_a]), None)?;
        let b = self.get_intermediate(intermediate_b, Some(&[column_b]), None)?;
        let va = a.frame.columns()[0].data.to_f64();
        let vb = b.frame.columns()[0].data.to_f64();
        let n = va.len().min(vb.len());
        Ok((0..n)
            .filter(|&i| (va[i] - vb[i]).abs() > tolerance)
            .collect())
    }

    /// ROW_DIFF: per-column deltas between two rows — e.g. "compare features
    /// for Home-50 and Home-55".
    pub fn row_diff(
        &mut self,
        intermediate: &str,
        row_a: usize,
        row_b: usize,
    ) -> Result<Vec<(String, f64)>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("row_a", row_a.to_string()),
            ("row_b", row_b.to_string()),
        ];
        self.audited("diag.row_diff", args, |sys| {
            sys.with_query_label("diag.row_diff", |sys| {
                sys.row_diff_inner(intermediate, row_a, row_b)
            })
        })
    }

    fn row_diff_inner(
        &mut self,
        intermediate: &str,
        row_a: usize,
        row_b: usize,
    ) -> Result<Vec<(String, f64)>, MistiqueError> {
        let r = self.get_intermediate(intermediate, None, None)?;
        if row_a >= r.frame.n_rows() || row_b >= r.frame.n_rows() {
            return Err(MistiqueError::Invalid("row out of range".into()));
        }
        Ok(r.frame
            .columns()
            .iter()
            .map(|c| {
                let v = c.data.to_f64();
                (c.name.clone(), v[row_a] - v[row_b])
            })
            .collect())
    }

    /// VIS: per-group mean of every column — e.g. "plot the average
    /// activations for all neurons in layer-5 across all classes" (ActiVis).
    /// `groups[i]` is the group (class) of row `i`; returns a
    /// `n_groups x n_columns` matrix of means.
    pub fn vis(
        &mut self,
        intermediate: &str,
        groups: &[u8],
        n_groups: usize,
    ) -> Result<Matrix, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("groups", crate::audit::csv_u8(groups)),
            ("n_groups", n_groups.to_string()),
        ];
        self.audited("diag.vis", args, |sys| {
            sys.with_query_label("diag.vis", |sys| {
                sys.vis_inner(intermediate, groups, n_groups)
            })
        })
    }

    fn vis_inner(
        &mut self,
        intermediate: &str,
        groups: &[u8],
        n_groups: usize,
    ) -> Result<Matrix, MistiqueError> {
        let r = self.get_intermediate(intermediate, None, None)?;
        let n = r.frame.n_rows().min(groups.len());
        let p = r.frame.n_cols();
        let mut sums = Matrix::zeros(n_groups, p);
        let mut counts = vec![0usize; n_groups];
        let cols: Vec<Vec<f64>> = r.frame.columns().iter().map(|c| c.data.to_f64()).collect();
        for i in 0..n {
            let g = groups[i] as usize;
            if g >= n_groups {
                return Err(MistiqueError::Invalid(format!("group {g} out of range")));
            }
            counts[g] += 1;
            for (j, col) in cols.iter().enumerate() {
                sums[(g, j)] += col[i];
            }
        }
        for g in 0..n_groups {
            if counts[g] > 0 {
                for j in 0..p {
                    sums[(g, j)] /= counts[g] as f64;
                }
            }
        }
        Ok(sums)
    }

    /// KNN: the `k` nearest rows to `row` under L2 distance over all columns
    /// — e.g. "find performance for images similar to image-51". Excludes
    /// the query row itself. Returns `(row_id, distance)` pairs.
    pub fn knn(
        &mut self,
        intermediate: &str,
        row: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("row", row.to_string()),
            ("k", k.to_string()),
        ];
        self.audited("diag.knn", args, |sys| {
            sys.with_query_label("diag.knn", |sys| sys.knn_inner(intermediate, row, k))
        })
    }

    fn knn_inner(
        &mut self,
        intermediate: &str,
        row: usize,
        k: usize,
    ) -> Result<Vec<(usize, f64)>, MistiqueError> {
        let r = self.get_intermediate(intermediate, None, None)?;
        let n = r.frame.n_rows();
        if row >= n {
            return Err(MistiqueError::Invalid(format!("row {row} out of range")));
        }
        let cols: Vec<Vec<f64>> = r.frame.columns().iter().map(|c| c.data.to_f64()).collect();
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&i| i != row)
            .map(|i| {
                let d: f64 = cols.iter().map(|c| (c[i] - c[row]).powi(2)).sum();
                (i, d.sqrt())
            })
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        dists.truncate(k);
        Ok(dists)
    }

    /// SVCCA (Alg. 2): compare the representations of two intermediates —
    /// e.g. "similarity between the logits and the last conv layer".
    pub fn svcca(
        &mut self,
        intermediate_a: &str,
        intermediate_b: &str,
        variance_frac: f64,
    ) -> Result<SvccaResult, MistiqueError> {
        let args = vec![
            ("interm_a", intermediate_a.to_string()),
            ("interm_b", intermediate_b.to_string()),
            ("var_frac", variance_frac.to_string()),
        ];
        self.audited("diag.svcca", args, |sys| {
            sys.with_query_label("diag.svcca", |sys| {
                sys.svcca_inner(intermediate_a, intermediate_b, variance_frac)
            })
        })
    }

    fn svcca_inner(
        &mut self,
        intermediate_a: &str,
        intermediate_b: &str,
        variance_frac: f64,
    ) -> Result<SvccaResult, MistiqueError> {
        let a = self.get_intermediate(intermediate_a, None, None)?;
        let b = self.get_intermediate(intermediate_b, None, None)?;
        let ma = frame_to_matrix(&a.frame);
        let mb = frame_to_matrix(&b.frame);
        Ok(svcca(&ma, &mb, variance_frac))
    }

    /// NetDissect (Alg. 3): interpretability score of one convolutional unit
    /// against a pixel-level concept mask. `unit` selects the channel; the
    /// intermediate's stored `shape` provides the map geometry;
    /// `concept_masks[i]` is the concept mask of image `i` at the stored
    /// resolution. Returns the intersection-over-union score.
    pub fn netdissect(
        &mut self,
        intermediate: &str,
        unit: usize,
        concept_masks: &[Vec<bool>],
        alpha: f64,
    ) -> Result<f64, MistiqueError> {
        // Concept masks are pixel-level inputs too large to journal; record
        // a digest so replay can detect (and report) the unreplayable call.
        let mut digest = 0u64;
        for mask in concept_masks {
            for &b in mask {
                digest = crate::audit::fnv1a(digest, &[b as u8]);
            }
        }
        let args = vec![
            ("interm", intermediate.to_string()),
            ("unit", unit.to_string()),
            ("alpha", alpha.to_string()),
            ("masks_n", concept_masks.len().to_string()),
            ("masks_digest", format!("{digest:016x}")),
        ];
        self.audited("diag.netdissect", args, |sys| {
            sys.with_query_label("diag.netdissect", |sys| {
                sys.netdissect_inner(intermediate, unit, concept_masks, alpha)
            })
        })
    }

    fn netdissect_inner(
        &mut self,
        intermediate: &str,
        unit: usize,
        concept_masks: &[Vec<bool>],
        alpha: f64,
    ) -> Result<f64, MistiqueError> {
        let shape = self
            .metadata()
            .intermediate(intermediate)
            .ok_or_else(|| MistiqueError::UnknownIntermediate(intermediate.into()))?
            .shape
            .ok_or_else(|| MistiqueError::Invalid("intermediate has no map shape".into()))?;
        let (c, h, w) = shape;
        if unit >= c {
            return Err(MistiqueError::Invalid(format!(
                "unit {unit} out of {c} channels"
            )));
        }
        let map_size = h * w;
        // Fetch only the columns of this unit's activation map.
        let wanted: Vec<String> = (unit * map_size..(unit + 1) * map_size)
            .map(|j| format!("n{j}"))
            .collect();
        let refs: Vec<&str> = wanted.iter().map(|s| s.as_str()).collect();
        let r = self.get_intermediate(intermediate, Some(&refs), None)?;
        let n = r.frame.n_rows();
        if concept_masks.len() < n {
            return Err(MistiqueError::Invalid("not enough concept masks".into()));
        }
        let cols: Vec<Vec<f64>> = r
            .frame
            .columns()
            .iter()
            .map(|col| col.data.to_f64())
            .collect();

        // T_k = (1 - alpha) percentile over all of the unit's activations.
        let mut all: Vec<f64> = Vec::with_capacity(n * map_size);
        for col in &cols {
            all.extend_from_slice(col);
        }
        let t_k = percentile(&all, 1.0 - alpha);

        // IoU between binarized maps and concept masks.
        let mut inter = 0usize;
        let mut union = 0usize;
        for (i, mask) in concept_masks.iter().enumerate().take(n) {
            if mask.len() != map_size {
                return Err(MistiqueError::Invalid("mask resolution mismatch".into()));
            }
            for (j, col) in cols.iter().enumerate() {
                let active = col[i] > t_k;
                let concept = mask[j];
                if active && concept {
                    inter += 1;
                }
                if active || concept {
                    union += 1;
                }
            }
        }
        Ok(if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        })
    }
}

impl Mistique {
    /// Per-row argmax over an intermediate's columns — class predictions
    /// from a softmax/logit layer.
    pub fn argmax_predictions(&mut self, intermediate: &str) -> Result<Vec<usize>, MistiqueError> {
        let args = vec![("interm", intermediate.to_string())];
        self.audited("diag.argmax_predictions", args, |sys| {
            sys.with_query_label("diag.argmax_predictions", |sys| {
                sys.argmax_predictions_inner(intermediate)
            })
        })
    }

    fn argmax_predictions_inner(
        &mut self,
        intermediate: &str,
    ) -> Result<Vec<usize>, MistiqueError> {
        let r = self.get_intermediate(intermediate, None, None)?;
        let cols: Vec<Vec<f64>> = r.frame.columns().iter().map(|c| c.data.to_f64()).collect();
        if cols.is_empty() {
            return Err(MistiqueError::Invalid("no columns".into()));
        }
        Ok((0..r.frame.n_rows())
            .map(|i| {
                let mut best = 0;
                for (j, c) in cols.iter().enumerate() {
                    if c[i] > cols[best][i] {
                        best = j;
                    }
                }
                best
            })
            .collect())
    }

    /// Confusion matrix (Table 1: "compute the confusion matrix for the
    /// training dataset"): entry `(t, p)` counts examples of true class `t`
    /// predicted as class `p`. The intermediate must be a per-class score
    /// layer (softmax/logits).
    pub fn confusion_matrix(
        &mut self,
        intermediate: &str,
        labels: &[u8],
        n_classes: usize,
    ) -> Result<Vec<Vec<usize>>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("labels", crate::audit::csv_u8(labels)),
            ("n_classes", n_classes.to_string()),
        ];
        self.audited("diag.confusion_matrix", args, |sys| {
            sys.with_query_label("diag.confusion_matrix", |sys| {
                sys.confusion_matrix_inner(intermediate, labels, n_classes)
            })
        })
    }

    fn confusion_matrix_inner(
        &mut self,
        intermediate: &str,
        labels: &[u8],
        n_classes: usize,
    ) -> Result<Vec<Vec<usize>>, MistiqueError> {
        let preds = self.argmax_predictions(intermediate)?;
        let mut m = vec![vec![0usize; n_classes]; n_classes];
        for (i, &p) in preds.iter().enumerate().take(labels.len()) {
            let t = labels[i] as usize;
            if t >= n_classes || p >= n_classes {
                return Err(MistiqueError::Invalid(format!(
                    "class out of range: true {t} pred {p}"
                )));
            }
            m[t][p] += 1;
        }
        Ok(m)
    }

    /// Classification accuracy against labels (argmax of the intermediate).
    pub fn accuracy(&mut self, intermediate: &str, labels: &[u8]) -> Result<f64, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("labels", crate::audit::csv_u8(labels)),
        ];
        self.audited("diag.accuracy", args, |sys| {
            sys.with_query_label("diag.accuracy", |sys| {
                sys.accuracy_inner(intermediate, labels)
            })
        })
    }

    fn accuracy_inner(&mut self, intermediate: &str, labels: &[u8]) -> Result<f64, MistiqueError> {
        let preds = self.argmax_predictions(intermediate)?;
        let n = preds.len().min(labels.len());
        if n == 0 {
            return Ok(0.0);
        }
        let hits = (0..n).filter(|&i| preds[i] == labels[i] as usize).count();
        Ok(hits as f64 / n as f64)
    }

    /// Rows where `column > threshold` — the paper's Sec 8.3 example of a
    /// query only MISTIQUE can index ("find predictions for examples with
    /// neuron-50 activation > 0.5"). Combine with
    /// [`Mistique::get_rows`] to fetch the matching examples from any other
    /// intermediate.
    pub fn select_where_gt(
        &mut self,
        intermediate: &str,
        column: &str,
        threshold: f64,
    ) -> Result<Vec<usize>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("col", column.to_string()),
            ("threshold", threshold.to_string()),
        ];
        self.audited("diag.select_where_gt", args, |sys| {
            sys.with_query_label("diag.select_where_gt", |sys| {
                sys.select_where_gt_inner(intermediate, column, threshold)
            })
        })
    }

    fn select_where_gt_inner(
        &mut self,
        intermediate: &str,
        column: &str,
        threshold: f64,
    ) -> Result<Vec<usize>, MistiqueError> {
        // Indexed fast path: zone maps prune blocks whose max cannot clear
        // the threshold; only the surviving blocks are read and filtered.
        if let Some(rows) = self.try_indexed_select_gt(intermediate, column, threshold)? {
            return Ok(rows);
        }
        let r = self.get_intermediate(intermediate, Some(&[column]), None)?;
        Ok(r.frame.columns()[0]
            .data
            .to_f64()
            .into_iter()
            .enumerate()
            .filter(|(_, v)| *v > threshold)
            .map(|(i, _)| i)
            .collect())
    }

    /// Project an intermediate's representation onto its top `k` principal
    /// components — the 2-D/3-D scatter view ActiVis-style front-ends draw.
    /// Returns the `n x k` projection and the variance fraction captured.
    pub fn pca_projection(
        &mut self,
        intermediate: &str,
        k: usize,
    ) -> Result<(Matrix, f64), MistiqueError> {
        let args = vec![("interm", intermediate.to_string()), ("k", k.to_string())];
        self.audited("diag.pca_projection", args, |sys| {
            sys.with_query_label("diag.pca_projection", |sys| {
                sys.pca_projection_inner(intermediate, k)
            })
        })
    }

    fn pca_projection_inner(
        &mut self,
        intermediate: &str,
        k: usize,
    ) -> Result<(Matrix, f64), MistiqueError> {
        let r = self.get_intermediate(intermediate, None, None)?;
        let m = frame_to_matrix(&r.frame);
        if k == 0 || k > m.cols() {
            return Err(MistiqueError::Invalid(format!(
                "k={k} out of range for {} columns",
                m.cols()
            )));
        }
        let pca = Pca::fit(&m, k);
        let frac = pca.explained_fraction(&m);
        Ok((pca.transform(&m), frac))
    }

    /// Mean of one column per group (Table 1: "compare model performance
    /// grouped by type of house"). Returns `(group, mean, count)` rows for
    /// groups 0..n_groups.
    pub fn group_metric(
        &mut self,
        intermediate: &str,
        column: &str,
        groups: &[u8],
        n_groups: usize,
    ) -> Result<Vec<(usize, f64, usize)>, MistiqueError> {
        let args = vec![
            ("interm", intermediate.to_string()),
            ("col", column.to_string()),
            ("groups", crate::audit::csv_u8(groups)),
            ("n_groups", n_groups.to_string()),
        ];
        self.audited("diag.group_metric", args, |sys| {
            sys.with_query_label("diag.group_metric", |sys| {
                sys.group_metric_inner(intermediate, column, groups, n_groups)
            })
        })
    }

    fn group_metric_inner(
        &mut self,
        intermediate: &str,
        column: &str,
        groups: &[u8],
        n_groups: usize,
    ) -> Result<Vec<(usize, f64, usize)>, MistiqueError> {
        let r = self.get_intermediate(intermediate, Some(&[column]), None)?;
        let values = r.frame.columns()[0].data.to_f64();
        let mut sums = vec![0.0; n_groups];
        let mut counts = vec![0usize; n_groups];
        for (i, &v) in values.iter().enumerate().take(groups.len()) {
            let g = groups[i] as usize;
            if g >= n_groups {
                return Err(MistiqueError::Invalid(format!("group {g} out of range")));
            }
            sums[g] += v;
            counts[g] += 1;
        }
        Ok((0..n_groups)
            .map(|g| {
                let mean = if counts[g] > 0 {
                    sums[g] / counts[g] as f64
                } else {
                    0.0
                };
                (g, mean, counts[g])
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MistiqueConfig, StorageStrategy};
    use mistique_nn::{simple_cnn, CifarLike};
    use mistique_pipeline::templates::zillow_pipelines;
    use mistique_pipeline::ZillowData;
    use std::sync::Arc;

    fn trad() -> (tempfile::TempDir, Mistique, String) {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 50,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(ZillowData::generate(200, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        (dir, sys, id)
    }

    fn dnn() -> (tempfile::TempDir, Mistique, String, Arc<CifarLike>) {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 10,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        };
        let mut sys = Mistique::open(dir.path(), config).unwrap();
        let data = Arc::new(CifarLike::generate(20, 5, 2));
        let id = sys
            .register_dnn(Arc::new(simple_cnn(16)), 9, 0, Arc::clone(&data), 10)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        (dir, sys, id, data)
    }

    #[test]
    fn pointq_returns_single_cell() {
        let (_d, mut sys, id) = trad();
        // properties table: parcel_id column of interm0.
        let interm = sys.intermediates_of(&id)[0].clone();
        let v = sys.pointq(&interm, "parcel_id", 7).unwrap();
        assert_eq!(v, 7.0);
        assert!(sys.pointq(&interm, "parcel_id", 10_000).is_err());
    }

    #[test]
    fn topk_sorted_descending() {
        let (_d, mut sys, id) = trad();
        let interm = sys.intermediates_of(&id)[0].clone();
        let top = sys.topk(&interm, "sqft", 5).unwrap();
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn col_dist_counts_all_rows() {
        let (_d, mut sys, id) = trad();
        let interm = sys.intermediates_of(&id)[0].clone();
        let hist = sys.col_dist(&interm, "bedrooms", 6).unwrap();
        let total: usize = hist.iter().map(|b| b.count).sum();
        assert_eq!(total, 200);
        assert!(sys.col_dist(&interm, "bedrooms", 0).is_err());
    }

    #[test]
    fn col_diff_finds_differing_predictions() {
        // Two P2 variants: predictions differ on most rows.
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                row_block_size: 50,
                ..MistiqueConfig::default()
            },
        )
        .unwrap();
        let data = Arc::new(ZillowData::generate(150, 1));
        let pipes = zillow_pipelines();
        let a = sys
            .register_trad(
                pipes.iter().find(|p| p.id == "P2_v0").unwrap().clone(),
                Arc::clone(&data),
            )
            .unwrap();
        let b = sys
            .register_trad(
                pipes.iter().find(|p| p.id == "P2_v4").unwrap().clone(),
                data,
            )
            .unwrap();
        sys.log_intermediates(&a).unwrap();
        sys.log_intermediates(&b).unwrap();
        let pa = sys.intermediates_of(&a).last().unwrap().clone();
        let pb = sys.intermediates_of(&b).last().unwrap().clone();
        let diff = sys.col_diff(&pa, "pred", &pb, "pred", 1e-12).unwrap();
        assert!(
            !diff.is_empty(),
            "different hyper-parameters change predictions"
        );
        // Identical intermediates differ nowhere.
        let none = sys.col_diff(&pa, "pred", &pa, "pred", 0.0).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn row_diff_reports_every_column() {
        let (_d, mut sys, id) = trad();
        let interm = sys.intermediates_of(&id)[0].clone();
        let d = sys.row_diff(&interm, 0, 1).unwrap();
        assert_eq!(
            d.len(),
            sys.metadata().intermediate(&interm).unwrap().columns.len()
        );
        // parcel_id difference between rows 0 and 1 is exactly -1.
        let pid = d.iter().find(|(n, _)| n == "parcel_id").unwrap();
        assert_eq!(pid.1, -1.0);
    }

    #[test]
    fn vis_groups_by_class() {
        let (_d, mut sys, id, data) = dnn();
        let interm = format!("{id}.layer9"); // softmax output
        let m = sys.vis(&interm, &data.labels, 5).unwrap();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 10);
        // Per-class mean probabilities are valid probabilities.
        for g in 0..5 {
            for j in 0..10 {
                assert!((0.0..=1.0).contains(&m[(g, j)]));
            }
        }
    }

    #[test]
    fn knn_finds_same_class_neighbours() {
        let (_d, mut sys, id, data) = dnn();
        // Early layer representation clusters by class pattern.
        let interm = format!("{id}.layer1");
        let hits = sys.knn(&interm, 0, 3).unwrap();
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|&(i, _)| i != 0), "query row excluded");
        // Majority of the 3 nearest neighbours share class 0 (rows 5,10,15).
        let same_class = hits.iter().filter(|&&(i, _)| data.labels[i] == 0).count();
        assert!(same_class >= 2, "expected class structure, got {hits:?}");
    }

    #[test]
    fn svcca_identical_layers_score_one() {
        let (_d, mut sys, id, _) = dnn();
        let interm = format!("{id}.layer8");
        let r = sys.svcca(&interm, &interm, 0.99).unwrap();
        assert!(r.mean_correlation() > 0.999);
    }

    #[test]
    fn netdissect_perfect_concept_scores_high() {
        let (_d, mut sys, id, _) = dnn();
        let interm = format!("{id}.layer1");
        let meta = sys.metadata().intermediate(&interm).unwrap().clone();
        let (_c, h, w) = meta.shape.unwrap();
        // Build the concept directly from the unit's own top activations:
        // IoU must then be 1.0.
        let map_size = h * w;
        let wanted: Vec<String> = (0..map_size).map(|j| format!("n{j}")).collect();
        let refs: Vec<&str> = wanted.iter().map(|s| s.as_str()).collect();
        let frame = sys
            .get_intermediate(&interm, Some(&refs), None)
            .unwrap()
            .frame;
        let cols: Vec<Vec<f64>> = frame.columns().iter().map(|c| c.data.to_f64()).collect();
        let mut all: Vec<f64> = Vec::new();
        for c in &cols {
            all.extend_from_slice(c);
        }
        let t = percentile(&all, 0.9);
        let masks: Vec<Vec<bool>> = (0..frame.n_rows())
            .map(|i| cols.iter().map(|c| c[i] > t).collect())
            .collect();
        let iou = sys.netdissect(&interm, 0, &masks, 0.1).unwrap();
        assert!(iou > 0.99, "got {iou}");
        // An empty concept scores 0.
        let empty: Vec<Vec<bool>> = (0..frame.n_rows()).map(|_| vec![false; map_size]).collect();
        let zero = sys.netdissect(&interm, 0, &empty, 0.1).unwrap();
        assert!(zero < 0.01);
    }

    #[test]
    fn netdissect_validates_inputs() {
        let (_d, mut sys, id, _) = dnn();
        let interm = format!("{id}.layer1");
        assert!(sys.netdissect(&interm, 999, &[], 0.1).is_err());
        let bad_masks = vec![vec![true; 3]; 20];
        assert!(sys.netdissect(&interm, 0, &bad_masks, 0.1).is_err());
    }

    #[test]
    fn pca_projection_reduces_dimensions() {
        let (_d, mut sys, id, _) = dnn();
        let interm = format!("{id}.layer8");
        let p = sys.metadata().intermediate(&interm).unwrap().columns.len();
        let (proj, frac) = sys.pca_projection(&interm, 2).unwrap();
        assert_eq!(proj.rows(), 20);
        assert_eq!(proj.cols(), 2);
        assert!(frac > 0.0 && frac <= 1.0 + 1e-9, "fraction {frac}");
        assert!(p > 2);
        assert!(sys.pca_projection(&interm, 0).is_err());
        assert!(sys.pca_projection(&interm, p + 1).is_err());
    }

    #[test]
    fn select_where_gt_feeds_get_rows() {
        let (_d, mut sys, id, _) = dnn();
        // Rows where the first softmax output exceeds its median-ish value.
        let n_layers = sys.intermediates_of(&id).len();
        let softmax = format!("{id}.layer{n_layers}");
        let probs = sys
            .get_intermediate(&softmax, Some(&["n0"]), None)
            .unwrap()
            .frame
            .columns()[0]
            .data
            .to_f64();
        let t = 0.1;
        let rows = sys.select_where_gt(&softmax, "n0", t).unwrap();
        let expected: Vec<usize> = probs
            .iter()
            .enumerate()
            .filter(|(_, v)| **v > t)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rows, expected);
        if !rows.is_empty() {
            // Use the selected row ids against a *different* intermediate.
            let picked = sys.get_rows(&format!("{id}.layer8"), &rows, None).unwrap();
            assert_eq!(picked.frame.n_rows(), rows.len());
        }
    }
}
