//! The cost model (Sec 5): when to re-run a model vs read a stored
//! intermediate (Eq 1–4), and when to materialize (Eq 5's γ) — plus a
//! [`DriftMonitor`] watching how well those predictions track reality.

use std::collections::HashMap;
use std::time::Duration;

use crate::capture::ValueScheme;
use crate::metadata::{IntermediateMeta, ModelKind, ModelMeta};

/// Cost-model parameters. Read bandwidth is calibrated online from observed
/// reads (an exponentially-weighted moving average), so the model's
/// predictions track the machine it runs on — this is what Fig 8b validates
/// against Fig 8a.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Effective bytes/second for reading + decompressing stored chunks
    /// (`rho_d` in Eq 4).
    pub read_bandwidth: f64,
    /// Extra per-value reconstruction factor for KBIT reads (code →
    /// representative lookup); the paper observes 8BIT_QT reads are the
    /// slowest for this reason.
    pub kbit_recon_factor: f64,
    /// EWMA smoothing for calibration updates, in `(0, 1]`.
    pub ewma_alpha: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_bandwidth: 400.0 * 1024.0 * 1024.0, // pre-calibration guess
            kbit_recon_factor: 3.0,
            ewma_alpha: 0.3,
        }
    }
}

impl CostModel {
    /// Predicted seconds to read `n_ex` rows of an intermediate (Eq 4):
    /// `n_ex * sizeof(ex) / rho_d`, with the KBIT reconstruction factor
    /// folded into the constant.
    pub fn t_read(&self, meta: &IntermediateMeta, n_ex: usize) -> f64 {
        let bytes = meta.bytes_per_row() * n_ex as f64;
        let factor = match meta.scheme.value {
            ValueScheme::Kbit { .. } => self.kbit_recon_factor,
            _ => 1.0,
        };
        bytes * factor / self.read_bandwidth
    }

    /// Predicted seconds for an **indexed** read (the `IndexedRead` plan):
    /// Eq 4 restricted to the rows the index could not prune — the rows of
    /// the RowBlocks that survive zone-map pruning, or the `k` list entries
    /// of a list-served top-k. Always `≤ t_read(meta, n_rows)`, which is
    /// why the planner only refines a Read decision into an IndexedRead,
    /// never overrides a Rerun one.
    pub fn t_indexed_read(&self, meta: &IntermediateMeta, rows_scanned: usize) -> f64 {
        self.t_read(meta, rows_scanned)
    }

    /// Predicted seconds to re-run the model up to this intermediate for
    /// `n_ex` examples (Eq 2/3). For TRAD models the pipeline always runs
    /// over its full tables, so `n_ex` is ignored; for DNNs the measured
    /// cumulative forward time scales linearly in `n_ex` plus the fixed
    /// model-load cost.
    pub fn t_rerun(&self, model: &ModelMeta, meta: &IntermediateMeta, n_ex: usize) -> f64 {
        let cum = meta.cum_exec_time.as_secs_f64();
        match model.kind {
            ModelKind::Trad => model.model_load.as_secs_f64() + cum,
            ModelKind::Dnn => {
                let per_ex = if model.n_examples > 0 {
                    cum / model.n_examples as f64
                } else {
                    0.0
                };
                model.model_load.as_secs_f64() + per_ex * n_ex as f64
            }
        }
    }

    /// The read-vs-rerun decision (Sec 5.1): read iff `t_rerun >= t_read`.
    pub fn should_read(&self, model: &ModelMeta, meta: &IntermediateMeta, n_ex: usize) -> bool {
        self.t_rerun(model, meta, n_ex) >= self.t_read(meta, n_ex)
    }

    /// γ (Eq 5): query seconds saved per byte of storage if this
    /// intermediate is (or stays) materialized, given its query count.
    /// Computed at `n_ex = TOTAL_EXAMPLES` as the paper specifies.
    ///
    /// Degenerate inputs (zero stored bytes, non-finite timings from a
    /// corrupted meta) yield 0.0 rather than inf/NaN, so γ comparisons in
    /// the materialization and reclamation paths always total-order.
    pub fn gamma(&self, model: &ModelMeta, meta: &IntermediateMeta, stored_bytes: u64) -> f64 {
        if stored_bytes == 0 {
            return 0.0;
        }
        let n_ex = model.n_examples;
        let saving = self.t_rerun(model, meta, n_ex) - self.t_read(meta, n_ex);
        if !(saving > 0.0 && saving.is_finite()) {
            return 0.0;
        }
        let g = saving * meta.n_queries as f64 / stored_bytes as f64;
        if g.is_finite() {
            g
        } else {
            0.0
        }
    }

    /// γ against the intermediate's *current* query count and stored size,
    /// with the `stored_bytes.max(1)` guard applied — the one entry point
    /// every materialization/demotion decision should use so a zero-byte
    /// record can never divide γ by zero.
    pub fn gamma_now(&self, model: &ModelMeta, meta: &IntermediateMeta) -> f64 {
        self.gamma(model, meta, meta.stored_bytes.max(1))
    }

    /// Fold an observed read (bytes, wall time) into the calibrated
    /// bandwidth.
    pub fn observe_read(&mut self, bytes: u64, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 || bytes == 0 {
            return;
        }
        let observed = bytes as f64 / secs;
        self.read_bandwidth =
            self.ewma_alpha * observed + (1.0 - self.ewma_alpha) * self.read_bandwidth;
    }
}

/// Tracks cost-model calibration per query class (e.g. the plan chosen:
/// `read` or `rerun`): an EWMA of the predicted/actual time ratio. A
/// calibrated model keeps the ratio near 1; once the smoothed ratio of any
/// class leaves `[1/tolerance, tolerance]`, that class is flagged and the
/// system raises the `cost_model.drift` gauge (see `Mistique`'s query
/// reports).
#[derive(Clone, Debug)]
pub struct DriftMonitor {
    /// EWMA smoothing factor in `(0, 1]`; larger reacts faster.
    alpha: f64,
    /// Flag once the smoothed ratio drifts beyond this factor (≥ 1).
    tolerance: f64,
    /// Smoothed predicted/actual ratio per query class.
    classes: HashMap<String, f64>,
}

impl Default for DriftMonitor {
    fn default() -> Self {
        DriftMonitor::new(0.2, 4.0)
    }
}

impl DriftMonitor {
    /// A monitor with the given EWMA factor and tolerance (both clamped to
    /// sane ranges).
    pub fn new(alpha: f64, tolerance: f64) -> DriftMonitor {
        DriftMonitor {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            tolerance: if tolerance.is_finite() {
                tolerance.max(1.0)
            } else {
                4.0
            },
            classes: HashMap::new(),
        }
    }

    /// The configured tolerance factor.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Fold one (predicted seconds, actual wall time) observation into a
    /// query class; returns `(smoothed_ratio, flagged)`. Non-positive
    /// predictions or instantaneous actuals are skipped (ratios would be
    /// meaningless), returning the class's current state.
    pub fn observe(&mut self, class: &str, predicted_s: f64, actual: Duration) -> (f64, bool) {
        let actual_s = actual.as_secs_f64();
        if !(predicted_s > 0.0 && actual_s > 0.0 && predicted_s.is_finite()) {
            let current = self.ratio(class).unwrap_or(1.0);
            return (current, self.out_of_tolerance(current));
        }
        let ratio = predicted_s / actual_s;
        // A finite prediction over a denormal-small actual can still divide
        // to inf; folding that into the EWMA would poison the class forever
        // (every later smoothed value stays inf). Skip such samples too.
        if !ratio.is_finite() {
            let current = self.ratio(class).unwrap_or(1.0);
            return (current, self.out_of_tolerance(current));
        }
        let smoothed = match self.classes.get(class) {
            Some(&prev) => self.alpha * ratio + (1.0 - self.alpha) * prev,
            None => ratio,
        };
        self.classes.insert(class.to_string(), smoothed);
        (smoothed, self.out_of_tolerance(smoothed))
    }

    fn out_of_tolerance(&self, ratio: f64) -> bool {
        ratio > self.tolerance || ratio < 1.0 / self.tolerance
    }

    /// Smoothed predicted/actual ratio of one class, if observed.
    pub fn ratio(&self, class: &str) -> Option<f64> {
        self.classes.get(class).copied()
    }

    /// Worst symmetric drift factor across classes: 1.0 means perfectly
    /// calibrated, and over- and under-prediction count the same (a ratio of
    /// 0.25 drifts as far as 4.0).
    pub fn worst_drift(&self) -> f64 {
        self.classes
            .values()
            .map(|&r| {
                if r >= 1.0 {
                    r
                } else {
                    1.0 / r.max(f64::MIN_POSITIVE)
                }
            })
            .fold(1.0, f64::max)
    }

    /// Whether any class is currently out of tolerance.
    pub fn any_flagged(&self) -> bool {
        self.worst_drift() > self.tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::CaptureScheme;

    fn model(kind: ModelKind, n_examples: usize, load_ms: u64) -> ModelMeta {
        ModelMeta {
            id: "m".into(),
            kind,
            n_stages: 5,
            model_load: Duration::from_millis(load_ms),
            n_examples,
            intermediates: vec![],
        }
    }

    fn interm(cum_ms: u64, stored_bytes: u64, n_rows: usize) -> IntermediateMeta {
        IntermediateMeta {
            id: "m.i".into(),
            model_id: "m".into(),
            stage_index: 1,
            n_rows,
            columns: vec![],
            scheme: CaptureScheme::full(),
            materialized: true,
            stored_bytes,
            exec_time: Duration::from_millis(cum_ms),
            cum_exec_time: Duration::from_millis(cum_ms),
            n_queries: 0,
            quantizer: None,
            threshold: None,
            shape: None,
            delta_encoded: false,
        }
    }

    #[test]
    fn read_time_scales_with_rows_and_bytes() {
        let cm = CostModel {
            read_bandwidth: 1000.0,
            ..Default::default()
        };
        let m = interm(0, 8000, 1000); // 8 bytes/row
        assert!((cm.t_read(&m, 1000) - 8.0).abs() < 1e-9);
        assert!((cm.t_read(&m, 500) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn indexed_read_is_never_costlier_than_the_full_scan() {
        let cm = CostModel {
            read_bandwidth: 1000.0,
            ..Default::default()
        };
        let m = interm(0, 8000, 1000);
        let full = cm.t_read(&m, 1000);
        // Pruning to a fraction of the rows prices proportionally cheaper.
        assert!((cm.t_indexed_read(&m, 250) - full / 4.0).abs() < 1e-9);
        for rows in [0usize, 1, 10, 500, 1000] {
            assert!(cm.t_indexed_read(&m, rows) <= full + 1e-12, "rows={rows}");
        }
    }

    #[test]
    fn kbit_reads_pay_reconstruction() {
        let cm = CostModel {
            read_bandwidth: 1000.0,
            kbit_recon_factor: 3.0,
            ..Default::default()
        };
        let mut m = interm(0, 1000, 1000);
        let full = cm.t_read(&m, 1000);
        m.scheme = CaptureScheme {
            value: ValueScheme::Kbit { bits: 8 },
            pool_sigma: None,
        };
        assert!((cm.t_read(&m, 1000) - 3.0 * full).abs() < 1e-9);
    }

    #[test]
    fn dnn_rerun_scales_linearly_with_examples() {
        let cm = CostModel::default();
        let model = model(ModelKind::Dnn, 1000, 1200); // 1.2s load, as the paper
        let m = interm(5000, 0, 1000); // 5s for 1000 examples => 5ms/ex
        let t100 = cm.t_rerun(&model, &m, 100);
        let t1000 = cm.t_rerun(&model, &m, 1000);
        assert!((t100 - (1.2 + 0.5)).abs() < 1e-9);
        assert!((t1000 - (1.2 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn trad_rerun_ignores_n_ex() {
        let cm = CostModel::default();
        let model = model(ModelKind::Trad, 1000, 0);
        let m = interm(750, 0, 1000);
        assert_eq!(cm.t_rerun(&model, &m, 1), cm.t_rerun(&model, &m, 1000));
    }

    #[test]
    fn decision_flips_with_intermediate_size() {
        // Big, cheap-to-recreate intermediate (Layer1-style): re-run wins.
        let cm = CostModel {
            read_bandwidth: 1000.0,
            ..Default::default()
        };
        let model = model(ModelKind::Dnn, 1000, 0);
        let big_cheap = interm(10, 1_000_000, 1000); // 1000 B/row, 0.01ms/ex
        assert!(!cm.should_read(&model, &big_cheap, 1000));
        // Small, expensive intermediate (deep layer): read wins.
        let small_deep = interm(60_000, 1000, 1000); // 1 B/row, 60ms/ex
        assert!(cm.should_read(&model, &small_deep, 1000));
    }

    #[test]
    fn gamma_grows_with_queries_and_shrinks_with_size() {
        let cm = CostModel {
            read_bandwidth: 1e9,
            ..Default::default()
        };
        let model = model(ModelKind::Trad, 1000, 0);
        let mut m = interm(1000, 1000, 1000);
        m.n_queries = 1;
        let g1 = cm.gamma(&model, &m, 1000);
        m.n_queries = 10;
        let g10 = cm.gamma(&model, &m, 1000);
        assert!(g10 > g1 * 9.9);
        let g_big = cm.gamma(&model, &m, 1_000_000);
        assert!(g_big < g10 / 100.0);
        assert_eq!(cm.gamma(&model, &m, 0), 0.0);
    }

    #[test]
    fn calibration_moves_bandwidth_toward_observations() {
        let mut cm = CostModel {
            read_bandwidth: 100.0,
            ewma_alpha: 0.5,
            ..Default::default()
        };
        cm.observe_read(1000, Duration::from_secs(1)); // observed 1000 B/s
        assert!((cm.read_bandwidth - 550.0).abs() < 1e-9);
        cm.observe_read(0, Duration::from_secs(1)); // ignored
        assert!((cm.read_bandwidth - 550.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_converges_to_steady_observed_bandwidth() {
        let mut cm = CostModel::default(); // 400 MiB/s pre-calibration guess
        let start = cm.read_bandwidth;
        // Steady stream of reads at 100 MB/s, far from the initial guess.
        let target = 1e8;
        for _ in 0..50 {
            cm.observe_read(1_000_000, Duration::from_millis(10));
        }
        assert!(
            (cm.read_bandwidth - target).abs() / target < 1e-3,
            "bandwidth {} did not converge to {target} from {start}",
            cm.read_bandwidth
        );
        // Convergence is monotone-stable: further folds stay put.
        cm.observe_read(1_000_000, Duration::from_millis(10));
        assert!((cm.read_bandwidth - target).abs() / target < 1e-3);
    }

    #[test]
    fn drift_monitor_stays_quiet_when_calibrated() {
        let mut dm = DriftMonitor::new(0.3, 4.0);
        for _ in 0..20 {
            // Predictions within 2x of actual: inside tolerance.
            let (_, flagged) = dm.observe("read", 0.002, Duration::from_millis(1));
            assert!(!flagged);
        }
        assert!(!dm.any_flagged());
        assert!(dm.worst_drift() <= 4.0);
        assert!((dm.ratio("read").unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn drift_monitor_flags_miscalibrated_model() {
        // A model predicting 100x the actual time: the very first
        // observation seeds the EWMA at ratio 100, far past tolerance.
        let mut dm = DriftMonitor::new(0.3, 4.0);
        let (ratio, flagged) = dm.observe("read", 0.1, Duration::from_millis(1));
        assert!((ratio - 100.0).abs() < 1e-9);
        assert!(flagged);
        assert!(dm.any_flagged());
        assert!(dm.worst_drift() > 4.0);
    }

    #[test]
    fn drift_is_symmetric_for_underprediction() {
        // Predicting 100x too LITTLE drifts just as far.
        let mut dm = DriftMonitor::new(0.3, 4.0);
        let (ratio, flagged) = dm.observe("rerun", 0.00001, Duration::from_millis(1));
        assert!(ratio < 1.0);
        assert!(flagged);
        assert!((dm.worst_drift() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn drift_classes_are_independent_and_recover() {
        let mut dm = DriftMonitor::new(0.5, 4.0);
        dm.observe("rerun", 1.0, Duration::from_millis(10)); // ratio 100
        assert!(dm.any_flagged());
        assert_eq!(dm.ratio("read"), None);
        // Calibrated observations pull the class back inside tolerance.
        let mut flagged = true;
        for _ in 0..12 {
            (_, flagged) = dm.observe("rerun", 0.01, Duration::from_millis(10));
        }
        assert!(!flagged, "EWMA recovered: {:?}", dm.ratio("rerun"));
        assert!(!dm.any_flagged());
    }

    #[test]
    fn zero_example_model_yields_finite_costs_and_gamma() {
        // A DNN model registered with 0 examples must not push inf/NaN into
        // t_rerun (cum / n_examples) or γ.
        let cm = CostModel::default();
        let model = model(ModelKind::Dnn, 0, 1200);
        let mut m = interm(5000, 4096, 1000);
        m.n_queries = 3;
        let t = cm.t_rerun(&model, &m, 1000);
        assert!(t.is_finite());
        assert!((t - 1.2).abs() < 1e-9, "load cost only, no per-ex term");
        let g = cm.gamma(&model, &m, m.stored_bytes);
        assert!(g.is_finite());
        assert!(g >= 0.0);
    }

    #[test]
    fn gamma_now_guards_zero_stored_bytes() {
        let cm = CostModel {
            read_bandwidth: 1e9,
            ..Default::default()
        };
        let model = model(ModelKind::Trad, 1000, 0);
        let mut m = interm(1000, 0, 1000); // zero stored bytes on record
        m.n_queries = 5;
        let g = cm.gamma_now(&model, &m);
        assert!(g.is_finite(), "max(1) guard keeps γ finite");
        assert!(g > 0.0, "cheap-to-read intermediate still scores");
        // And gamma_now matches the guarded explicit call.
        assert_eq!(g, cm.gamma(&model, &m, 1));
    }

    #[test]
    fn gamma_rejects_nonfinite_savings() {
        let cm = CostModel {
            read_bandwidth: 1e9,
            ..Default::default()
        };
        let model = model(ModelKind::Trad, 1000, 0);
        let mut m = interm(1000, 1000, 1000);
        m.n_queries = 2;
        m.cum_exec_time = Duration::MAX; // absurd meta: t_rerun overflows
        let g = cm.gamma(&model, &m, 1000);
        assert!(g.is_finite(), "γ never propagates inf: {g}");
    }

    #[test]
    fn drift_skips_infinite_ratio_observations() {
        // Regression: a finite positive prediction over a denormal-small
        // actual divides to inf; folding it in would poison the EWMA.
        let mut dm = DriftMonitor::new(0.3, 4.0);
        dm.observe("read", 0.002, Duration::from_millis(1)); // ratio 2
        let tiny = Duration::from_nanos(1);
        let (ratio, _) = dm.observe("read", 1e300, tiny); // 1e300/1e-9 = inf
        assert!(ratio.is_finite());
        assert!((ratio - 2.0).abs() < 1e-9, "EWMA untouched by inf sample");
        assert!(dm.worst_drift().is_finite());
        // Later good observations still fold in normally.
        let (r2, _) = dm.observe("read", 0.002, Duration::from_millis(1));
        assert!(r2.is_finite() && (r2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn drift_skips_degenerate_observations() {
        let mut dm = DriftMonitor::new(0.3, 4.0);
        let (ratio, flagged) = dm.observe("read", 0.0, Duration::from_millis(1));
        assert_eq!(ratio, 1.0);
        assert!(!flagged);
        let (_, flagged) = dm.observe("read", 1.0, Duration::ZERO);
        assert!(!flagged);
        assert_eq!(dm.ratio("read"), None, "nothing was folded in");
    }
}
