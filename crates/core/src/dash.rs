//! `mistique top` — the workload dashboard, rendered entirely from a store
//! directory: the audit journal under `<dir>/audit/` supplies per-operation
//! rates, latency quantiles, plan mix and bytes touched; the flight
//! recorder's timeline under `<dir>/telemetry/` supplies cache hit rates,
//! index effectiveness, SLO gauges and budget headroom. No live engine is
//! required — the CLI renders the same view against a closed directory
//! (`--once`) or in a refresh loop while another process works.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::error::MistiqueError;
use crate::system::Mistique;

/// Per-operation aggregates derived from the journal.
#[derive(Clone, Debug, Default)]
struct OpStats {
    count: u64,
    errors: u64,
    bytes: u64,
    partitions: u64,
    lat_ns: Vec<u64>,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// The dashboard's data model, assembled from the two on-disk rings.
/// Public so tests can assert on the numbers rather than the layout.
#[derive(Clone, Debug, Default)]
pub struct TopView {
    /// Journal records the view was built from.
    pub records: u64,
    /// Wall-clock span of the journal in milliseconds.
    pub span_ms: u64,
    /// Plan name → times chosen, across every record.
    pub plan_mix: BTreeMap<String, u64>,
    /// Latest value of every gauge the timeline has seen.
    pub gauges: BTreeMap<String, f64>,
    /// Latest value of every counter the timeline has seen.
    pub counters: BTreeMap<String, u64>,
    rendered: String,
}

impl TopView {
    /// The rendered dashboard text.
    pub fn text(&self) -> &str {
        &self.rendered
    }
}

/// Build the dashboard from a closed (or concurrently live) store directory.
pub fn top_view(dir: impl AsRef<Path>) -> Result<TopView, MistiqueError> {
    let dir = dir.as_ref();
    let records = Mistique::load_audit(dir)?;
    // A missing telemetry ring renders as an empty timeline, not an error —
    // the journal alone still carries the workload half of the view.
    let timeline = Mistique::load_timeline(dir).unwrap_or_default();

    let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for p in &timeline.points {
        for (k, v) in &p.gauges {
            gauges.insert(k.clone(), *v);
        }
        for (k, v) in &p.counters {
            counters.insert(k.clone(), *v);
        }
    }

    let mut ops: BTreeMap<String, OpStats> = BTreeMap::new();
    let mut plan_mix: BTreeMap<String, u64> = BTreeMap::new();
    for r in &records {
        let s = ops.entry(r.op.clone()).or_default();
        s.count += 1;
        if !r.ok {
            s.errors += 1;
        }
        s.bytes += r.bytes;
        s.partitions += r.partitions;
        s.lat_ns.push(r.actual_ns);
        for p in &r.plans {
            *plan_mix.entry(p.clone()).or_default() += 1;
        }
    }
    let span_ms = match (records.first(), records.last()) {
        (Some(a), Some(b)) => b.t_ms.saturating_sub(a.t_ms),
        _ => 0,
    };

    let mut out = String::new();
    let _ = writeln!(out, "mistique top — {}", dir.display());
    let _ = writeln!(
        out,
        "journal: {} records over {:.1}s",
        records.len(),
        span_ms as f64 / 1e3
    );
    let _ = writeln!(out);

    // Workload table.
    let _ = writeln!(
        out,
        "{:<24} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "OP", "COUNT", "ERR", "RATE/S", "P50", "P95", "MAX", "BYTES"
    );
    for (op, s) in &mut ops {
        s.lat_ns.sort_unstable();
        let rate = if span_ms > 0 {
            format!("{:.2}", s.count as f64 / (span_ms as f64 / 1e3))
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            out,
            "{:<24} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>10}",
            op,
            s.count,
            s.errors,
            rate,
            fmt_ns(quantile(&s.lat_ns, 0.50)),
            fmt_ns(quantile(&s.lat_ns, 0.95)),
            fmt_ns(*s.lat_ns.last().unwrap_or(&0)),
            fmt_bytes(s.bytes),
        );
    }
    let _ = writeln!(out);

    // Plan mix.
    let total_plans: u64 = plan_mix.values().sum();
    if total_plans > 0 {
        let mix = plan_mix
            .iter()
            .map(|(p, n)| format!("{p} {:.0}% ({n})", *n as f64 / total_plans as f64 * 100.0))
            .collect::<Vec<_>>()
            .join("  ");
        let _ = writeln!(out, "plans: {mix}");
    }

    // Cache + index effectiveness from the timeline's counters.
    let c = |name: &str| counters.get(name).copied().unwrap_or(0);
    let (qh, qm) = (c("qcache.hits"), c("qcache.misses"));
    if qh + qm > 0 {
        let _ = writeln!(
            out,
            "qcache: {:.0}% hit ({qh}/{} lookups), {} evictions",
            qh as f64 / (qh + qm) as f64 * 100.0,
            qh + qm,
            c("qcache.evictions"),
        );
    }
    let (ih, skipped) = (c("index.hits"), c("index.blocks_skipped"));
    if ih + skipped > 0 {
        let _ = writeln!(
            out,
            "index: {ih} hits, {skipped} blocks skipped, {} rebuilds",
            c("index.rebuilds")
        );
    }
    let burns = c("slo.burns");
    if burns > 0 {
        let _ = writeln!(out, "slo: {burns} burn events");
    }

    // SLO gauges per query class (mirrored by the engine on every report).
    let slo: Vec<(&String, &f64)> = gauges
        .iter()
        .filter(|(k, _)| k.starts_with("slo.") && k.ends_with(".p95_ns"))
        .collect();
    if !slo.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<32} {:>9} {:>9} {:>9}",
            "SLO CLASS", "P50", "P95", "P99"
        );
        for (k, p95) in slo {
            let class = k.trim_end_matches(".p95_ns");
            let g = |suffix: &str| {
                gauges
                    .get(&format!("{class}.{suffix}"))
                    .copied()
                    .unwrap_or(0.0)
            };
            let _ = writeln!(
                out,
                "{:<32} {:>9} {:>9} {:>9}",
                class.trim_start_matches("slo."),
                fmt_ns(g("p50_ns") as u64),
                fmt_ns(*p95 as u64),
                fmt_ns(g("p99_ns") as u64),
            );
        }
    }

    // Budget headroom from the latest gauges.
    let g = |name: &str| gauges.get(name).copied().unwrap_or(0.0);
    let (budget, used) = (g("storage.budget_bytes"), g("storage.budget_used"));
    let _ = writeln!(out);
    if budget > 0.0 {
        let _ = writeln!(
            out,
            "storage: {} / {} ({:.0}%)",
            fmt_bytes(used as u64),
            fmt_bytes(budget as u64),
            used / budget * 100.0
        );
    } else {
        let _ = writeln!(out, "storage: {} used (no budget)", fmt_bytes(used as u64));
    }
    // The journal itself is the source of truth for audit health — gauges
    // in the timeline lag the last telemetry capture.
    let _ = writeln!(
        out,
        "audit: {} records on disk, {} write errors, {} segments dropped",
        records.len(),
        g("audit.write_errors") as u64,
        g("audit.segments_dropped") as u64,
    );

    Ok(TopView {
        records: records.len() as u64,
        span_ms,
        plan_mix,
        gauges,
        counters,
        rendered: out,
    })
}

/// Render the dashboard text (the `mistique top --once` body).
pub fn render_top(dir: impl AsRef<Path>) -> Result<String, MistiqueError> {
    Ok(top_view(dir)?.rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_formatting() {
        let v = vec![10, 20, 30, 40, 1_000_000_000];
        assert_eq!(quantile(&v, 0.0), 10);
        assert_eq!(quantile(&v, 1.0), 1_000_000_000);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }

    #[test]
    fn renders_from_closed_directory_without_engine() {
        use crate::system::{Mistique, MistiqueConfig, StorageStrategy};
        use mistique_pipeline::templates::zillow_pipelines;
        use mistique_pipeline::ZillowData;
        use std::sync::Arc;

        let dir = tempfile::tempdir().unwrap();
        {
            let mut sys = Mistique::open(
                dir.path(),
                MistiqueConfig {
                    row_block_size: 50,
                    storage: StorageStrategy::Dedup,
                    ..MistiqueConfig::default()
                },
            )
            .unwrap();
            let data = Arc::new(ZillowData::generate(120, 1));
            let id = sys
                .register_trad(zillow_pipelines().remove(0), data)
                .unwrap();
            sys.log_intermediates(&id).unwrap();
            let interm = sys.intermediates_of(&id)[0].clone();
            sys.topk(&interm, "sqft", 5).unwrap();
            sys.pointq(&interm, "sqft", 3).unwrap();
        } // dropped: no live engine beyond this point

        let view = top_view(dir.path()).unwrap();
        assert_eq!(view.records, 4);
        let text = view.text();
        assert!(
            text.contains("diag.topk"),
            "workload table lists ops:\n{text}"
        );
        assert!(text.contains("plans:"), "plan mix rendered:\n{text}");
        assert!(text.contains("audit:"), "journal health rendered:\n{text}");

        // An empty directory renders an empty dashboard, not an error.
        let empty = tempfile::tempdir().unwrap();
        let view = top_view(empty.path()).unwrap();
        assert_eq!(view.records, 0);
    }
}
