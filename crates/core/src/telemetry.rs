//! The engine side of the flight recorder (see `mistique_obs::timeline`):
//! burst-boundary capture hooks, lifecycle event emission, and the
//! [`Mistique::timeline`] query API.
//!
//! Telemetry is enabled by [`MistiqueConfig::telemetry_budget_bytes`] (on by
//! default with a 1 MiB ring; `0` disables it entirely). Segments are
//! written under `<store dir>/telemetry/` through the system's
//! [`StorageBackend`], so crash tests exercise the telemetry write path
//! with the same fault injection as the data path — but every telemetry
//! failure is swallowed and counted (`telemetry.write_errors`), never
//! surfaced to the operation that triggered the capture.
//!
//! Capture points:
//! - `log` — after every `log_intermediates` / `log_intermediates_parallel`
//! - `reclaim` — after every reclaim pass (with `reclaim.demote` /
//!   `reclaim.purge` / `compaction` events)
//! - `recovery` — after a `reopen` recovery pass (with a `recovery` event;
//!   this is also the counter-reset boundary)
//! - `plan.flip` / `drift` / `qcache.storm` — query-path anomalies observed
//!   by [`Mistique::push_report`](crate::system)
//! - `interval` — a periodic tick piggybacked on query traffic, at most
//!   once per [`INTERVAL_CAPTURE`]

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mistique_obs::{FlightRecorder, RecorderStats, Timeline};
use mistique_store::{StorageBackend, TelemetryDir};

use crate::error::MistiqueError;
use crate::report::{PlanChoice, QueryReport};
use crate::system::{Mistique, MistiqueConfig};

/// Query-cache evictions within one storm window before a `qcache.storm`
/// event fires.
pub const QCACHE_STORM_EVICTIONS: u64 = 32;

/// Minimum spacing of `interval` captures (piggybacked on query traffic).
pub const INTERVAL_CAPTURE: Duration = Duration::from_secs(2);

/// Per-instance recorder state.
pub(crate) struct TelemetryState {
    pub(crate) recorder: FlightRecorder,
    /// Last Read/Rerun plan per intermediate, for flip detection.
    last_plan: HashMap<String, PlanChoice>,
    /// Whether the previous report was drift-flagged (rising-edge filter).
    drift_flagged: bool,
    /// Query-cache eviction count at the start of the current storm window.
    evict_mark: u64,
    /// When the last capture of any reason happened.
    last_capture: Instant,
}

impl TelemetryState {
    /// Best-effort construction: any I/O failure disables telemetry for the
    /// session rather than failing the open.
    pub(crate) fn create(
        config: &MistiqueConfig,
        backend: &Arc<dyn StorageBackend>,
        dir: &Path,
    ) -> Option<TelemetryState> {
        if config.telemetry_budget_bytes == 0 {
            return None;
        }
        let io = TelemetryDir::create(Arc::clone(backend), dir).ok()?;
        Some(TelemetryState {
            recorder: FlightRecorder::open(Box::new(io), config.telemetry_budget_bytes),
            last_plan: HashMap::new(),
            drift_flagged: false,
            evict_mark: 0,
            last_capture: Instant::now(),
        })
    }
}

impl Mistique {
    /// Record a lifecycle event into the journal (buffered until the next
    /// capture). No-op when telemetry is disabled.
    pub(crate) fn telemetry_event(
        &mut self,
        kind: &str,
        intermediate: Option<&str>,
        details: Vec<(String, String)>,
    ) {
        if let Some(state) = self.telemetry.as_mut() {
            state.recorder.record_event(kind, intermediate, details);
        }
    }

    /// Capture a delta snapshot at a burst boundary. No-op when telemetry is
    /// disabled; all I/O errors are swallowed into `telemetry.write_errors`.
    pub(crate) fn telemetry_capture(&mut self, reason: &str) {
        if self.telemetry.is_none() {
            return;
        }
        let snap = self.obs_snapshot();
        let stats = {
            let state = self.telemetry.as_mut().expect("checked above");
            state.recorder.capture(&snap, reason);
            state.last_capture = Instant::now();
            state.recorder.stats()
        };
        // Mirror recorder health into gauges (picked up by the next point).
        self.obs.gauge("telemetry.captures").set_u64(stats.captures);
        self.obs.gauge("telemetry.events").set_u64(stats.events);
        self.obs
            .gauge("telemetry.write_errors")
            .set_u64(stats.write_errors);
        self.obs.gauge("telemetry.bytes").set_u64(stats.total_bytes);
        self.obs.gauge("telemetry.segments").set_u64(stats.segments);
    }

    /// Query-path hook: watch finished reports for plan flips, drift
    /// rising edges, and query-cache eviction storms, and keep the periodic
    /// `interval` capture alive under steady query traffic.
    pub(crate) fn telemetry_observe_report(&mut self, report: &QueryReport) {
        if self.telemetry.is_none() {
            return;
        }
        let evictions = self.obs.counter("qcache.evictions").get();
        type PendingEvent = (String, Option<String>, Vec<(String, String)>);
        let mut capture_reason: Option<&'static str> = None;
        let mut events: Vec<PendingEvent> = Vec::new();
        {
            let state = self.telemetry.as_mut().expect("checked above");
            // Plan flips between Read and Rerun (Cached hits don't count —
            // they say nothing about the cost model's read/rerun call).
            if matches!(report.plan, PlanChoice::Read | PlanChoice::Rerun) {
                let prev = state
                    .last_plan
                    .insert(report.intermediate.clone(), report.plan);
                if let Some(prev) = prev {
                    if prev != report.plan {
                        events.push((
                            "plan.flip".to_string(),
                            Some(report.intermediate.clone()),
                            vec![
                                ("from".to_string(), prev.name().to_string()),
                                ("to".to_string(), report.plan.name().to_string()),
                                ("query".to_string(), report.query.clone()),
                            ],
                        ));
                        capture_reason = Some("plan.flip");
                    }
                }
            }
            // Drift rising edge.
            if report.drift_flagged && !state.drift_flagged {
                let mut details = vec![("query".to_string(), report.query.clone())];
                if let Some(r) = report.drift_ratio {
                    details.push(("ratio".to_string(), format!("{r:.3}")));
                }
                events.push((
                    "drift.flagged".to_string(),
                    Some(report.intermediate.clone()),
                    details,
                ));
                capture_reason = capture_reason.or(Some("drift"));
            }
            state.drift_flagged = report.drift_flagged;
            // Query-cache eviction storm.
            if evictions.saturating_sub(state.evict_mark) >= QCACHE_STORM_EVICTIONS {
                events.push((
                    "qcache.storm".to_string(),
                    None,
                    vec![(
                        "evictions".to_string(),
                        (evictions - state.evict_mark).to_string(),
                    )],
                ));
                state.evict_mark = evictions;
                capture_reason = capture_reason.or(Some("qcache.storm"));
            }
            // Periodic tick under query traffic.
            if capture_reason.is_none() && state.last_capture.elapsed() >= INTERVAL_CAPTURE {
                capture_reason = Some("interval");
            }
        }
        for (kind, interm, details) in events {
            self.telemetry_event(&kind, interm.as_deref(), details);
        }
        if let Some(reason) = capture_reason {
            self.telemetry_capture(reason);
        }
    }

    /// Load the persisted telemetry timeline of this instance's directory:
    /// every surviving metric delta point and journal event, in sequence
    /// order. Unflushed (pending) events of the live recorder are included,
    /// stamped with the sequence the next capture will use.
    pub fn timeline(&self) -> Result<Timeline, MistiqueError> {
        let io = TelemetryDir::open_readonly(Arc::clone(&self.backend), &self.dir);
        let mut tl = Timeline::load(&io).map_err(mistique_store::StoreError::Io)?;
        if let Some(state) = &self.telemetry {
            let pending = state.recorder.pending_events();
            if !pending.is_empty() {
                tl.events.extend(pending);
                tl.events.sort_by_key(|e| (e.snap_seq, e.t_ms));
            }
        }
        Ok(tl)
    }

    /// Load a timeline from a directory without opening the system (the
    /// `mistique timeline <dir>` entry point).
    pub fn load_timeline(dir: impl AsRef<Path>) -> Result<Timeline, MistiqueError> {
        let backend: Arc<dyn StorageBackend> = Arc::new(mistique_store::RealFs);
        let io = TelemetryDir::open_readonly(backend, dir.as_ref());
        Timeline::load(&io).map_err(|e| mistique_store::StoreError::Io(e).into())
    }

    /// Flight-recorder health counters, when telemetry is enabled.
    pub fn telemetry_stats(&self) -> Option<RecorderStats> {
        self.telemetry.as_ref().map(|s| s.recorder.stats())
    }

    /// The current metric snapshot rendered in Prometheus text exposition
    /// format 0.0.4 (`mistique stats --prom`).
    pub fn render_prometheus(&self) -> String {
        self.obs_snapshot().render_prometheus()
    }
}
