//! The MISTIQUE system facade: model registration, intermediate logging
//! (Alg. 4), and storage strategies.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mistique_dataframe::{ColumnChunk, DataFrame};
use mistique_nn::{ArchConfig, CifarLike, Model};
use mistique_obs::Obs;
use mistique_pipeline::{Pipeline, ZillowData};
use mistique_store::{
    ChunkKey, DataStore, DataStoreConfig, PlacementPolicy, RealFs, RecoveryReport, StorageBackend,
};

use crate::capture::{encode_batch, pool_batch, CaptureScheme, ValueScheme};
use crate::cost::CostModel;
use crate::error::MistiqueError;
use crate::executor::ModelSource;
use crate::metadata::{IntermediateMeta, MetadataDb, ModelKind, ModelMeta};

/// How `log_intermediates` treats each intermediate (the paper's evaluated
/// strategies).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StorageStrategy {
    /// Never store; every query re-runs the model (the RERUN baseline).
    NoStore,
    /// Store every chunk with no de-duplication (STORE_ALL).
    StoreAll,
    /// Exact + approximate de-duplication (DEDUP).
    Dedup,
    /// Store nothing up front; materialize an intermediate once its γ
    /// (Eq 5) exceeds `gamma_min` seconds/byte (ADAPTIVE, Sec 4.3).
    Adaptive {
        /// Materialization threshold in seconds of saved query time per
        /// byte of storage. The paper's Fig 10 run uses 0.5 s/KB.
        gamma_min: f64,
    },
}

/// System configuration.
#[derive(Clone, Debug)]
pub struct MistiqueConfig {
    /// Rows per RowBlock (paper evaluation: 1 000).
    pub row_block_size: usize,
    /// Storage strategy for logged intermediates.
    pub storage: StorageStrategy,
    /// Capture scheme applied to DNN activations (TRAD intermediates are
    /// always stored at full precision, as in the paper).
    pub dnn_capture: CaptureScheme,
    /// DataStore tuning.
    pub datastore: DataStoreConfig,
    /// Byte budget of the session query cache (0 = disabled, the default —
    /// a Sec 10 future-work extension; see [`crate::qcache`]).
    pub query_cache_bytes: usize,
    /// Worker threads for the stored-chunk read path (`read_stored` /
    /// `get_rows`): partitions are fetched from disk and `(column, block)`
    /// chunks decoded concurrently. `1` (the default) keeps the read path
    /// fully serial; `0` means one worker per available CPU. Any explicit
    /// value is clamped to the host's available CPUs, and each read further
    /// clamps its fan-out so every worker gets at least
    /// [`MistiqueConfig::min_read_bytes_per_worker`] bytes of chunk data —
    /// a 1-CPU host or a tiny read runs serial with zero thread overhead.
    /// The assembled frames are byte-identical at every setting — only
    /// wall-clock changes.
    pub read_parallelism: usize,
    /// Minimum serialized chunk bytes each read worker must have to justify
    /// its spawn cost: a batch read fans out over at most
    /// `batch_bytes / min_read_bytes_per_worker` workers (min 1). `0` is
    /// treated as 1 (fan out on any non-empty read). Default: 256 KiB.
    pub min_read_bytes_per_worker: u64,
    /// Capacity of the span tracer's ring of completed spans — how much
    /// trace history `mistique explain` / the Perfetto export can see.
    /// Only honoured by [`Mistique::open`] / [`Mistique::open_with_backend`]
    /// / [`Mistique::reopen`]; `open_with_obs` keeps the caller's ring.
    pub span_ring_capacity: usize,
    /// How many [`crate::report::QueryReport`]s the session retains
    /// (0 disables retention; reports are still produced and drift-monitored).
    pub report_retention: usize,
    /// Drift-monitor tolerance: a query class is flagged as miscalibrated
    /// when its smoothed predicted/actual ratio leaves
    /// `[1/tolerance, tolerance]`.
    pub drift_tolerance: f64,
    /// Storage byte budget for materialized intermediates (0 = unlimited,
    /// the default). When a materialization pushes the accounting past the
    /// budget, the storage manager runs a reclaim pass: coldest-γ
    /// intermediates are demoted down the quantization ladder
    /// (FULL → LP_QT → 8BIT_QT → THRESHOLD_QT) and eventually purged, then
    /// under-occupied partitions are compacted. See `Mistique::reclaim`.
    pub storage_budget_bytes: u64,
    /// Byte budget of the on-disk telemetry timeline (the flight recorder's
    /// segment ring under `<dir>/telemetry/`; see [`Mistique::timeline`]).
    /// Retention is bounded by dropping the oldest segments first, and the
    /// bytes are **not** counted against `storage_budget_bytes`. `0`
    /// disables telemetry entirely. Default: 1 MiB.
    pub telemetry_budget_bytes: u64,
    /// Max-activation list length of the secondary indexes (zone maps +
    /// top-m lists, persisted under `<dir>/index/`; see
    /// [`crate::index_state`]). Top-k queries with `k ≤ index_top_m` are
    /// served from the list without touching the data store; threshold
    /// scans skip RowBlocks the zone maps prove empty. `0` disables
    /// indexing entirely. Index bytes are not counted against
    /// `storage_budget_bytes` but are the first thing a reclaim pass sheds.
    /// Default: [`mistique_index::DEFAULT_TOP_M`].
    pub index_top_m: usize,
    /// Byte budget of the workload audit journal (the capture/replay segment
    /// ring under `<dir>/audit/`; see [`crate::audit`]). Every engine entry
    /// point — logging, every diagnostic, fetches, reclaim — appends one
    /// structured, replayable record; `mistique replay <dir>` re-executes
    /// the captured workload. Retention drops the oldest segments first, the
    /// bytes are **not** counted against `storage_budget_bytes`, and all
    /// journal I/O is best-effort (a write failure counts
    /// `audit.write_errors`, never fails the data operation). `0` disables
    /// capture entirely. Default: 1 MiB.
    pub audit_budget_bytes: u64,
}

impl Default for MistiqueConfig {
    fn default() -> Self {
        MistiqueConfig {
            row_block_size: mistique_dataframe::DEFAULT_ROW_BLOCK_SIZE,
            storage: StorageStrategy::Dedup,
            dnn_capture: CaptureScheme::pool2(),
            datastore: DataStoreConfig::default(),
            query_cache_bytes: 0,
            read_parallelism: 1,
            min_read_bytes_per_worker: 256 * 1024,
            span_ring_capacity: mistique_obs::DEFAULT_RING_CAPACITY,
            report_retention: 64,
            drift_tolerance: 4.0,
            storage_budget_bytes: 0,
            telemetry_budget_bytes: 1 << 20,
            index_top_m: mistique_index::DEFAULT_TOP_M,
            audit_budget_bytes: 1 << 20,
        }
    }
}

impl MistiqueConfig {
    /// Compact, human-readable key=value fingerprint over every knob that
    /// shapes measured behaviour. Two benchmark runs are comparable only if
    /// their fingerprints match — `scripts/bench_gate.sh` refuses to gate a
    /// run against a baseline whose fingerprint differs.
    pub fn fingerprint(&self) -> String {
        let ds = &self.datastore;
        format!(
            "rb={} storage={} capture={} policy={} mem={} part={} minhash={} bands={} bin={} rcache={} qcache={} rpar={} minrb={} budget={} topm={} delta={} dtau={}",
            self.row_block_size,
            format!("{:?}", self.storage).replace(' ', ""),
            self.dnn_capture.name(),
            format!("{:?}", ds.policy).replace(' ', ""),
            ds.mem_capacity,
            ds.partition_target_bytes,
            ds.minhash_hashes,
            ds.lsh_bands,
            ds.discretize_bin,
            ds.read_cache,
            self.query_cache_bytes,
            self.read_parallelism,
            self.min_read_bytes_per_worker,
            self.storage_budget_bytes,
            self.index_top_m,
            ds.delta_enabled,
            ds.delta_tau,
        )
    }

    /// FNV-1a hash of [`MistiqueConfig::fingerprint`], truncated to 32 bits
    /// so it survives a round trip through an `f64` metric gauge exactly.
    /// Stamped into every metric snapshot as the `config.fingerprint` gauge,
    /// so every `BENCH_*.json` carries the configuration it measured.
    pub fn fingerprint_hash(&self) -> u64 {
        crate::audit::fnv1a(0, self.fingerprint().as_bytes()) & 0xFFFF_FFFF
    }
}

/// The MISTIQUE system: DataStore + MetadataDB + PipelineExecutor + cost
/// model behind one facade.
pub struct Mistique {
    pub(crate) dir: std::path::PathBuf,
    pub(crate) config: MistiqueConfig,
    pub(crate) store: DataStore,
    pub(crate) meta: MetadataDb,
    pub(crate) cost: CostModel,
    pub(crate) sources: HashMap<String, ModelSource>,
    /// Wall-clock spent writing/logging, per model (Fig 11's overhead).
    pub(crate) log_time: HashMap<String, Duration>,
    /// The storage half of `log_time`: chunking + DataStore writes.
    pub(crate) store_time: HashMap<String, Duration>,
    /// Session query cache.
    pub(crate) qcache: crate::qcache::QueryCache,
    /// Shared observability handle (metrics registry + span tracer).
    pub(crate) obs: Obs,
    /// Storage backend every on-disk mutation goes through (real filesystem
    /// in production; [`mistique_store::FaultyFs`] in crash tests).
    pub(crate) backend: Arc<dyn StorageBackend>,
    /// Report of the recovery pass run by [`Mistique::reopen`], if any.
    pub(crate) last_recovery: Option<RecoveryReport>,
    /// Ring of per-query EXPLAIN reports (`mistique explain`).
    pub(crate) reports: crate::report::ReportRing,
    /// Ring of storage-reclamation reports (`mistique reclaim`).
    pub(crate) reclaims: crate::report::SeqRing<crate::report::ReclaimReport>,
    /// EWMA monitor of cost-model prediction quality per query class.
    pub(crate) drift: crate::cost::DriftMonitor,
    /// Label of the diagnostic query currently executing, if any — set by
    /// `with_query_label` so the reader can attribute fetches to the
    /// outermost diagnostic (`diag.topk`, …) instead of a bare `fetch`.
    pub(crate) query_label: Option<String>,
    /// Flight recorder (telemetry timeline + event journal), when enabled
    /// by `telemetry_budget_bytes`. See [`crate::telemetry`].
    pub(crate) telemetry: Option<crate::telemetry::TelemetryState>,
    /// Secondary indexes (zone maps + max-activation lists), when enabled
    /// by `index_top_m`. See [`crate::index_state`].
    pub(crate) index: Option<crate::index_state::IndexState>,
    /// Workload audit journal (capture/replay), when enabled by
    /// `audit_budget_bytes`. See [`crate::audit`].
    pub(crate) audit: Option<crate::audit::AuditState>,
}

impl Mistique {
    /// Open a MISTIQUE instance persisting under `dir`, with a fresh
    /// observability registry.
    pub fn open(dir: impl AsRef<Path>, config: MistiqueConfig) -> Result<Mistique, MistiqueError> {
        let obs = Obs::with_ring_capacity(config.span_ring_capacity);
        Self::open_with_obs(dir, config, obs)
    }

    /// Open a MISTIQUE instance that reports into an existing [`Obs`] —
    /// e.g. one shared by several systems in a benchmark run.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        config: MistiqueConfig,
        obs: Obs,
    ) -> Result<Mistique, MistiqueError> {
        Self::open_full(dir, config, obs, Arc::new(RealFs))
    }

    /// Open a MISTIQUE instance over an explicit [`StorageBackend`] — the
    /// entry point crash tests use to inject faults into every on-disk
    /// mutation.
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        config: MistiqueConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Mistique, MistiqueError> {
        let obs = Obs::with_ring_capacity(config.span_ring_capacity);
        Self::open_full(dir, config, obs, backend)
    }

    pub(crate) fn open_full(
        dir: impl AsRef<Path>,
        config: MistiqueConfig,
        obs: Obs,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Mistique, MistiqueError> {
        let mut store =
            DataStore::open_with_backend(&dir, config.datastore.clone(), Arc::clone(&backend))?;
        store.set_obs(&obs);
        let mut qcache = crate::qcache::QueryCache::new(config.query_cache_bytes);
        qcache.attach_obs(&obs);
        let reports = crate::report::ReportRing::new(config.report_retention);
        let reclaims = crate::report::SeqRing::new(config.report_retention);
        let drift = crate::cost::DriftMonitor::new(0.2, config.drift_tolerance);
        let telemetry = crate::telemetry::TelemetryState::create(&config, &backend, dir.as_ref());
        let index = crate::index_state::IndexState::create(&config, &backend, dir.as_ref(), &obs);
        let audit = crate::audit::AuditState::create(&config, &backend, dir.as_ref());
        // Every snapshot (and thus every BENCH_*.json) carries the config it
        // was measured under; bench_gate.sh refuses cross-config comparisons.
        obs.gauge("config.fingerprint")
            .set_u64(config.fingerprint_hash());
        Ok(Mistique {
            dir: dir.as_ref().to_path_buf(),
            config,
            store,
            meta: MetadataDb::new(),
            cost: CostModel::default(),
            sources: HashMap::new(),
            log_time: HashMap::new(),
            store_time: HashMap::new(),
            qcache,
            obs,
            backend,
            last_recovery: None,
            reports,
            reclaims,
            drift,
            query_label: None,
            telemetry,
            index,
            audit,
        })
    }

    /// What the recovery pass found, when this instance was produced by
    /// [`Mistique::reopen`] (always runs recovery). `None` for instances from
    /// [`Mistique::open`].
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.last_recovery
    }

    /// Register a traditional ML pipeline. Returns the model id.
    pub fn register_trad(
        &mut self,
        pipeline: Pipeline,
        data: Arc<ZillowData>,
    ) -> Result<String, MistiqueError> {
        self.register(ModelSource::Trad { pipeline, data })
    }

    /// Register a DNN checkpoint. Returns the model id
    /// (`<arch>@epoch<epoch>`).
    pub fn register_dnn(
        &mut self,
        arch: Arc<ArchConfig>,
        seed: u64,
        epoch: u32,
        data: Arc<CifarLike>,
        batch_size: usize,
    ) -> Result<String, MistiqueError> {
        self.register(ModelSource::Dnn {
            arch,
            seed,
            epoch,
            data,
            batch_size,
        })
    }

    fn register(&mut self, source: ModelSource) -> Result<String, MistiqueError> {
        let args = crate::audit::register_args(&source);
        self.audited("register", args, move |sys| sys.register_impl(source))
    }

    fn register_impl(&mut self, source: ModelSource) -> Result<String, MistiqueError> {
        let id = source.id();
        if self.sources.contains_key(&id) {
            return Err(MistiqueError::DuplicateModel(id));
        }
        let meta = ModelMeta {
            id: id.clone(),
            kind: source.kind(),
            n_stages: source.n_stages(),
            model_load: Duration::ZERO,
            n_examples: source.n_examples(),
            intermediates: source.intermediate_ids(),
        };
        self.meta.register_model(meta);
        self.sources.insert(id.clone(), source);
        Ok(id)
    }

    /// Registered model ids.
    pub fn model_ids(&self) -> Vec<String> {
        self.meta.model_ids()
    }

    /// Intermediate ids of a model in stage order.
    pub fn intermediates_of(&self, model_id: &str) -> Vec<String> {
        self.meta
            .model(model_id)
            .map(|m| m.intermediates.clone())
            .unwrap_or_default()
    }

    /// Access the metadata database (read-only).
    pub fn metadata(&self) -> &MetadataDb {
        &self.meta
    }

    /// Access the cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable access to the cost model (benchmarks calibrate it directly).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Access the underlying data store.
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Mutable access to the underlying data store (used by benches to
    /// clear caches between cold-read measurements).
    pub fn store_mut(&mut self) -> &mut DataStore {
        &mut self.store
    }

    /// Total time spent logging a model (write overhead, Fig 11).
    pub fn logging_overhead(&self, model_id: &str) -> Duration {
        self.log_time
            .get(model_id)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// The storage half of [`Mistique::logging_overhead`]: wall-clock spent
    /// chunking and writing intermediates into the DataStore, excluding
    /// model/pipeline execution. Always `<= logging_overhead` for a logged
    /// model — the parallel and sequential logging paths both fold it into
    /// the total.
    pub fn storage_overhead(&self, model_id: &str) -> Duration {
        self.store_time
            .get(model_id)
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Adjust the read-path worker count at runtime (`0` = one per CPU; see
    /// [`MistiqueConfig::read_parallelism`]). Benchmarks flip this between
    /// serial and parallel reads over the same stored data.
    pub fn set_read_parallelism(&mut self, n: usize) {
        self.config.read_parallelism = n;
    }

    /// Access the session query cache (hit/miss counters).
    pub fn query_cache(&self) -> &crate::qcache::QueryCache {
        &self.qcache
    }

    /// The system's observability handle. Clone it to record your own
    /// metrics or spans alongside the built-in instrumentation.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A point-in-time snapshot of every metric and span aggregate.
    pub fn obs_snapshot(&self) -> mistique_obs::Snapshot {
        self.sync_obs_gauges();
        self.obs.snapshot()
    }

    /// The snapshot rendered as a human-readable report (`mistique stats`).
    pub fn obs_report(&self) -> String {
        self.obs_snapshot().render_text()
    }

    /// The snapshot as parsed JSON.
    pub fn obs_snapshot_json(&self) -> serde_json::Value {
        serde_json::from_str(&self.obs_snapshot().to_json_string())
            .expect("obs snapshot serializes to valid JSON")
    }

    /// Refresh gauges that mirror pull-style state (cost-model calibration,
    /// catalog sizes) so snapshots always carry current values.
    pub(crate) fn sync_obs_gauges(&self) {
        self.obs
            .gauge("cost.read_bandwidth")
            .set(self.cost.read_bandwidth);
        self.obs
            .gauge("meta.models")
            .set_u64(self.meta.model_ids().len() as u64);
        self.obs
            .gauge("cost_model.drift")
            .set(self.drift.worst_drift());
        self.obs
            .gauge("storage.budget_bytes")
            .set_u64(self.config.storage_budget_bytes);
        self.obs
            .gauge("storage.budget_used")
            .set_u64(self.storage_budget_used());
    }

    /// Up to the last `n` per-query EXPLAIN reports, oldest first.
    pub fn query_reports(&self, n: usize) -> Vec<crate::report::QueryReport> {
        self.reports.recent(n).into_iter().cloned().collect()
    }

    /// The EXPLAIN report of the most recent query, if any is retained.
    pub fn last_report(&self) -> Option<&crate::report::QueryReport> {
        self.reports.last()
    }

    /// The cost-model drift monitor (per-class predicted/actual EWMA).
    pub fn drift_monitor(&self) -> &crate::cost::DriftMonitor {
        &self.drift
    }

    /// Retain a finished query report (reader paths call this). Also feeds
    /// the flight recorder's query-path anomaly watch (plan flips, drift
    /// rising edges, query-cache eviction storms).
    pub(crate) fn push_report(&mut self, report: crate::report::QueryReport) {
        self.audit_observe_report(&report);
        self.telemetry_observe_report(&report);
        self.reports.push(report);
    }

    /// Run `f` under a diagnostic query label: fetches issued inside are
    /// attributed to `label` in their [`crate::report::QueryReport`]s. The
    /// outermost label wins when diagnostics nest (e.g. `confusion_matrix`
    /// delegating to `argmax_predictions`).
    pub(crate) fn with_query_label<T>(
        &mut self,
        label: &str,
        f: impl FnOnce(&mut Mistique) -> T,
    ) -> T {
        let outer = self.query_label.clone();
        if outer.is_none() {
            self.query_label = Some(label.to_string());
        }
        let out = f(self);
        self.query_label = outer;
        out
    }

    /// Render the hierarchical span tree of one trace (e.g. a report's
    /// `trace_id`) from the tracer's ring of recent spans.
    pub fn render_trace(&self, trace_id: u64) -> String {
        let spans = self.obs.snapshot().recent_spans;
        let roots = mistique_obs::tree::trace_trees(&spans, trace_id);
        mistique_obs::render_trees(&roots)
    }

    /// The tracer's recent spans exported as Chrome-trace / Perfetto JSON
    /// (load via `ui.perfetto.dev` or `chrome://tracing`).
    pub fn perfetto_json(&self) -> String {
        mistique_obs::chrome_trace_json(&self.obs.snapshot().recent_spans)
    }

    /// The tracer's recent spans folded into flamegraph collapsed-stack
    /// lines (`flamegraph.pl` / `inferno-flamegraph` input).
    pub fn flamegraph_folded(&self) -> String {
        mistique_obs::folded_stacks(&self.obs.snapshot().recent_spans)
    }

    /// Flush open partitions to disk.
    pub fn flush(&mut self) -> Result<(), MistiqueError> {
        self.store.flush()?;
        Ok(())
    }

    /// Run the model and log every stage's intermediate according to the
    /// configured storage strategy (the paper's `log_intermediates` API and
    /// Alg. 4).
    pub fn log_intermediates(&mut self, model_id: &str) -> Result<(), MistiqueError> {
        let args = vec![("model", model_id.to_string())];
        self.audited("log", args, |sys| sys.log_intermediates_impl(model_id))
    }

    fn log_intermediates_impl(&mut self, model_id: &str) -> Result<(), MistiqueError> {
        let source = self
            .sources
            .get(model_id)
            .cloned()
            .ok_or_else(|| MistiqueError::UnknownModel(model_id.to_string()))?;
        // The span doubles as the overhead timer (Fig 11's metric).
        let sp = mistique_obs::span!(self.obs, "log_intermediates", model = model_id);
        match &source {
            ModelSource::Trad { pipeline, data } => self.log_trad(pipeline, data)?,
            ModelSource::Dnn {
                arch,
                seed,
                epoch,
                data,
                ..
            } => self.log_dnn(&source, arch, *seed, *epoch, data)?,
        }
        self.log_time.insert(model_id.to_string(), sp.finish());
        // Budget check after every materialization burst: logging under
        // StoreAll/Dedup may have pushed the store past the configured
        // budget; reclaim demotes/purges cold intermediates to get back.
        self.reclaim_if_over_budget()?;
        self.telemetry_capture("log");
        Ok(())
    }

    /// Log several registered TRAD models, executing their pipelines in
    /// parallel with crossbeam-scoped threads and then storing the resulting
    /// intermediates serially (the DataStore is single-writer). DNN ids fall
    /// back to sequential logging.
    pub fn log_intermediates_parallel(&mut self, model_ids: &[&str]) -> Result<(), MistiqueError> {
        let args = vec![("models", model_ids.join(","))];
        self.audited("log_parallel", args, |sys| {
            sys.log_intermediates_parallel_impl(model_ids)
        })
    }

    fn log_intermediates_parallel_impl(&mut self, model_ids: &[&str]) -> Result<(), MistiqueError> {
        let _sp = mistique_obs::span!(self.obs, "log_intermediates.parallel", n = model_ids.len());
        // Partition into parallelizable TRAD runs and sequential DNN runs.
        let mut trad: Vec<(String, Pipeline, Arc<ZillowData>)> = Vec::new();
        let mut dnn: Vec<String> = Vec::new();
        for &id in model_ids {
            match self.sources.get(id) {
                Some(ModelSource::Trad { pipeline, data }) => {
                    trad.push((id.to_string(), pipeline.clone(), Arc::clone(data)));
                }
                Some(ModelSource::Dnn { .. }) => dnn.push(id.to_string()),
                None => return Err(MistiqueError::UnknownModel(id.to_string())),
            }
        }

        // Execute all TRAD pipelines concurrently; each run is pure.
        let mut results: Vec<(String, Vec<mistique_pipeline::RunRecord>, Duration)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = trad
                    .iter()
                    .map(|(id, pipeline, data)| {
                        scope.spawn(move |_| {
                            let t0 = Instant::now();
                            let records = pipeline.run(data);
                            (id.clone(), records, t0.elapsed())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pipeline thread"))
                    .collect()
            })
            .expect("crossbeam scope");
        // Store in registration order for deterministic partition layout.
        results.sort_by_key(|(id, _, _)| {
            trad.iter()
                .position(|(tid, _, _)| tid == id)
                .unwrap_or(usize::MAX)
        });
        for (id, records, elapsed) in results {
            // Logging overhead covers chunking + storage, not just pipeline
            // execution — keep parity with the sequential `log_intermediates`
            // path, whose span wraps both.
            let t_store = Instant::now();
            self.log_trad_records(&id, records)?;
            self.log_time.insert(id, elapsed + t_store.elapsed());
        }
        for id in dnn {
            self.log_intermediates(&id)?;
        }
        self.reclaim_if_over_budget()?;
        self.telemetry_capture("log");
        Ok(())
    }

    /// Resolve `config.read_parallelism` to a concrete worker count:
    /// `0` = one per available CPU, and explicit values are clamped to the
    /// available CPUs — more workers than cores is pure scheduling overhead
    /// on this CPU-bound path (the committed 0.90× regression was workers=4
    /// on a 1-CPU host).
    pub(crate) fn effective_read_parallelism(&self) -> usize {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match self.config.read_parallelism {
            0 => cpus,
            n => n.min(cpus),
        }
    }

    fn should_materialize_at_log_time(&self) -> bool {
        matches!(
            self.config.storage,
            StorageStrategy::StoreAll | StorageStrategy::Dedup
        )
    }

    /// Store one intermediate dataframe as chunks. Returns the serialized
    /// byte volume submitted.
    pub(crate) fn store_frame(
        &mut self,
        intermediate_id: &str,
        frame: &DataFrame,
        kind: ModelKind,
    ) -> Result<u64, MistiqueError> {
        let policy = match kind {
            ModelKind::Trad => self.config.datastore.policy,
            ModelKind::Dnn => PlacementPolicy::ByIntermediate,
        };
        let dedup = !matches!(self.config.storage, StorageStrategy::StoreAll);
        let mut bytes = 0u64;
        for (block, column, chunk) in frame.chunks(self.config.row_block_size) {
            let key = ChunkKey::new(intermediate_id, column, block as u32);
            // The store serializes the chunk exactly once and reports the
            // size back, so accounting costs no extra `to_bytes` pass.
            let (_, serialized) = self.store.put_chunk_sized(key, &chunk, policy, dedup)?;
            bytes += serialized;
        }
        Ok(bytes)
    }

    /// Serialized size of a frame without storing it (metadata for
    /// un-materialized intermediates, so γ can be evaluated later).
    fn frame_stored_bytes(frame: &DataFrame, row_block_size: usize) -> u64 {
        frame
            .chunks(row_block_size)
            .map(|(_, _, c)| c.to_bytes().len() as u64)
            .sum()
    }

    fn log_trad(
        &mut self,
        pipeline: &Pipeline,
        data: &Arc<ZillowData>,
    ) -> Result<(), MistiqueError> {
        let records = pipeline.run(data);
        self.log_trad_records(&pipeline.id, records)
    }

    /// Log pre-computed TRAD run records (the storage half of `log_trad`,
    /// shared with [`Mistique::log_intermediates_parallel`]).
    fn log_trad_records(
        &mut self,
        model_id: &str,
        records: Vec<mistique_pipeline::RunRecord>,
    ) -> Result<(), MistiqueError> {
        let t_store = Instant::now();
        let model_id = model_id.to_string();
        let mut cum = Duration::ZERO;
        for rec in records {
            cum += rec.exec_time;
            let materialize = self.should_materialize_at_log_time();
            let stored_bytes = if materialize {
                self.store_frame(&rec.intermediate_id, &rec.output, ModelKind::Trad)?
            } else {
                Self::frame_stored_bytes(&rec.output, self.config.row_block_size)
            };
            self.meta.upsert_intermediate(IntermediateMeta {
                id: rec.intermediate_id.clone(),
                model_id: model_id.clone(),
                stage_index: rec.stage_index,
                n_rows: rec.output.n_rows(),
                columns: rec
                    .output
                    .column_names()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                scheme: CaptureScheme::full(),
                materialized: materialize,
                stored_bytes,
                exec_time: rec.exec_time,
                cum_exec_time: cum,
                n_queries: 0,
                quantizer: None,
                threshold: None,
                shape: None,
                delta_encoded: false,
            });
            if materialize {
                // Index the decoded values a scan would see (TRAD stores at
                // full precision), then persist — best-effort.
                self.index_observe_frame(
                    &rec.intermediate_id,
                    &rec.output,
                    ValueScheme::Full,
                    None,
                );
                self.index_finish_build(&rec.intermediate_id);
            }
        }
        self.store_time.insert(model_id, t_store.elapsed());
        Ok(())
    }

    fn log_dnn(
        &mut self,
        source: &ModelSource,
        arch: &Arc<ArchConfig>,
        seed: u64,
        epoch: u32,
        data: &Arc<CifarLike>,
    ) -> Result<(), MistiqueError> {
        let r = self.log_dnn_inner(source, arch, seed, epoch, data);
        if r.is_err() {
            // A failed pass leaves one partially-fed index builder per
            // layer; none of them may ever persist.
            let prefix = format!("{}.layer", source.id());
            self.index_discard_builders_with_prefix(&prefix);
        }
        r
    }

    fn log_dnn_inner(
        &mut self,
        source: &ModelSource,
        arch: &Arc<ArchConfig>,
        seed: u64,
        epoch: u32,
        data: &Arc<CifarLike>,
    ) -> Result<(), MistiqueError> {
        let model_id = source.id();
        let capture = self.config.dnn_capture;

        let t_load = Instant::now();
        let model = Model::build(arch, seed, epoch);
        let model_load = t_load.elapsed();
        if let Some(m) = self.meta.model_mut(&model_id) {
            m.model_load = model_load;
        }

        let n = data.len();
        let block_rows = self.config.row_block_size;
        let n_layers = model.n_layers();
        let mut per_layer_exec = vec![Duration::ZERO; n_layers];
        // Per-layer quantization state, fitted on the first block.
        let mut quantizers: Vec<Option<Vec<u8>>> = vec![None; n_layers];
        let mut thresholds: Vec<Option<f32>> = vec![None; n_layers];
        let mut stored_bytes = vec![0u64; n_layers];
        let mut shapes: Vec<(usize, usize, usize)> = vec![(0, 0, 0); n_layers];
        let mut columns: Vec<Vec<String>> = vec![Vec::new(); n_layers];

        let materialize = self.should_materialize_at_log_time();

        let mut store_elapsed = Duration::ZERO;
        let mut block = 0u32;
        let mut start = 0usize;
        while start < n {
            let end = (start + block_rows).min(n);
            let mut cur = data.images.slice_examples(start, end);
            for (li, nl) in model.layers.iter().enumerate() {
                let t = Instant::now();
                cur = nl.layer.forward(&cur);
                per_layer_exec[li] += t.elapsed();

                let (c, h, w) = nl.out_shape;
                // Collect per-example feature vectors.
                let mut examples: Vec<Vec<f32>> =
                    (0..cur.n).map(|i| cur.example(i).to_vec()).collect();
                let mut features = c * h * w;
                let mut shape = (c, h, w);
                // POOL_QT applies only to spatial (conv/pool) activations.
                if let Some(sigma) = capture.pool_sigma {
                    if h > 1 && sigma > 1 {
                        let (pooled, f) = pool_batch(&examples, c, h, w, sigma);
                        examples = pooled;
                        features = f;
                        let oh = h.div_ceil(sigma);
                        let ow = w.div_ceil(sigma);
                        shape = (c, oh, ow);
                    }
                }
                shapes[li] = shape;

                let captured = encode_batch(
                    &examples,
                    features,
                    capture.value,
                    quantizers[li].as_deref(),
                    thresholds[li],
                );
                if let Some(q) = captured.quantizer {
                    quantizers[li] = Some(q);
                }
                if let Some(t) = captured.threshold {
                    thresholds[li] = Some(t);
                }
                if columns[li].is_empty() {
                    columns[li] = captured
                        .frame
                        .column_names()
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                }

                let interm_id = format!("{}.layer{}", model_id, li + 1);
                if materialize {
                    let t_store = Instant::now();
                    for col in captured.frame.columns() {
                        let chunk = ColumnChunk::new(col.data.clone());
                        let key = ChunkKey::new(interm_id.clone(), col.name.clone(), block);
                        let dedup = !matches!(self.config.storage, StorageStrategy::StoreAll);
                        let (_, serialized) = self.store.put_chunk_sized(
                            key,
                            &chunk,
                            PlacementPolicy::ByIntermediate,
                            dedup,
                        )?;
                        stored_bytes[li] += serialized;
                    }
                    store_elapsed += t_store.elapsed();
                    // Grow the secondary index block by block, decoding the
                    // captured chunk exactly as the read path will (the
                    // quantizer fitted on the first block is the one every
                    // stored block — including this one — decodes under).
                    for col in captured.frame.columns() {
                        let name = col.name.clone();
                        self.index_observe_block(
                            &interm_id,
                            &name,
                            block as usize,
                            &col.data,
                            capture.value,
                            quantizers[li].as_deref(),
                        );
                    }
                } else {
                    stored_bytes[li] += Self::frame_stored_bytes(&captured.frame, block_rows);
                }
            }
            start = end;
            block += 1;
        }

        // Register metadata per layer with cumulative forward times.
        let mut cum = Duration::ZERO;
        for li in 0..n_layers {
            cum += per_layer_exec[li];
            let interm_id = format!("{}.layer{}", model_id, li + 1);
            self.meta.upsert_intermediate(IntermediateMeta {
                id: interm_id,
                model_id: model_id.clone(),
                stage_index: li,
                n_rows: n,
                columns: std::mem::take(&mut columns[li]),
                scheme: capture,
                materialized: materialize,
                stored_bytes: stored_bytes[li],
                exec_time: per_layer_exec[li],
                cum_exec_time: cum,
                n_queries: 0,
                quantizer: quantizers[li].take(),
                threshold: thresholds[li],
                shape: Some(shapes[li]),
                delta_encoded: false,
            });
        }
        // Metadata is registered; finalize and persist the per-layer
        // indexes accumulated above (no-op when not materializing).
        for li in 0..n_layers {
            let interm_id = format!("{}.layer{}", model_id, li + 1);
            self.index_finish_build(&interm_id);
        }
        self.store_time.insert(model_id, store_elapsed);
        Ok(())
    }
}

/// Which value scheme a capture config uses (re-exported convenience).
pub fn value_scheme_of(config: &MistiqueConfig) -> ValueScheme {
    config.dnn_capture.value
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_nn::simple_cnn;
    use mistique_pipeline::templates::zillow_pipelines;

    fn open_sys(strategy: StorageStrategy) -> (tempfile::TempDir, Mistique) {
        let dir = tempfile::tempdir().unwrap();
        let config = MistiqueConfig {
            row_block_size: 50,
            storage: strategy,
            ..MistiqueConfig::default()
        };
        let m = Mistique::open(dir.path(), config).unwrap();
        (dir, m)
    }

    #[test]
    fn register_and_log_trad() {
        let (_d, mut sys) = open_sys(StorageStrategy::Dedup);
        let data = Arc::new(ZillowData::generate(120, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interms = sys.intermediates_of(&id);
        assert!(!interms.is_empty());
        for i in &interms {
            let m = sys.metadata().intermediate(i).unwrap();
            assert!(m.materialized);
            assert!(m.stored_bytes > 0);
        }
        // Cumulative times are monotone.
        let metas: Vec<_> = interms
            .iter()
            .map(|i| sys.metadata().intermediate(i).unwrap().cum_exec_time)
            .collect();
        for w in metas.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (_d, mut sys) = open_sys(StorageStrategy::Dedup);
        let data = Arc::new(ZillowData::generate(60, 1));
        sys.register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
            .unwrap();
        let err = sys.register_trad(zillow_pipelines().remove(0), data);
        assert!(matches!(err, Err(MistiqueError::DuplicateModel(_))));
    }

    #[test]
    fn log_dnn_registers_all_layers() {
        let (_d, mut sys) = open_sys(StorageStrategy::Dedup);
        let data = Arc::new(CifarLike::generate(20, 10, 3));
        let id = sys
            .register_dnn(Arc::new(simple_cnn(16)), 7, 0, data, 10)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interms = sys.intermediates_of(&id);
        assert_eq!(interms.len(), 9, "4 conv + 2 pool + flatten + 2 FC");
        let first = sys.metadata().intermediate(&interms[0]).unwrap();
        assert_eq!(first.n_rows, 20);
        assert!(first.shape.is_some());
        // pool(2) halves the spatial dims of layer1 (32x32 -> 16x16).
        assert_eq!(first.shape.unwrap().1, 16);
    }

    #[test]
    fn nostore_strategy_records_metadata_without_chunks() {
        let (_d, mut sys) = open_sys(StorageStrategy::NoStore);
        let data = Arc::new(ZillowData::generate(80, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interms = sys.intermediates_of(&id);
        let m = sys.metadata().intermediate(&interms[0]).unwrap();
        assert!(!m.materialized);
        assert!(m.stored_bytes > 0, "size estimate still recorded");
        assert_eq!(sys.store().stats().chunks_stored, 0);
    }

    #[test]
    fn store_all_stores_more_than_dedup() {
        let data = Arc::new(ZillowData::generate(100, 1));
        let pipes = zillow_pipelines();
        // Two variants of the same template share most intermediates.
        let run = |strategy| {
            let (_d, mut sys) = open_sys(strategy);
            for p in pipes.iter().filter(|p| p.id.starts_with("P2_")).take(2) {
                let id = sys.register_trad(p.clone(), Arc::clone(&data)).unwrap();
                sys.log_intermediates(&id).unwrap();
            }
            sys.store().stats()
        };
        let all = run(StorageStrategy::StoreAll);
        let dedup = run(StorageStrategy::Dedup);
        assert_eq!(all.dedup_hits, 0);
        assert!(dedup.dedup_hits > 0);
        assert!(dedup.unique_bytes < all.unique_bytes);
    }

    #[test]
    fn logging_overhead_is_tracked() {
        let (_d, mut sys) = open_sys(StorageStrategy::Dedup);
        let data = Arc::new(ZillowData::generate(60, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        assert_eq!(sys.logging_overhead(&id), Duration::ZERO);
        sys.log_intermediates(&id).unwrap();
        assert!(sys.logging_overhead(&id) > Duration::ZERO);
    }

    #[test]
    fn unknown_model_errors() {
        let (_d, mut sys) = open_sys(StorageStrategy::Dedup);
        assert!(matches!(
            sys.log_intermediates("nope"),
            Err(MistiqueError::UnknownModel(_))
        ));
    }
}
