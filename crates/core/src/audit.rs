//! The engine side of the workload audit journal (see `mistique_obs::audit`)
//! plus per-query-class SLO latency tracking.
//!
//! Auditing is enabled by [`MistiqueConfig::audit_budget_bytes`] (on by
//! default with a 1 MiB ring; `0` disables capture entirely). Every engine
//! entry point — `log_intermediates{,_parallel}`, every diagnostic,
//! `get_intermediate` / `get_rows` / `fetch_with_strategy`, `reclaim`, and
//! model registration — runs inside [`Mistique::audited`], which appends one
//! [`AuditRecord`] per *outermost* call: the operation name, an argument
//! fingerprint sufficient to re-execute it, the plan of every inner fetch in
//! execution order, the cost model's predictions, and the actual latency,
//! bytes and partitions touched. Nested entry points (a diagnostic's inner
//! `get_intermediate`, `reclaim_if_over_budget` inside a logging burst)
//! fold into the outermost record instead of producing their own.
//!
//! Segments live under `<dir>/audit/` and go through the system's
//! [`StorageBackend`], so crash tests inject faults into the audit write
//! path with the same harness as the data path — and every audit failure is
//! swallowed into `audit.write_errors`, never surfaced to the data
//! operation that produced the record.
//!
//! **SLO tracking** is independent of the journal (always on): every
//! finished [`QueryReport`] is folded into a latency histogram keyed by
//! `(query, plan)` — `slo.diag.topk.read.ns`, `slo.fetch.rerun.ns`, … —
//! whose p50/p95/p99/p99.9/max are mirrored into gauges for `mistique top`
//! and the Prometheus exposition. A query slower than
//! [`SLO_BURN_FACTOR`] × its class p95 (once the class has
//! [`SLO_MIN_SAMPLES`] samples) journals an `slo.burn` event into the
//! flight-recorder timeline.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use mistique_obs::{AuditLog, AuditRecord, AuditStats};
use mistique_store::{AuditDir, StorageBackend};

use crate::error::MistiqueError;
use crate::executor::ModelSource;
use crate::report::QueryReport;
use crate::system::{Mistique, MistiqueConfig};

/// Samples a `(query, plan)` latency class needs before SLO-burn detection
/// arms — quantiles of a near-empty histogram are noise.
pub const SLO_MIN_SAMPLES: u64 = 16;

/// A query is an SLO burn when its latency exceeds this multiple of its
/// class's p95.
pub const SLO_BURN_FACTOR: f64 = 8.0;

/// The in-flight record of the outermost audited entry point.
pub(crate) struct PendingAudit {
    record: AuditRecord,
    t0: Instant,
}

/// Per-instance audit state: the durable journal plus the record of the
/// entry point currently executing, if any.
pub(crate) struct AuditState {
    pub(crate) log: AuditLog,
    pending: Option<PendingAudit>,
}

impl AuditState {
    /// Best-effort construction: any I/O failure disables auditing for the
    /// session rather than failing the open.
    pub(crate) fn create(
        config: &MistiqueConfig,
        backend: &Arc<dyn StorageBackend>,
        dir: &Path,
    ) -> Option<AuditState> {
        if config.audit_budget_bytes == 0 {
            return None;
        }
        let io = AuditDir::create(Arc::clone(backend), dir).ok()?;
        Some(AuditState {
            log: AuditLog::open(Box::new(io), config.audit_budget_bytes),
            pending: None,
        })
    }
}

/// The `register` record's argument fingerprint: everything `mistique
/// replay` needs to reconstruct the [`ModelSource`] — pipeline template id
/// and data provenance for TRAD, encoded architecture plus seed/epoch/batch
/// and data provenance for DNN. Sources built from data without provenance
/// (not produced by the generators) record no `data_*` args; replay reports
/// them as unreplayable instead of guessing.
pub(crate) fn register_args(source: &ModelSource) -> Vec<(&'static str, String)> {
    match source {
        ModelSource::Trad { pipeline, data } => {
            let mut args = vec![
                ("kind", "trad".to_string()),
                ("pipeline", pipeline.id.clone()),
            ];
            if let Some((n, seed)) = data.provenance {
                args.push(("data_n", n.to_string()));
                args.push(("data_seed", seed.to_string()));
            }
            args
        }
        ModelSource::Dnn {
            arch,
            seed,
            epoch,
            data,
            batch_size,
        } => {
            let mut args = vec![
                ("kind", "dnn".to_string()),
                ("arch", crate::replay::encode_arch(arch)),
                ("seed", seed.to_string()),
                ("epoch", epoch.to_string()),
                ("batch", batch_size.to_string()),
            ];
            if let Some((n, classes, dseed)) = data.provenance {
                args.push(("data_n", n.to_string()));
                args.push(("data_classes", classes.to_string()));
                args.push(("data_seed", dseed.to_string()));
            }
            args
        }
    }
}

/// The common fetch argument fingerprint: intermediate, requested columns
/// (`*` = all), and row clamp (`all` = every row).
pub(crate) fn fetch_args(
    intermediate: &str,
    columns: Option<&[&str]>,
    n_ex: Option<usize>,
) -> Vec<(&'static str, String)> {
    vec![
        ("interm", intermediate.to_string()),
        (
            "cols",
            columns.map_or_else(|| "*".to_string(), |cs| cs.join(",")),
        ),
        (
            "n_ex",
            n_ex.map_or_else(|| "all".to_string(), |n| n.to_string()),
        ),
    ]
}

/// Comma-join row ids for an args value.
pub(crate) fn csv_usize(xs: &[usize]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Comma-join group/label bytes for an args value.
pub(crate) fn csv_u8(xs: &[u8]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// 64-bit FNV-1a over raw bytes — the digest primitive the audit layer and
/// `mistique replay` share for fingerprinting inputs and answers.
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Mistique {
    /// Run `f` as one audited entry point: the **outermost** `audited` call
    /// owns the journal record (op, args, latency, ok) and every
    /// [`QueryReport`] finished inside folds its plan/bytes/predictions into
    /// it via [`Mistique::audit_observe_report`]. Nested calls — a
    /// diagnostic's inner fetch, the DNN fallback inside `log_parallel` —
    /// run `f` untouched. No-op (beyond `f`) when auditing is disabled.
    pub(crate) fn audited<T>(
        &mut self,
        op: &str,
        args: Vec<(&'static str, String)>,
        f: impl FnOnce(&mut Mistique) -> Result<T, MistiqueError>,
    ) -> Result<T, MistiqueError> {
        let owns = match self.audit.as_mut() {
            Some(state) if state.pending.is_none() => {
                let record = AuditRecord {
                    op: op.to_string(),
                    args: args.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
                    ..AuditRecord::default()
                };
                state.pending = Some(PendingAudit {
                    record,
                    t0: Instant::now(),
                });
                true
            }
            _ => false,
        };
        let out = f(self);
        if owns {
            if let Some(state) = self.audit.as_mut() {
                if let Some(p) = state.pending.take() {
                    let mut record = p.record;
                    record.actual_ns = u64::try_from(p.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    record.ok = out.is_ok();
                    state.log.append(record);
                }
            }
            self.audit_sync_gauges();
        }
        out
    }

    /// Query-path hook (called by `push_report` for every finished report):
    /// fold the report into its SLO latency class, fire burn events, and
    /// accumulate plan/byte/prediction detail into the in-flight audit
    /// record.
    pub(crate) fn audit_observe_report(&mut self, report: &QueryReport) {
        // SLO latency tracking is always on — it costs one histogram record
        // plus five gauge stores, and `mistique top` renders from it even
        // when journal capture is disabled.
        let class = format!("slo.{}.{}", report.query, report.plan.name());
        let hist = self.obs.histogram(&format!("{class}.ns"));
        hist.record_duration(report.actual);
        let s = hist.summary();
        self.obs.gauge(&format!("{class}.p50_ns")).set_u64(s.p50);
        self.obs.gauge(&format!("{class}.p95_ns")).set_u64(s.p95);
        self.obs.gauge(&format!("{class}.p99_ns")).set_u64(s.p99);
        self.obs.gauge(&format!("{class}.p999_ns")).set_u64(s.p999);
        self.obs.gauge(&format!("{class}.max_ns")).set_u64(s.max);
        let actual_ns = u64::try_from(report.actual.as_nanos()).unwrap_or(u64::MAX);
        if s.count >= SLO_MIN_SAMPLES
            && s.p95 > 0
            && actual_ns as f64 > SLO_BURN_FACTOR * s.p95 as f64
        {
            self.obs.counter("slo.burns").inc();
            let details = vec![
                ("class".to_string(), class),
                ("actual_ns".to_string(), actual_ns.to_string()),
                ("p95_ns".to_string(), s.p95.to_string()),
            ];
            let interm = report.intermediate.clone();
            self.telemetry_event("slo.burn", Some(&interm), details);
        }

        // Fold the fetch into the outermost entry point's journal record.
        if let Some(state) = self.audit.as_mut() {
            if let Some(p) = state.pending.as_mut() {
                let rec = &mut p.record;
                if rec.plans.is_empty() {
                    rec.predicted_read_s = report.predicted_read_s;
                    rec.predicted_rerun_s = report.predicted_rerun_s;
                }
                if rec.trace_id == 0 {
                    rec.trace_id = report.trace_id;
                }
                rec.plans.push(report.plan.name().to_string());
                rec.bytes += report.attribution.bytes;
                rec.partitions += report.attribution.partitions_touched;
            }
        }
    }

    /// Mirror journal health into `audit.*` gauges (picked up by snapshots
    /// and the telemetry timeline).
    pub(crate) fn audit_sync_gauges(&self) {
        let Some(state) = self.audit.as_ref() else {
            return;
        };
        let stats = state.log.stats();
        self.obs.gauge("audit.records").set_u64(stats.records);
        self.obs.gauge("audit.flushes").set_u64(stats.flushes);
        self.obs
            .gauge("audit.write_errors")
            .set_u64(stats.write_errors);
        self.obs
            .gauge("audit.segments_dropped")
            .set_u64(stats.segments_dropped);
        self.obs.gauge("audit.bytes").set_u64(stats.total_bytes);
        self.obs.gauge("audit.segments").set_u64(stats.segments);
    }

    /// Flush buffered audit records to disk (best-effort). Batched flushing
    /// keeps capture off the query hot path; call this before handing the
    /// directory to another process mid-session. `Drop` flushes too.
    pub fn audit_flush(&mut self) {
        if let Some(state) = self.audit.as_mut() {
            state.log.flush();
        }
        self.audit_sync_gauges();
    }

    /// Journal health counters, when auditing is enabled.
    pub fn audit_stats(&self) -> Option<AuditStats> {
        self.audit.as_ref().map(|s| s.log.stats())
    }

    /// Every audit record of this instance's directory, in sequence order —
    /// surviving persisted records plus records buffered by the live
    /// journal.
    pub fn audit_records(&self) -> Result<Vec<AuditRecord>, MistiqueError> {
        let io = AuditDir::open_readonly(Arc::clone(&self.backend), &self.dir);
        let mut recs = AuditLog::load(&io).map_err(mistique_store::StoreError::Io)?;
        if let Some(state) = &self.audit {
            recs.extend(state.log.pending_records().iter().cloned());
            recs.sort_by_key(|r| r.seq);
        }
        Ok(recs)
    }

    /// Load the audit journal from a directory without opening the system
    /// (the `mistique replay <dir>` / `mistique top <dir>` entry point).
    pub fn load_audit(dir: impl AsRef<Path>) -> Result<Vec<AuditRecord>, MistiqueError> {
        let backend: Arc<dyn StorageBackend> = Arc::new(mistique_store::RealFs);
        Self::load_audit_with_backend(backend, dir.as_ref())
    }

    /// [`Mistique::load_audit`] over an explicit backend (crash tests load
    /// against the same in-memory [`mistique_store::FaultyFs`] they
    /// crashed).
    pub fn load_audit_with_backend(
        backend: Arc<dyn StorageBackend>,
        dir: &Path,
    ) -> Result<Vec<AuditRecord>, MistiqueError> {
        let io = AuditDir::open_readonly(backend, dir);
        AuditLog::load(&io).map_err(|e| mistique_store::StoreError::Io(e).into())
    }
}

impl Drop for Mistique {
    fn drop(&mut self) {
        // Best-effort: one-shot CLI sessions must leave their trailing
        // records on disk. A crash instead of a drop loses at most one
        // flush batch; the journal on disk stays loadable either way.
        if let Some(state) = self.audit.as_mut() {
            state.log.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::StorageStrategy;
    use mistique_pipeline::templates::zillow_pipelines;
    use mistique_pipeline::ZillowData;

    fn config() -> MistiqueConfig {
        MistiqueConfig {
            row_block_size: 50,
            storage: StorageStrategy::Dedup,
            ..MistiqueConfig::default()
        }
    }

    fn run_small_workload(sys: &mut Mistique) -> String {
        let data = Arc::new(ZillowData::generate(120, 1));
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        let interm = sys.intermediates_of(&id)[0].clone();
        sys.topk(&interm, "sqft", 5).unwrap();
        sys.pointq(&interm, "sqft", 3).unwrap();
        interm
    }

    #[test]
    fn entry_points_journal_one_record_each() {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(dir.path(), config()).unwrap();
        run_small_workload(&mut sys);
        sys.audit_flush();
        let recs = Mistique::load_audit(dir.path()).unwrap();
        let ops: Vec<&str> = recs.iter().map(|r| r.op.as_str()).collect();
        assert_eq!(ops, vec!["register", "log", "diag.topk", "diag.pointq"]);
        // The diagnostic's inner fetch folded into the diagnostic record.
        let topk = &recs[2];
        assert_eq!(topk.args.get("k").map(String::as_str), Some("5"));
        assert!(!topk.plans.is_empty(), "inner fetch plan recorded");
        assert!(topk.ok);
        assert!(topk.actual_ns > 0);
        // The register record carries replayable provenance.
        assert_eq!(recs[0].args.get("data_seed").map(String::as_str), Some("1"));
    }

    #[test]
    fn zero_budget_disables_capture_entirely() {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(
            dir.path(),
            MistiqueConfig {
                audit_budget_bytes: 0,
                ..config()
            },
        )
        .unwrap();
        run_small_workload(&mut sys);
        assert!(sys.audit_stats().is_none());
        drop(sys);
        assert!(
            !dir.path().join(mistique_store::AUDIT_SUBDIR).exists(),
            "no audit directory is even created"
        );
        assert!(Mistique::load_audit(dir.path()).unwrap().is_empty());
    }

    #[test]
    fn drop_flushes_buffered_records() {
        let dir = tempfile::tempdir().unwrap();
        {
            let mut sys = Mistique::open(dir.path(), config()).unwrap();
            run_small_workload(&mut sys);
            // No explicit flush: fewer records than the batch size.
        }
        let recs = Mistique::load_audit(dir.path()).unwrap();
        assert_eq!(recs.len(), 4, "drop persisted the buffered batch");
    }

    #[test]
    fn failed_operations_are_journaled_not_ok() {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(dir.path(), config()).unwrap();
        assert!(sys.log_intermediates("nope").is_err());
        sys.audit_flush();
        let recs = Mistique::load_audit(dir.path()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].op, "log");
        assert!(!recs[0].ok);
    }

    #[test]
    fn slo_histograms_track_query_classes() {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(dir.path(), config()).unwrap();
        let interm = run_small_workload(&mut sys);
        for _ in 0..3 {
            sys.topk(&interm, "sqft", 2).unwrap();
        }
        let snap = sys.obs_snapshot();
        let (name, summary) = snap
            .histograms
            .iter()
            .find(|(n, _)| n.starts_with("slo.diag.topk."))
            .expect("topk SLO class exists");
        assert!(summary.count >= 3, "{name}: {}", summary.count);
        let gauge = format!("{}.p95_ns", name.trim_end_matches(".ns"));
        assert!(snap.gauge(&gauge) > 0.0, "{gauge} mirrored");
    }

    #[test]
    fn sequence_continues_across_reopen_sessions() {
        let dir = tempfile::tempdir().unwrap();
        {
            let mut sys = Mistique::open(dir.path(), config()).unwrap();
            run_small_workload(&mut sys);
            let _ = sys.persist();
        }
        {
            let mut sys = match Mistique::reopen(dir.path(), config()) {
                Ok(s) => s,
                // No JSON serializer in this environment: skip the reopen
                // half, the first session's records are still the journal.
                Err(_) => return,
            };
            let interms: Vec<String> = sys
                .model_ids()
                .iter()
                .flat_map(|m| sys.intermediates_of(m))
                .collect();
            sys.topk(&interms[0], "sqft", 3).unwrap();
        }
        let recs = Mistique::load_audit(dir.path()).unwrap();
        assert_eq!(recs.last().unwrap().op, "diag.topk");
        for w in recs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "monotone across sessions");
        }
    }
}
