//! Session query cache (the paper's Sec 10 future-work item: "a diagnosis
//! session often involves many queries, and therefore there may be
//! opportunities to further reduce execution time via caching").
//!
//! A byte-budgeted LRU over fetched frames, keyed by
//! `(intermediate, columns, n_ex, index_version)`. Entries for an
//! intermediate are invalidated whenever its storage state changes (e.g.
//! adaptive materialization re-stores it at a different scheme); carrying
//! the index version in the key additionally guarantees that dropping or
//! rebuilding an intermediate's index can never serve a frame cached under
//! a different index regime.

use std::collections::HashMap;

use mistique_dataframe::DataFrame;
use mistique_obs::{Counter, Gauge, Obs};
use mistique_store::LruList;

/// Cache key: the exact fetch request.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub intermediate: String,
    /// Sorted requested columns; `None` = all columns.
    pub columns: Option<Vec<String>>,
    pub n_ex: Option<usize>,
    /// The intermediate's index version at fetch time (0 = no index). A
    /// dropped or rebuilt index changes the version, so stale entries can
    /// never shadow a fetch planned under a different index state.
    pub index_version: u64,
}

impl CacheKey {
    pub fn new(
        intermediate: &str,
        columns: Option<&[&str]>,
        n_ex: Option<usize>,
        index_version: u64,
    ) -> CacheKey {
        let columns = columns.map(|cols| {
            let mut v: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
            v.sort();
            v
        });
        CacheKey {
            intermediate: intermediate.to_string(),
            columns,
            n_ex,
            index_version,
        }
    }
}

/// Cached obs handles mirroring the cache's own counters.
#[derive(Debug)]
struct QcObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    used_bytes: Gauge,
}

impl QcObs {
    fn new(obs: &Obs) -> QcObs {
        QcObs {
            hits: obs.counter("qcache.hits"),
            misses: obs.counter("qcache.misses"),
            evictions: obs.counter("qcache.evictions"),
            used_bytes: obs.gauge("qcache.used_bytes"),
        }
    }
}

/// Byte-budgeted LRU cache of fetched frames.
#[derive(Debug, Default)]
pub struct QueryCache {
    capacity_bytes: usize,
    used_bytes: usize,
    entries: HashMap<CacheKey, DataFrame>,
    /// O(1) LRU order, front = least recently used.
    lru: LruList<CacheKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
    obs: Option<QcObs>,
}

impl QueryCache {
    /// Create a cache with a byte budget (0 disables caching).
    pub fn new(capacity_bytes: usize) -> QueryCache {
        QueryCache {
            capacity_bytes,
            ..QueryCache::default()
        }
    }

    /// Whether caching is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted under byte-budget pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Mirror this cache's counters into an observability registry
    /// (`qcache.hits` / `qcache.misses` / `qcache.evictions` /
    /// `qcache.used_bytes`).
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.obs = Some(QcObs::new(obs));
    }

    fn sync_used_bytes(&self) {
        if let Some(o) = &self.obs {
            o.used_bytes.set_u64(self.used_bytes as u64);
        }
    }

    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<DataFrame> {
        if !self.enabled() {
            return None;
        }
        match self.entries.get(key) {
            Some(frame) => {
                self.hits += 1;
                if let Some(o) = &self.obs {
                    o.hits.inc();
                }
                self.lru.touch(key.clone());
                Some(frame.clone())
            }
            None => {
                self.misses += 1;
                if let Some(o) = &self.obs {
                    o.misses.inc();
                }
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: CacheKey, frame: &DataFrame) {
        if !self.enabled() {
            return;
        }
        let bytes = frame.nbytes();
        if bytes > self.capacity_bytes {
            return; // larger than the whole budget; never cache
        }
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.nbytes();
            self.lru.remove(&key);
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = match self.lru.pop_lru() {
                Some(v) => v,
                None => break,
            };
            if let Some(old) = self.entries.remove(&victim) {
                self.used_bytes -= old.nbytes();
            }
            self.evictions += 1;
            if let Some(o) = &self.obs {
                o.evictions.inc();
            }
        }
        self.used_bytes += bytes;
        self.entries.insert(key.clone(), frame.clone());
        self.lru.touch(key);
        self.sync_used_bytes();
    }

    /// Drop every entry of one intermediate (storage state changed).
    pub(crate) fn invalidate(&mut self, intermediate: &str) {
        let stale: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|k| k.intermediate == intermediate)
            .cloned()
            .collect();
        for key in stale {
            if let Some(old) = self.entries.remove(&key) {
                self.used_bytes -= old.nbytes();
            }
            self.lru.remove(&key);
        }
        self.sync_used_bytes();
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.used_bytes = 0;
        self.sync_used_bytes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_dataframe::Column;

    fn frame(tag: f64, rows: usize) -> DataFrame {
        DataFrame::from_columns(vec![Column::f64("x", vec![tag; rows])])
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = QueryCache::new(0);
        let key = CacheKey::new("i", None, None, 0);
        c.insert(key.clone(), &frame(1.0, 10));
        assert!(c.get(&key).is_none());
        assert!(!c.enabled());
    }

    #[test]
    fn hit_returns_equal_frame_and_counts() {
        let mut c = QueryCache::new(1 << 20);
        let key = CacheKey::new("i", Some(&["x"]), Some(5), 0);
        let f = frame(2.0, 5);
        c.insert(key.clone(), &f);
        assert_eq!(c.get(&key), Some(f));
        assert_eq!(c.hits(), 1);
        assert!(c.get(&CacheKey::new("other", None, None, 0)).is_none());
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn index_version_partitions_the_key_space() {
        // The same request under a different index version is a different
        // key: dropping or rebuilding an index must never hit entries
        // cached under the previous index state.
        let v0 = CacheKey::new("i", Some(&["x"]), Some(5), 0);
        let v1 = CacheKey::new("i", Some(&["x"]), Some(5), 1);
        let v2 = CacheKey::new("i", Some(&["x"]), Some(5), 2);
        assert_ne!(v0, v1);
        assert_ne!(v1, v2);
        let mut c = QueryCache::new(1 << 20);
        c.insert(v1.clone(), &frame(1.0, 5));
        assert!(c.get(&v0).is_none());
        assert!(c.get(&v2).is_none());
        assert!(c.get(&v1).is_some());
    }

    #[test]
    fn column_order_is_canonicalized() {
        let a = CacheKey::new("i", Some(&["b", "a"]), None, 0);
        let b = CacheKey::new("i", Some(&["a", "b"]), None, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // Each frame is 100 rows * 8 bytes = 800 bytes; budget fits two.
        let mut c = QueryCache::new(1700);
        let k1 = CacheKey::new("i1", None, None, 0);
        let k2 = CacheKey::new("i2", None, None, 0);
        let k3 = CacheKey::new("i3", None, None, 0);
        c.insert(k1.clone(), &frame(1.0, 100));
        c.insert(k2.clone(), &frame(2.0, 100));
        // Touch k1 so k2 is LRU.
        assert!(c.get(&k1).is_some());
        c.insert(k3.clone(), &frame(3.0, 100));
        assert!(c.get(&k2).is_none(), "k2 was LRU and must be evicted");
        assert!(c.get(&k1).is_some());
        assert!(c.get(&k3).is_some());
        assert!(c.used_bytes() <= 1700);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let mut c = QueryCache::new(100);
        let key = CacheKey::new("i", None, None, 0);
        c.insert(key.clone(), &frame(1.0, 1000)); // 8000 bytes > 100
        assert!(c.get(&key).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn invalidate_drops_only_that_intermediate() {
        let mut c = QueryCache::new(1 << 20);
        let k1 = CacheKey::new("i1", None, None, 0);
        let k1b = CacheKey::new("i1", Some(&["x"]), Some(3), 0);
        let k2 = CacheKey::new("i2", None, None, 0);
        c.insert(k1.clone(), &frame(1.0, 10));
        c.insert(k1b.clone(), &frame(1.5, 3));
        c.insert(k2.clone(), &frame(2.0, 10));
        c.invalidate("i1");
        assert!(c.get(&k1).is_none());
        assert!(c.get(&k1b).is_none());
        assert!(c.get(&k2).is_some());
    }
}
