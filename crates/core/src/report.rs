//! Per-query EXPLAIN reports: every diagnostic fetch records what the cost
//! model predicted, which plan the planner chose, and where the time and
//! bytes actually went — the per-query counterpart of the aggregate
//! counters in `mistique-obs`. The same bounded-ring machinery retains
//! [`ReclaimReport`]s, the storage-manager counterpart produced by every
//! `Mistique::reclaim` pass.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

use mistique_store::{CompactionReport, ReadAttribution};

/// Which plan served a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanChoice {
    /// Stored chunks were read back (Eq 4 won).
    Read,
    /// The model was re-run (Eq 2/3 won, or reading was impossible).
    Rerun,
    /// The session query cache served the result outright.
    Cached,
    /// A secondary index served the query: top-k from the max-activation
    /// list, or a threshold scan restricted to the RowBlocks the zone maps
    /// could not prove empty (see [`crate::index_state`]). Always
    /// bit-identical to the scan it replaces.
    IndexedRead,
}

impl PlanChoice {
    /// Lower-case plan name (`read` / `rerun` / `cached` / `indexed_read`),
    /// also used as the drift-monitor query class.
    pub fn name(&self) -> &'static str {
        match self {
            PlanChoice::Read => "read",
            PlanChoice::Rerun => "rerun",
            PlanChoice::Cached => "cached",
            PlanChoice::IndexedRead => "indexed_read",
        }
    }
}

/// The EXPLAIN record of one fetch. Produced for every
/// `Mistique::get_intermediate` / `get_rows` call — and therefore for every
/// `Diagnostics` query — and kept in a bounded ring
/// (`MistiqueConfig::report_retention`).
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Monotone sequence number within the session.
    pub seq: u64,
    /// The diagnostic query that issued the fetch (e.g. `diag.topk`), or
    /// `fetch` for direct API calls.
    pub query: String,
    /// The intermediate served.
    pub intermediate: String,
    /// The plan that served the query.
    pub plan: PlanChoice,
    /// Cost-model prediction for reading stored chunks, in seconds (Eq 4).
    pub predicted_read_s: f64,
    /// Cost-model prediction for re-running the model, in seconds (Eq 2/3).
    pub predicted_rerun_s: f64,
    /// Actual wall time of the fetch.
    pub actual: Duration,
    /// Rows served.
    pub n_ex: usize,
    /// Whether the session query cache served the fetch.
    pub cache_hit: bool,
    /// DataStore activity attributed to this fetch (already diffed: just
    /// this query's gets/bytes/partitions/codec breakdown).
    pub attribution: ReadAttribution,
    /// Quantization scheme of the intermediate served (e.g. `FULL`,
    /// `8BIT_QT`, `POOL_QT(2)+FULL`). Re-runs serve full precision.
    pub scheme: String,
    /// Worst-case per-value error bound of that scheme when statically
    /// known: `Some(0.0)` is lossless, `None` is data-dependent (KBIT
    /// quantile bins, THRESHOLD binarization).
    pub error_bound: Option<f64>,
    /// Trace id of the fetch's root span — the key into
    /// `Mistique::render_trace` / the Perfetto export for this query's tree.
    pub trace_id: u64,
    /// Smoothed predicted/actual ratio of this query's class after folding
    /// this observation in (`None` when the fetch was not drift-monitored,
    /// e.g. cache hits).
    pub drift_ratio: Option<f64>,
    /// Whether the drift monitor considered the class miscalibrated at this
    /// query.
    pub drift_flagged: bool,
    /// Block-skip attribution when the plan was
    /// [`PlanChoice::IndexedRead`]: total blocks, blocks the index proved
    /// skippable, and the indexed-plan cost prediction. `None` for every
    /// other plan.
    pub pruning: Option<crate::index_state::IndexPruning>,
}

impl QueryReport {
    /// Render the report as a small aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = writeln!(
            out,
            "query #{} {} on {}",
            self.seq, self.query, self.intermediate
        );
        let _ = writeln!(
            out,
            "  plan     : {}  (predicted read {}, rerun {})",
            self.plan.name(),
            fmt_secs(self.predicted_read_s),
            fmt_secs(self.predicted_rerun_s),
        );
        let _ = writeln!(
            out,
            "  actual   : {}  rows={}  cache_hit={}",
            fmt_secs(self.actual.as_secs_f64()),
            self.n_ex,
            self.cache_hit
        );
        if let Some(p) = &self.pruning {
            let _ = writeln!(
                out,
                "  index    : skipped {}/{} blocks  (predicted {})",
                p.blocks_skipped,
                p.blocks_total,
                fmt_secs(p.predicted_s),
            );
        }
        let a = &self.attribution;
        let _ = writeln!(
            out,
            "  store    : {} gets, {} B, partitions={} (mem={} cache={} disk={})",
            a.gets, a.bytes, a.partitions_touched, a.mem_hits, a.cache_hits, a.disk_reads
        );
        if !a.codec_bytes.is_empty() {
            let _ = write!(out, "  codecs   :");
            for (codec, bytes) in &a.codec_bytes {
                let _ = write!(out, " {codec}={bytes}B");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "  scheme   : {}  error_bound={}",
            self.scheme,
            match self.error_bound {
                Some(b) => format!("{b}"),
                None => "data-dependent".to_string(),
            }
        );
        match self.drift_ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  drift    : ratio {:.3} ({})",
                    r,
                    if self.drift_flagged {
                        "MISCALIBRATED"
                    } else {
                        "ok"
                    }
                );
            }
            None => {
                let _ = writeln!(out, "  drift    : not monitored for this plan");
            }
        }
        let _ = writeln!(out, "  trace    : {}", self.trace_id);
        out
    }
}

/// One ladder action taken by a reclaim pass: an intermediate demoted to a
/// cheaper value scheme, re-encoded as base+delta frames (`to == "DELTA"`),
/// or purged outright (`to == "PURGED"`).
#[derive(Clone, Debug)]
pub struct DemotionRecord {
    /// The intermediate acted on.
    pub intermediate: String,
    /// Scheme before the step (e.g. `FULL`).
    pub from: String,
    /// Scheme after the step (e.g. `LP_QT`), or `PURGED`.
    pub to: String,
    /// Stored bytes before the step.
    pub bytes_before: u64,
    /// Stored bytes after the step (0 for a purge).
    pub bytes_after: u64,
    /// γ (Eq 5) of the victim at the moment it was chosen — the coldest
    /// materialized intermediate of the pass.
    pub gamma: f64,
}

/// The record of one storage-reclamation pass (`Mistique::reclaim`): which
/// intermediates were demoted or purged to get back under the byte budget,
/// and what partition compaction physically recovered. Retained in its own
/// bounded ring next to the query reports.
#[derive(Clone, Debug)]
pub struct ReclaimReport {
    /// Monotone sequence number within the session.
    pub seq: u64,
    /// Budget the pass enforced (0 = unlimited: demotion loop skipped,
    /// compaction still runs).
    pub budget_bytes: u64,
    /// Materialized bytes (per-intermediate accounting) before the pass.
    pub used_before: u64,
    /// Materialized bytes after the pass.
    pub used_after: u64,
    /// Ladder steps taken, in order (purges appear here too).
    pub demotions: Vec<DemotionRecord>,
    /// Intermediates flipped to `materialized = false`; future queries
    /// re-run them and may re-promote.
    pub purged: Vec<String>,
    /// What partition compaction did, when it ran.
    pub compaction: Option<CompactionReport>,
    /// Why compaction was skipped, when it was (e.g. a stale on-disk
    /// manifest that could not be refreshed first).
    pub compaction_skipped: Option<String>,
    /// Wall time of the whole pass.
    pub elapsed: Duration,
    /// Trace id of the pass's root span.
    pub trace_id: u64,
}

impl ReclaimReport {
    /// Whether the pass left the system within budget (trivially true for
    /// an unlimited budget).
    pub fn within_budget(&self) -> bool {
        self.budget_bytes == 0 || self.used_after <= self.budget_bytes
    }

    /// Render the report as a small aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let budget = if self.budget_bytes == 0 {
            "unlimited".to_string()
        } else {
            format!("{} B", self.budget_bytes)
        };
        let _ = writeln!(
            out,
            "reclaim #{}: budget {budget}, used {} B -> {} B ({})",
            self.seq,
            self.used_before,
            self.used_after,
            if self.within_budget() {
                "within budget"
            } else {
                "OVER BUDGET"
            }
        );
        for d in &self.demotions {
            let _ = writeln!(
                out,
                "  {:<8} : {}  {} -> {}  ({} B -> {} B, gamma {:.3e})",
                if d.to == "PURGED" {
                    "purge"
                } else if d.to == "DELTA" {
                    "delta"
                } else {
                    "demote"
                },
                d.intermediate,
                d.from,
                d.to,
                d.bytes_before,
                d.bytes_after,
                d.gamma
            );
        }
        match (&self.compaction, &self.compaction_skipped) {
            (Some(c), _) => {
                let _ = writeln!(
                    out,
                    "  compact  : {} scanned, {} rewritten, {} removed, {} B / {} chunks reclaimed",
                    c.partitions_scanned,
                    c.partitions_rewritten,
                    c.partitions_removed,
                    c.bytes_reclaimed,
                    c.chunks_dropped
                );
            }
            (None, Some(reason)) => {
                let _ = writeln!(out, "  compact  : skipped ({reason})");
            }
            (None, None) => {
                let _ = writeln!(out, "  compact  : not run");
            }
        }
        let _ = writeln!(out, "  elapsed  : {}", fmt_secs(self.elapsed.as_secs_f64()));
        let _ = writeln!(out, "  trace    : {}", self.trace_id);
        out
    }
}

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        format!("{s}")
    } else if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// A report type that carries a session-monotone sequence number the ring
/// stamps at push time.
pub trait Stamped {
    /// Overwrite the report's sequence number.
    fn set_seq(&mut self, seq: u64);
}

impl Stamped for QueryReport {
    fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }
}

impl Stamped for ReclaimReport {
    fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }
}

/// Bounded ring of recent reports, oldest first. Every pushed report gets
/// the next sequence number even when retention is disabled.
#[derive(Debug)]
pub struct SeqRing<T> {
    ring: VecDeque<T>,
    capacity: usize,
    next_seq: u64,
}

/// The ring of per-query EXPLAIN reports.
pub type ReportRing = SeqRing<QueryReport>;

impl<T: Stamped> SeqRing<T> {
    /// A ring retaining up to `capacity` reports (0 disables retention;
    /// sequence numbers still advance).
    pub fn new(capacity: usize) -> SeqRing<T> {
        SeqRing {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
        }
    }

    /// Stamp the report with the next sequence number and retain it.
    /// Returns the assigned sequence number.
    pub(crate) fn push(&mut self, mut report: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        report.set_seq(seq);
        if self.capacity == 0 {
            return seq;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(report);
        seq
    }

    /// The most recent report.
    pub fn last(&self) -> Option<&T> {
        self.ring.back()
    }

    /// Up to the last `n` reports, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&T> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip).collect()
    }

    /// Number of retained reports.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no reports are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(intermediate: &str) -> QueryReport {
        QueryReport {
            seq: 0,
            query: "diag.topk".to_string(),
            intermediate: intermediate.to_string(),
            plan: PlanChoice::Read,
            predicted_read_s: 0.0012,
            predicted_rerun_s: 0.4,
            actual: Duration::from_micros(1800),
            n_ex: 5000,
            cache_hit: false,
            attribution: ReadAttribution {
                gets: 11,
                bytes: 88_200,
                mem_hits: 0,
                cache_hits: 9,
                disk_reads: 2,
                partitions_touched: 2,
                codec_bytes: vec![("rle".to_string(), 40_000)],
            },
            scheme: "FULL".to_string(),
            error_bound: Some(0.0),
            trace_id: 42,
            drift_ratio: Some(0.667),
            drift_flagged: false,
            pruning: None,
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let r = report("m1.interm5");
        let text = r.render();
        assert!(text.contains("diag.topk"));
        assert!(text.contains("m1.interm5"));
        assert!(text.contains("plan     : read"));
        assert!(text.contains("rows=5000"));
        assert!(text.contains("partitions=2"));
        assert!(text.contains("rle=40000B"));
        assert!(text.contains("FULL"));
        assert!(text.contains("ratio 0.667 (ok)"));
        assert!(text.contains("trace    : 42"));
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let mut ring = ReportRing::new(2);
        assert!(ring.is_empty());
        for i in 0..5 {
            let seq = ring.push(report(&format!("i{i}")));
            assert_eq!(seq, i);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.capacity(), 2);
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].intermediate, "i3");
        assert_eq!(recent[1].intermediate, "i4");
        assert_eq!(ring.last().unwrap().seq, 4);
        assert_eq!(ring.recent(1).len(), 1);
    }

    #[test]
    fn reclaim_report_renders_ladder_and_compaction() {
        let r = ReclaimReport {
            seq: 3,
            budget_bytes: 4096,
            used_before: 10_000,
            used_after: 3_500,
            demotions: vec![
                DemotionRecord {
                    intermediate: "m.i3".into(),
                    from: "FULL".into(),
                    to: "LP_QT".into(),
                    bytes_before: 5_000,
                    bytes_after: 2_500,
                    gamma: 1.5e-7,
                },
                DemotionRecord {
                    intermediate: "m.i1".into(),
                    from: "THRESHOLD_QT".into(),
                    to: "PURGED".into(),
                    bytes_before: 1_200,
                    bytes_after: 0,
                    gamma: 2.0e-9,
                },
            ],
            purged: vec!["m.i1".into()],
            compaction: Some(CompactionReport {
                partitions_scanned: 4,
                partitions_rewritten: 2,
                partitions_removed: 1,
                bytes_reclaimed: 3_400,
                chunks_dropped: 7,
            }),
            compaction_skipped: None,
            elapsed: Duration::from_millis(12),
            trace_id: 99,
        };
        assert!(r.within_budget());
        let text = r.render();
        assert!(text.contains("reclaim #3"));
        assert!(text.contains("within budget"));
        assert!(text.contains("demote"));
        assert!(text.contains("FULL -> LP_QT"));
        assert!(text.contains("purge"));
        assert!(text.contains("PURGED"));
        assert!(text.contains("2 rewritten, 1 removed"));
        assert!(text.contains("trace    : 99"));
    }

    #[test]
    fn reclaim_reports_share_the_ring_machinery() {
        let mut ring: SeqRing<ReclaimReport> = SeqRing::new(2);
        for _ in 0..3 {
            ring.push(ReclaimReport {
                seq: 0,
                budget_bytes: 0,
                used_before: 1,
                used_after: 1,
                demotions: vec![],
                purged: vec![],
                compaction: None,
                compaction_skipped: None,
                elapsed: Duration::ZERO,
                trace_id: 0,
            });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.last().unwrap().seq, 2);
        assert!(ring.last().unwrap().within_budget());
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing_but_counts() {
        let mut ring = ReportRing::new(0);
        assert_eq!(ring.push(report("a")), 0);
        assert_eq!(ring.push(report("b")), 1);
        assert!(ring.is_empty());
        assert!(ring.last().is_none());
    }
}
