//! Per-query EXPLAIN reports: every diagnostic fetch records what the cost
//! model predicted, which plan the planner chose, and where the time and
//! bytes actually went — the per-query counterpart of the aggregate
//! counters in `mistique-obs`.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

use mistique_store::ReadAttribution;

/// Which plan served a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanChoice {
    /// Stored chunks were read back (Eq 4 won).
    Read,
    /// The model was re-run (Eq 2/3 won, or reading was impossible).
    Rerun,
    /// The session query cache served the result outright.
    Cached,
}

impl PlanChoice {
    /// Lower-case plan name (`read` / `rerun` / `cached`), also used as the
    /// drift-monitor query class.
    pub fn name(&self) -> &'static str {
        match self {
            PlanChoice::Read => "read",
            PlanChoice::Rerun => "rerun",
            PlanChoice::Cached => "cached",
        }
    }
}

/// The EXPLAIN record of one fetch. Produced for every
/// `Mistique::get_intermediate` / `get_rows` call — and therefore for every
/// `Diagnostics` query — and kept in a bounded ring
/// (`MistiqueConfig::report_retention`).
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Monotone sequence number within the session.
    pub seq: u64,
    /// The diagnostic query that issued the fetch (e.g. `diag.topk`), or
    /// `fetch` for direct API calls.
    pub query: String,
    /// The intermediate served.
    pub intermediate: String,
    /// The plan that served the query.
    pub plan: PlanChoice,
    /// Cost-model prediction for reading stored chunks, in seconds (Eq 4).
    pub predicted_read_s: f64,
    /// Cost-model prediction for re-running the model, in seconds (Eq 2/3).
    pub predicted_rerun_s: f64,
    /// Actual wall time of the fetch.
    pub actual: Duration,
    /// Rows served.
    pub n_ex: usize,
    /// Whether the session query cache served the fetch.
    pub cache_hit: bool,
    /// DataStore activity attributed to this fetch (already diffed: just
    /// this query's gets/bytes/partitions/codec breakdown).
    pub attribution: ReadAttribution,
    /// Quantization scheme of the intermediate served (e.g. `FULL`,
    /// `8BIT_QT`, `POOL_QT(2)+FULL`). Re-runs serve full precision.
    pub scheme: String,
    /// Worst-case per-value error bound of that scheme when statically
    /// known: `Some(0.0)` is lossless, `None` is data-dependent (KBIT
    /// quantile bins, THRESHOLD binarization).
    pub error_bound: Option<f64>,
    /// Trace id of the fetch's root span — the key into
    /// `Mistique::render_trace` / the Perfetto export for this query's tree.
    pub trace_id: u64,
    /// Smoothed predicted/actual ratio of this query's class after folding
    /// this observation in (`None` when the fetch was not drift-monitored,
    /// e.g. cache hits).
    pub drift_ratio: Option<f64>,
    /// Whether the drift monitor considered the class miscalibrated at this
    /// query.
    pub drift_flagged: bool,
}

impl QueryReport {
    /// Render the report as a small aligned text block.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = writeln!(
            out,
            "query #{} {} on {}",
            self.seq, self.query, self.intermediate
        );
        let _ = writeln!(
            out,
            "  plan     : {}  (predicted read {}, rerun {})",
            self.plan.name(),
            fmt_secs(self.predicted_read_s),
            fmt_secs(self.predicted_rerun_s),
        );
        let _ = writeln!(
            out,
            "  actual   : {}  rows={}  cache_hit={}",
            fmt_secs(self.actual.as_secs_f64()),
            self.n_ex,
            self.cache_hit
        );
        let a = &self.attribution;
        let _ = writeln!(
            out,
            "  store    : {} gets, {} B, partitions={} (mem={} cache={} disk={})",
            a.gets, a.bytes, a.partitions_touched, a.mem_hits, a.cache_hits, a.disk_reads
        );
        if !a.codec_bytes.is_empty() {
            let _ = write!(out, "  codecs   :");
            for (codec, bytes) in &a.codec_bytes {
                let _ = write!(out, " {codec}={bytes}B");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "  scheme   : {}  error_bound={}",
            self.scheme,
            match self.error_bound {
                Some(b) => format!("{b}"),
                None => "data-dependent".to_string(),
            }
        );
        match self.drift_ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  drift    : ratio {:.3} ({})",
                    r,
                    if self.drift_flagged {
                        "MISCALIBRATED"
                    } else {
                        "ok"
                    }
                );
            }
            None => {
                let _ = writeln!(out, "  drift    : not monitored for this plan");
            }
        }
        let _ = writeln!(out, "  trace    : {}", self.trace_id);
        out
    }
}

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        format!("{s}")
    } else if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Bounded ring of recent [`QueryReport`]s, oldest first.
#[derive(Debug)]
pub struct ReportRing {
    ring: VecDeque<QueryReport>,
    capacity: usize,
    next_seq: u64,
}

impl ReportRing {
    /// A ring retaining up to `capacity` reports (0 disables retention;
    /// sequence numbers still advance).
    pub fn new(capacity: usize) -> ReportRing {
        ReportRing {
            ring: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
        }
    }

    /// Stamp the report with the next sequence number and retain it.
    /// Returns the assigned sequence number.
    pub(crate) fn push(&mut self, mut report: QueryReport) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        report.seq = seq;
        if self.capacity == 0 {
            return seq;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(report);
        seq
    }

    /// The most recent report.
    pub fn last(&self) -> Option<&QueryReport> {
        self.ring.back()
    }

    /// Up to the last `n` reports, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&QueryReport> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip).collect()
    }

    /// Number of retained reports.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no reports are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(intermediate: &str) -> QueryReport {
        QueryReport {
            seq: 0,
            query: "diag.topk".to_string(),
            intermediate: intermediate.to_string(),
            plan: PlanChoice::Read,
            predicted_read_s: 0.0012,
            predicted_rerun_s: 0.4,
            actual: Duration::from_micros(1800),
            n_ex: 5000,
            cache_hit: false,
            attribution: ReadAttribution {
                gets: 11,
                bytes: 88_200,
                mem_hits: 0,
                cache_hits: 9,
                disk_reads: 2,
                partitions_touched: 2,
                codec_bytes: vec![("rle".to_string(), 40_000)],
            },
            scheme: "FULL".to_string(),
            error_bound: Some(0.0),
            trace_id: 42,
            drift_ratio: Some(0.667),
            drift_flagged: false,
        }
    }

    #[test]
    fn render_mentions_every_section() {
        let r = report("m1.interm5");
        let text = r.render();
        assert!(text.contains("diag.topk"));
        assert!(text.contains("m1.interm5"));
        assert!(text.contains("plan     : read"));
        assert!(text.contains("rows=5000"));
        assert!(text.contains("partitions=2"));
        assert!(text.contains("rle=40000B"));
        assert!(text.contains("FULL"));
        assert!(text.contains("ratio 0.667 (ok)"));
        assert!(text.contains("trace    : 42"));
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let mut ring = ReportRing::new(2);
        assert!(ring.is_empty());
        for i in 0..5 {
            let seq = ring.push(report(&format!("i{i}")));
            assert_eq!(seq, i);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.capacity(), 2);
        let recent = ring.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].intermediate, "i3");
        assert_eq!(recent[1].intermediate, "i4");
        assert_eq!(ring.last().unwrap().seq, 4);
        assert_eq!(ring.recent(1).len(), 1);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing_but_counts() {
        let mut ring = ReportRing::new(0);
        assert_eq!(ring.push(report("a")), 0);
        assert_eq!(ring.push(report("b")), 1);
        assert!(ring.is_empty());
        assert!(ring.last().is_none());
    }
}
