//! Manifest persistence: survive restarts.
//!
//! The paper's system keeps the MetadataDB in a central repository; here the
//! equivalent is a JSON manifest written next to the partition files. After
//! [`Mistique::persist`], a later process can [`Mistique::reopen`] the same
//! directory and immediately *read* every materialized intermediate. Model
//! *re-running* requires the executable models to be registered again via
//! [`Mistique::reattach_trad`] / [`Mistique::reattach_dnn`] (an executable
//! model is code + input data, which a manifest cannot capture).
//!
//! The manifest is written atomically (tmp file + fsync + rename + directory
//! fsync), so a crash mid-persist leaves either the previous manifest or the
//! new one — never a torn file. [`Mistique::reopen`] always runs a recovery
//! pass over the partition directory (see
//! [`mistique_store::datastore::DataStore::recover`]).

use std::path::Path;
use std::sync::Arc;

use mistique_nn::{ArchConfig, CifarLike};
use mistique_pipeline::{Pipeline, ZillowData};
use mistique_store::StorageBackend;
use serde::{Deserialize, Serialize};

use crate::error::MistiqueError;
use crate::executor::ModelSource;
use crate::metadata::{IntermediateMeta, ModelMeta};
use crate::system::{Mistique, MistiqueConfig};

/// Serialized system state: metadata registry + store catalog.
#[derive(Serialize, Deserialize)]
struct Manifest {
    models: Vec<ModelMeta>,
    intermediates: Vec<IntermediateMeta>,
    catalog: mistique_store::datastore::StoreCatalog,
}

pub(crate) const MANIFEST_FILE: &str = "mistique_manifest.json";

impl Mistique {
    /// Flush all open partitions and write the manifest so the directory can
    /// be [`Mistique::reopen`]ed later.
    pub fn persist(&mut self) -> Result<(), MistiqueError> {
        self.flush()?;
        let manifest = Manifest {
            models: self
                .meta
                .model_ids()
                .iter()
                .map(|id| self.meta.model(id).unwrap().clone())
                .collect(),
            intermediates: {
                let mut all: Vec<IntermediateMeta> = self
                    .meta
                    .model_ids()
                    .iter()
                    .flat_map(|id| self.meta.intermediates_of(id).into_iter().cloned())
                    .collect();
                all.sort_by(|a, b| a.id.cmp(&b.id));
                all
            },
            catalog: self.store.export_catalog(),
        };
        let json = serde_json::to_string(&manifest)
            .map_err(|e| MistiqueError::Invalid(format!("manifest serialize: {e}")))?;
        self.backend
            .write_atomic(&self.dir.join(MANIFEST_FILE), json.as_bytes())
            .map_err(mistique_store::StoreError::Io)?;
        Ok(())
    }

    /// Reopen a persisted directory: all materialized intermediates become
    /// readable immediately. Always runs a recovery pass first (orphan tmp
    /// files removed, corrupt partitions quarantined — see
    /// [`Mistique::recovery_report`]). Returns [`MistiqueError::NoManifest`]
    /// if nothing was ever persisted.
    pub fn reopen(
        dir: impl AsRef<Path>,
        config: MistiqueConfig,
    ) -> Result<Mistique, MistiqueError> {
        Self::reopen_with_backend(dir, config, Arc::new(mistique_store::RealFs))
    }

    /// [`Mistique::reopen`] over an explicit [`StorageBackend`] (crash
    /// tests reopen against the same in-memory [`mistique_store::FaultyFs`]
    /// they crashed).
    pub fn reopen_with_backend(
        dir: impl AsRef<Path>,
        config: MistiqueConfig,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Mistique, MistiqueError> {
        let dir = dir.as_ref();
        let bytes = backend.read_file(&dir.join(MANIFEST_FILE)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                MistiqueError::NoManifest
            } else {
                MistiqueError::Store(mistique_store::StoreError::Io(e))
            }
        })?;
        let json = String::from_utf8(bytes)
            .map_err(|e| MistiqueError::Invalid(format!("manifest not utf-8: {e}")))?;
        let manifest: Manifest = serde_json::from_str(&json)
            .map_err(|e| MistiqueError::Invalid(format!("manifest parse: {e}")))?;

        let obs = mistique_obs::Obs::with_ring_capacity(config.span_ring_capacity);
        let mut sys = Mistique::open_full(dir, config, obs, backend)?;
        sys.store.import_catalog(manifest.catalog);
        for m in manifest.models {
            sys.meta.register_model(m);
        }
        for i in manifest.intermediates {
            sys.meta.upsert_intermediate(i);
        }
        let report = sys.store.recover()?;
        sys.last_recovery = Some(report);
        // Journal the recovery pass — it is also the counter-reset boundary
        // a timeline reader needs to interpret deltas across restarts.
        sys.telemetry_event(
            "recovery",
            None,
            vec![
                (
                    "partitions_ok".to_string(),
                    report.partitions_ok.to_string(),
                ),
                ("quarantined".to_string(), report.quarantined.to_string()),
                (
                    "orphans_removed".to_string(),
                    report.orphans_removed.to_string(),
                ),
                ("missing".to_string(), report.missing.to_string()),
            ],
        );
        sys.telemetry_capture("recovery");
        Ok(sys)
    }

    /// Re-attach the executable pipeline for a restored TRAD model so that
    /// re-run fetches work again. The pipeline id must match the restored
    /// model id.
    pub fn reattach_trad(
        &mut self,
        pipeline: Pipeline,
        data: Arc<ZillowData>,
    ) -> Result<(), MistiqueError> {
        let id = pipeline.id.clone();
        if self.meta.model(&id).is_none() {
            return Err(MistiqueError::UnknownModel(id));
        }
        self.sources
            .insert(id, ModelSource::Trad { pipeline, data });
        Ok(())
    }

    /// Re-attach the executable checkpoint for a restored DNN model.
    pub fn reattach_dnn(
        &mut self,
        arch: Arc<ArchConfig>,
        seed: u64,
        epoch: u32,
        data: Arc<CifarLike>,
        batch_size: usize,
    ) -> Result<(), MistiqueError> {
        let source = ModelSource::Dnn {
            arch,
            seed,
            epoch,
            data,
            batch_size,
        };
        let id = source.id();
        if self.meta.model(&id).is_none() {
            return Err(MistiqueError::UnknownModel(id));
        }
        self.sources.insert(id, source);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::FetchStrategy;

    use mistique_pipeline::templates::zillow_pipelines;

    #[test]
    fn persist_and_reopen_reads_everything() {
        let dir = tempfile::tempdir().unwrap();
        let data = Arc::new(ZillowData::generate(200, 1));
        let preds;
        let expected;
        {
            let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
            let id = sys
                .register_trad(zillow_pipelines().remove(0), Arc::clone(&data))
                .unwrap();
            sys.log_intermediates(&id).unwrap();
            preds = sys.intermediates_of(&id).last().unwrap().clone();
            expected = sys
                .fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)
                .unwrap()
                .frame;
            sys.persist().unwrap();
        }
        // New process: reopen and read without any model registered.
        let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
        let restored = sys
            .fetch_with_strategy(&preds, Some(&["pred"]), None, FetchStrategy::Read)
            .unwrap()
            .frame;
        assert_eq!(restored, expected);
        // Metadata restored too.
        assert_eq!(sys.model_ids().len(), 1);
        assert!(sys.metadata().intermediate(&preds).unwrap().materialized);
    }

    #[test]
    fn rerun_after_reopen_requires_reattach() {
        let dir = tempfile::tempdir().unwrap();
        let data = Arc::new(ZillowData::generate(150, 1));
        let pipeline = zillow_pipelines().remove(0);
        let interm0;
        {
            let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
            let id = sys
                .register_trad(pipeline.clone(), Arc::clone(&data))
                .unwrap();
            sys.log_intermediates(&id).unwrap();
            interm0 = sys.intermediates_of(&id)[0].clone();
            sys.persist().unwrap();
        }
        let mut sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
        // Forced rerun without a source fails cleanly.
        assert!(sys
            .fetch_with_strategy(&interm0, None, None, FetchStrategy::Rerun)
            .is_err());
        // After re-attaching, rerun works and matches the stored data.
        sys.reattach_trad(pipeline, data).unwrap();
        let rerun = sys
            .fetch_with_strategy(&interm0, None, None, FetchStrategy::Rerun)
            .unwrap()
            .frame;
        assert_eq!(rerun.n_rows(), 150);
    }

    #[test]
    fn reopen_without_manifest_errors() {
        let dir = tempfile::tempdir().unwrap();
        assert!(matches!(
            Mistique::reopen(dir.path(), MistiqueConfig::default()),
            Err(MistiqueError::NoManifest)
        ));
    }

    #[test]
    fn persist_leaves_no_tmp_files() {
        let dir = tempfile::tempdir().unwrap();
        let data = Arc::new(ZillowData::generate(100, 1));
        let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
        let id = sys
            .register_trad(zillow_pipelines().remove(0), data)
            .unwrap();
        sys.log_intermediates(&id).unwrap();
        if sys.persist().is_err() {
            // Environments without a JSON serializer can't persist; the
            // atomic-write discipline is still covered by the store tests.
            return;
        }
        for entry in std::fs::read_dir(dir.path()).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(!name.ends_with(".tmp"), "leftover tmp file: {name}");
        }
        // Reopen reports a clean recovery: every partition verified, nothing
        // quarantined or missing.
        let sys = Mistique::reopen(dir.path(), MistiqueConfig::default()).unwrap();
        let report = sys.recovery_report().unwrap();
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.orphans_removed, 0);
        assert_eq!(report.missing, 0);
        assert!(report.partitions_ok > 0);
    }

    #[test]
    fn reattach_unknown_model_errors() {
        let dir = tempfile::tempdir().unwrap();
        let mut sys = Mistique::open(dir.path(), MistiqueConfig::default()).unwrap();
        let data = Arc::new(ZillowData::generate(50, 1));
        let err = sys.reattach_trad(zillow_pipelines().remove(0), data);
        assert!(matches!(err, Err(MistiqueError::UnknownModel(_))));
    }
}
