//! # MISTIQUE: Model Intermediate STore and QUery Engine
//!
//! A from-scratch Rust reproduction of *"MISTIQUE: A System to Store and
//! Query Model Intermediates for Model Diagnosis"* (Vartak et al., SIGMOD
//! 2018).
//!
//! MISTIQUE captures the intermediate datasets a machine-learning model
//! produces — the outputs of every pipeline stage (TRAD) or the hidden
//! activations of every layer (DNN) — stores them compactly, and answers
//! diagnostic queries by *either* reading a stored intermediate *or*
//! re-running the model, whichever the cost model says is cheaper.
//!
//! ## Quick start
//!
//! ```no_run
//! use mistique_core::{Mistique, MistiqueConfig, ModelSource};
//! use mistique_pipeline::{templates, ZillowData};
//! use std::sync::Arc;
//!
//! let data = Arc::new(ZillowData::generate(5_000, 42));
//! let mut mistique = Mistique::open("/tmp/mistique-demo", MistiqueConfig::default()).unwrap();
//!
//! // Log every intermediate of one Zillow pipeline.
//! let pipeline = templates::zillow_pipelines().remove(0);
//! let id = mistique
//!     .register_trad(pipeline, Arc::clone(&data))
//!     .unwrap();
//! mistique.log_intermediates(&id).unwrap();
//!
//! // Query: MISTIQUE decides read-vs-rerun via the cost model.
//! let interms = mistique.intermediates_of(&id);
//! let result = mistique.get_intermediate(&interms[3], None, None).unwrap();
//! println!("fetched {} rows via {:?}", result.frame.n_rows(), result.strategy);
//! ```
//!
//! ## Architecture (paper Fig 3)
//!
//! | Paper component | Here |
//! |---|---|
//! | PipelineExecutor | [`executor::ModelSource`] (TRAD pipelines + DNN checkpoints) |
//! | DataStore (InMemoryStore + disk) | `mistique_store::DataStore` |
//! | ChunkReader | [`reader`] (in [`Mistique::get_intermediate`]) |
//! | MetadataDB | [`metadata::MetadataDb`] |
//! | Cost model (Sec 5) | [`cost::CostModel`] |
//! | Quantization (Sec 4.1) | `mistique_quantize` + [`capture`] |
//! | Dedup (Sec 4.2) | `mistique_dedup` + `mistique_store` |
//! | Adaptive materialization (Sec 4.3) | [`Mistique::get_intermediate`] + γ |
//! | Diagnostic queries (Table 1/5) | [`diagnostics`] |

pub mod audit;
pub mod capture;
pub mod cost;
pub mod dash;
pub mod diagnostics;
pub mod error;
pub mod executor;
pub mod index_state;
pub mod manager;
pub mod metadata;
pub mod persist;
pub mod qcache;
pub mod reader;
pub mod replay;
pub mod report;
pub mod system;
pub mod telemetry;

pub use audit::{SLO_BURN_FACTOR, SLO_MIN_SAMPLES};
pub use dash::{render_top, top_view, TopView};

pub use capture::{CaptureScheme, ValueScheme};
pub use cost::{CostModel, DriftMonitor};
// Observability (the `mistique-obs` crate) re-exported for convenience:
// `Mistique::obs()` hands out an `Obs`, snapshots come back as `Snapshot`.
pub use error::MistiqueError;
pub use executor::ModelSource;
pub use index_state::IndexPruning;
pub use manager::{next_demotion, COMPACT_LIVE_RATIO};
pub use metadata::{IntermediateMeta, MetadataDb, ModelKind};
pub use mistique_index::{IntermediateIndex, DEFAULT_TOP_M};
pub use mistique_obs::{
    counter_trace_json, validate_prometheus, AuditLog, AuditRecord, AuditStats, Counter,
    EngineEvent, Gauge, HistPoint, Histogram, Obs, RecorderStats, Snapshot, Span, SpanContext,
    SpanRecord, Timeline, TimelinePoint,
};
pub use mistique_store::{
    AuditDir, CompactionReport, IndexDir, RetractOutcome, TelemetryDir, AUDIT_SUBDIR, INDEX_SUBDIR,
    TELEMETRY_SUBDIR,
};
pub use reader::{FetchResult, FetchStrategy};
pub use replay::{
    decode_arch, differential_replay, encode_arch, replay_into, DifferentialReport, ReplayOptions,
    ReplayOutcome,
};
pub use report::{DemotionRecord, PlanChoice, QueryReport, ReclaimReport, ReportRing, SeqRing};
pub use system::{Mistique, MistiqueConfig, StorageStrategy};
pub use telemetry::{INTERVAL_CAPTURE, QCACHE_STORM_EVICTIONS};
