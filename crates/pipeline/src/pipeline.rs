//! Executable pipelines: an ordered list of stages, each emitting one
//! intermediate dataframe.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mistique_dataframe::DataFrame;

use crate::data::ZillowData;
use crate::model::{ElasticNet, Gbdt, Regressor};
use crate::stage::Stage;

/// A model fitted by a train stage and registered in the context.
#[derive(Clone, Debug)]
pub enum FittedModel {
    /// ElasticNet regression.
    Elastic(ElasticNet),
    /// Boosted-tree regression.
    Gbdt(Gbdt),
}

impl Regressor for FittedModel {
    fn predict(&self, x: &[f64], n_features: usize) -> Vec<f64> {
        match self {
            FittedModel::Elastic(m) => m.predict(x, n_features),
            FittedModel::Gbdt(m) => m.predict(x, n_features),
        }
    }
}

/// Mutable execution state threaded through a pipeline run.
pub struct PipelineContext {
    /// The source tables (the paper's `input_func`).
    pub data: ZillowData,
    /// Named frames produced so far.
    pub frames: HashMap<String, DataFrame>,
    /// Models registered by train stages.
    pub models: HashMap<String, FittedModel>,
    /// Hyper-parameter settings for this pipeline variant.
    pub hyper: HashMap<String, f64>,
    /// Seed for any stochastic stage (model subsampling).
    pub seed: u64,
}

impl PipelineContext {
    /// Create a fresh context.
    pub fn new(data: ZillowData, hyper: HashMap<String, f64>, seed: u64) -> PipelineContext {
        PipelineContext {
            data,
            frames: HashMap::new(),
            models: HashMap::new(),
            hyper,
            seed,
        }
    }

    /// Borrow a frame by name.
    ///
    /// # Panics
    /// Panics if the frame does not exist (a pipeline wiring bug).
    pub fn frame(&self, name: &str) -> &DataFrame {
        self.frames
            .get(name)
            .unwrap_or_else(|| panic!("no frame named {name}"))
    }

    /// Remove and return a frame (stages that transform in place re-insert).
    pub fn take_frame(&mut self, name: &str) -> DataFrame {
        self.frames
            .remove(name)
            .unwrap_or_else(|| panic!("no frame named {name}"))
    }

    /// Borrow a registered model.
    ///
    /// # Panics
    /// Panics if the model does not exist.
    pub fn model(&self, name: &str) -> &FittedModel {
        self.models
            .get(name)
            .unwrap_or_else(|| panic!("no model named {name}"))
    }
}

/// The record of one executed stage: its intermediate and the wall-clock
/// execution time (the cost model's `t_exec_xformer`).
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Stage index in the pipeline.
    pub stage_index: usize,
    /// Intermediate id: `<pipeline>.interm<idx>_<StageKind>`.
    pub intermediate_id: String,
    /// The intermediate dataframe the stage emitted.
    pub output: DataFrame,
    /// Time spent executing the stage.
    pub exec_time: Duration,
}

/// A named pipeline: an id, a stage list, and hyper-parameter settings.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Unique pipeline id (e.g. `P3_v2`).
    pub id: String,
    /// Ordered stages.
    pub stages: Vec<Stage>,
    /// Hyper-parameter settings for this variant.
    pub hyper: HashMap<String, f64>,
    /// Seed for stochastic stages.
    pub seed: u64,
}

impl Pipeline {
    /// Create a pipeline.
    pub fn new(
        id: impl Into<String>,
        stages: Vec<Stage>,
        hyper: HashMap<String, f64>,
        seed: u64,
    ) -> Pipeline {
        Pipeline {
            id: id.into(),
            stages,
            hyper,
            seed,
        }
    }

    /// Intermediate id for stage `i` of this pipeline.
    pub fn intermediate_id(&self, i: usize) -> String {
        format!("{}.interm{}_{}", self.id, i, self.stages[i].kind())
    }

    /// Run the whole pipeline, returning one [`RunRecord`] per stage.
    pub fn run(&self, data: &ZillowData) -> Vec<RunRecord> {
        self.run_to(data, self.stages.len().saturating_sub(1))
    }

    /// Run stages `0..=upto`, e.g. to recreate intermediate `upto`
    /// (the cost model's `t_re-run` path, Eq. 2).
    pub fn run_to(&self, data: &ZillowData, upto: usize) -> Vec<RunRecord> {
        assert!(upto < self.stages.len(), "stage {upto} out of range");
        let mut ctx = PipelineContext::new(data.clone(), self.hyper.clone(), self.seed);
        let mut records = Vec::with_capacity(upto + 1);
        for (i, stage) in self.stages.iter().take(upto + 1).enumerate() {
            let start = Instant::now();
            let output = stage.execute(&mut ctx);
            records.push(RunRecord {
                stage_index: i,
                intermediate_id: self.intermediate_id(i),
                output,
                exec_time: start.elapsed(),
            });
        }
        records
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{GbdtFlavor, Table};

    fn tiny_pipeline(id: &str, eta: f64) -> Pipeline {
        let mut hyper = HashMap::new();
        hyper.insert("eta".to_string(), eta);
        Pipeline::new(
            id,
            vec![
                Stage::ReadCsv {
                    table: Table::Properties,
                },
                Stage::ReadCsv {
                    table: Table::Train,
                },
                Stage::FillNa {
                    frame: "properties".into(),
                },
                Stage::Join {
                    left: "train".into(),
                    right: "properties".into(),
                    on: "parcel_id".into(),
                    out: "merged".into(),
                },
                Stage::TrainGbdt {
                    frame: "merged".into(),
                    y_col: "logerror".into(),
                    name: "m".into(),
                    flavor: GbdtFlavor::Xgboost,
                },
                Stage::Predict {
                    model: "m".into(),
                    frame: "merged".into(),
                    out: "preds".into(),
                },
            ],
            hyper,
            3,
        )
    }

    #[test]
    fn run_produces_one_record_per_stage() {
        let data = ZillowData::generate(200, 1);
        let p = tiny_pipeline("P", 0.1);
        let records = p.run(&data);
        assert_eq!(records.len(), 6);
        assert_eq!(records[0].intermediate_id, "P.interm0_ReadCSV");
        assert_eq!(records[5].intermediate_id, "P.interm5_Predict");
    }

    #[test]
    fn rerun_reproduces_identical_intermediates() {
        let data = ZillowData::generate(200, 1);
        let p = tiny_pipeline("P", 0.1);
        let a = p.run(&data);
        let b = p.run(&data);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.output, rb.output, "stage {}", ra.stage_index);
        }
    }

    #[test]
    fn run_to_stops_early() {
        let data = ZillowData::generate(200, 1);
        let p = tiny_pipeline("P", 0.1);
        let records = p.run_to(&data, 3);
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn variants_share_all_but_predictions() {
        // Two variants differing only in `eta`: every intermediate before the
        // train stage is byte-identical (the dedup goldmine of Fig 6a).
        let data = ZillowData::generate(200, 1);
        let a = tiny_pipeline("A", 0.05).run(&data);
        let b = tiny_pipeline("B", 0.3).run(&data);
        for i in 0..4 {
            assert_eq!(a[i].output, b[i].output, "shared stage {i}");
        }
        assert_ne!(a[5].output, b[5].output, "predictions must differ");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn run_to_out_of_range_panics() {
        let data = ZillowData::generate(50, 1);
        tiny_pipeline("P", 0.1).run_to(&data, 99);
    }
}
