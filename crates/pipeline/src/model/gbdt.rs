//! Gradient-boosted decision trees for regression (squared loss).
//!
//! Stands in for both XGBoost and LightGBM in the Zillow pipelines: the
//! template hyper-parameters of Table 4 (`eta`/`learning_rate`, `max_depth`,
//! `min_data`, `sub_feature`, `lambda`, `bagging_fraction`) map directly onto
//! [`GbdtParams`].

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::tree::{RegressionTree, TreeParams};
use super::Regressor;

/// Boosting hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct GbdtParams {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage (XGBoost `eta`, LightGBM `learning_rate`).
    pub learning_rate: f64,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Fraction of rows sampled per round (LightGBM `bagging_fraction`).
    pub bagging_fraction: f64,
    /// Seed for row/feature subsampling.
    pub seed: u64,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_rounds: 30,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            bagging_fraction: 1.0,
            seed: 0,
        }
    }
}

/// A fitted boosted ensemble.
#[derive(Clone, Debug)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl Gbdt {
    /// Fit on row-major `x` (`n x p`) and target `y` with squared loss.
    pub fn fit(x: &[f64], n_features: usize, y: &[f64], params: &GbdtParams) -> Gbdt {
        let n = y.len();
        assert!(n > 0, "empty training set");
        assert_eq!(x.len(), n * n_features, "x shape mismatch");
        assert!(
            params.bagging_fraction > 0.0 && params.bagging_fraction <= 1.0,
            "bagging_fraction in (0,1]"
        );

        let base = y.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut rng = StdRng::seed_from_u64(params.seed);

        for round in 0..params.n_rounds {
            // Squared-loss negative gradient = residual.
            let residual: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();

            // Row bagging: fit the tree on a sample, apply to all rows.
            let (bx, brs);
            let (fit_x, fit_r): (&[f64], &[f64]) = if params.bagging_fraction < 1.0 {
                let mut rows: Vec<usize> = (0..n).collect();
                rows.shuffle(&mut rng);
                rows.truncate(((n as f64) * params.bagging_fraction).ceil() as usize);
                let mut sx = Vec::with_capacity(rows.len() * n_features);
                let mut sr = Vec::with_capacity(rows.len());
                for &r in &rows {
                    sx.extend_from_slice(&x[r * n_features..(r + 1) * n_features]);
                    sr.push(residual[r]);
                }
                bx = sx;
                brs = sr;
                (&bx, &brs)
            } else {
                (x, &residual)
            };

            let tree = RegressionTree::fit(
                fit_x,
                n_features,
                fit_r,
                &params.tree,
                params.seed.wrapping_add(round as u64 + 1),
            );
            let update = tree.predict(x);
            for (p, u) in pred.iter_mut().zip(&update) {
                *p += params.learning_rate * u;
            }
            trees.push(tree);
        }

        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
            n_features,
        }
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for Gbdt {
    fn predict(&self, x: &[f64], n_features: usize) -> Vec<f64> {
        assert_eq!(n_features, self.n_features, "feature count mismatch");
        let n = x.len() / n_features;
        let mut out = vec![self.base; n];
        for tree in &self.trees {
            for (o, u) in out.iter_mut().zip(tree.predict(x)) {
                *o += self.learning_rate * u;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize) -> (Vec<f64>, Vec<f64>) {
        // Nonlinear target: y = sin(x0 * 3) * 5 + x1^2, deterministic grid.
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let a = (i as f64 / n as f64) * 2.0 - 1.0;
            let b = ((i * 7 % n) as f64 / n as f64) * 2.0 - 1.0;
            x.push(a);
            x.push(b);
            y.push((a * 3.0).sin() * 5.0 + b * b);
        }
        (x, y)
    }

    fn mse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
    }

    #[test]
    fn boosting_reduces_training_error() {
        let (x, y) = friedman_like(500);
        let small = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                n_rounds: 1,
                ..Default::default()
            },
        );
        let large = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                n_rounds: 80,
                ..Default::default()
            },
        );
        let e1 = mse(&small.predict(&x, 2), &y);
        let e80 = mse(&large.predict(&x, 2), &y);
        assert!(e80 < e1 * 0.3, "80 rounds {e80} vs 1 round {e1}");
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let (x, y) = friedman_like(800);
        let m = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                n_rounds: 100,
                learning_rate: 0.2,
                tree: TreeParams {
                    max_depth: 4,
                    min_samples_split: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let var = {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64
        };
        let err = mse(&m.predict(&x, 2), &y);
        assert!(err < var * 0.05, "mse {err} vs var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = friedman_like(300);
        let params = GbdtParams {
            bagging_fraction: 0.7,
            seed: 9,
            ..Default::default()
        };
        let a = Gbdt::fit(&x, 2, &y, &params);
        let b = Gbdt::fit(&x, 2, &y, &params);
        assert_eq!(a.predict(&x, 2), b.predict(&x, 2));
    }

    #[test]
    fn different_hyperparams_give_different_predictions() {
        // The pipeline variants rely on this: only `pred` differs.
        let (x, y) = friedman_like(300);
        let a = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        let b = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                learning_rate: 0.3,
                ..Default::default()
            },
        );
        assert_ne!(a.predict(&x, 2), b.predict(&x, 2));
    }

    #[test]
    fn bagging_still_learns() {
        let (x, y) = friedman_like(500);
        let m = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                n_rounds: 60,
                bagging_fraction: 0.5,
                ..Default::default()
            },
        );
        let var = {
            let mean = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / y.len() as f64
        };
        assert!(mse(&m.predict(&x, 2), &y) < var * 0.3);
    }

    #[test]
    fn zero_rounds_predicts_mean() {
        let (x, y) = friedman_like(100);
        let m = Gbdt::fit(
            &x,
            2,
            &y,
            &GbdtParams {
                n_rounds: 0,
                ..Default::default()
            },
        );
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!(m.predict(&x, 2).iter().all(|&p| (p - mean).abs() < 1e-12));
    }
}
