//! ElasticNet linear regression via cyclic coordinate descent.
//!
//! Minimizes `1/(2n) ||y - Xw - b||² + alpha * (l1_ratio * ||w||_1 +
//! (1 - l1_ratio)/2 * ||w||²)` — the same objective and parameterization as
//! scikit-learn's `ElasticNet`, which the Zillow pipelines P3/P4/P7–P10 use.

use super::Regressor;

/// ElasticNet hyper-parameters and fitted state.
#[derive(Clone, Debug)]
pub struct ElasticNet {
    /// Overall regularization strength.
    pub alpha: f64,
    /// Mix between L1 (1.0) and L2 (0.0).
    pub l1_ratio: f64,
    /// Convergence tolerance on the max coefficient update.
    pub tol: f64,
    /// Whether to standardize features before fitting.
    pub normalize: bool,
    max_iter: usize,
    // Fitted state.
    weights: Vec<f64>,
    intercept: f64,
    feat_mean: Vec<f64>,
    feat_scale: Vec<f64>,
}

impl ElasticNet {
    /// Create an unfitted model.
    pub fn new(alpha: f64, l1_ratio: f64, tol: f64, normalize: bool) -> ElasticNet {
        assert!((0.0..=1.0).contains(&l1_ratio), "l1_ratio in [0,1]");
        ElasticNet {
            alpha,
            l1_ratio,
            tol,
            normalize,
            max_iter: 500,
            weights: Vec::new(),
            intercept: 0.0,
            feat_mean: Vec::new(),
            feat_scale: Vec::new(),
        }
    }

    /// Fitted coefficients (in the original feature space when normalized).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Fit on a row-major `n x p` matrix and target `y`.
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent or `n == 0`.
    #[allow(clippy::needless_range_loop)] // loops mirror the coordinate-descent math
    pub fn fit(&mut self, x: &[f64], n_features: usize, y: &[f64]) {
        let n = y.len();
        assert!(n > 0, "empty training set");
        assert_eq!(x.len(), n * n_features, "x shape mismatch");

        // Column stats for optional standardization.
        let mut mean = vec![0.0; n_features];
        let mut scale = vec![1.0; n_features];
        for row in 0..n {
            for (j, m) in mean.iter_mut().enumerate() {
                *m += x[row * n_features + j];
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        if self.normalize {
            let mut var = vec![0.0; n_features];
            for row in 0..n {
                for j in 0..n_features {
                    let d = x[row * n_features + j] - mean[j];
                    var[j] += d * d;
                }
            }
            for (s, v) in scale.iter_mut().zip(&var) {
                *s = (v / n as f64).sqrt().max(1e-12);
            }
        } else {
            mean.iter_mut().for_each(|m| *m = 0.0);
        }

        // Work in the (optionally) standardized space.
        let std_at = |row: usize, j: usize| (x[row * n_features + j] - mean[j]) / scale[j];

        let y_mean = y.iter().sum::<f64>() / n as f64;
        let mut w = vec![0.0; n_features];
        let mut residual: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Per-feature squared norms (constant across iterations).
        let mut col_sq = vec![0.0; n_features];
        for row in 0..n {
            for (j, c) in col_sq.iter_mut().enumerate() {
                let v = std_at(row, j);
                *c += v * v;
            }
        }

        let l1 = self.alpha * self.l1_ratio * n as f64;
        let l2 = self.alpha * (1.0 - self.l1_ratio) * n as f64;

        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..n_features {
                if col_sq[j] == 0.0 {
                    continue;
                }
                // rho = x_j . (residual + w_j * x_j)
                let mut rho = 0.0;
                for row in 0..n {
                    rho += std_at(row, j) * residual[row];
                }
                rho += w[j] * col_sq[j];
                // Soft threshold.
                let new_w = soft_threshold(rho, l1) / (col_sq[j] + l2);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for row in 0..n {
                        residual[row] -= delta * std_at(row, j);
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        // Fold standardization back into original-space weights.
        let mut weights = vec![0.0; n_features];
        let mut intercept = y_mean;
        for j in 0..n_features {
            weights[j] = w[j] / scale[j];
            intercept -= w[j] * mean[j] / scale[j];
        }
        self.weights = weights;
        self.intercept = intercept;
        self.feat_mean = mean;
        self.feat_scale = scale;
    }
}

#[inline]
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

impl Regressor for ElasticNet {
    fn predict(&self, x: &[f64], n_features: usize) -> Vec<f64> {
        assert_eq!(n_features, self.weights.len(), "feature count mismatch");
        x.chunks_exact(n_features)
            .map(|row| {
                self.intercept
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        // y = 3*x0 - 2*x1 + 1 with deterministic pseudo-noise.
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        let mut state = 11u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..n {
            let a = rnd() * 10.0;
            let b = rnd() * 10.0;
            x.push(a);
            x.push(b);
            y.push(3.0 * a - 2.0 * b + 1.0 + rnd() * 0.01);
        }
        (x, y)
    }

    #[test]
    fn recovers_linear_relationship_with_tiny_alpha() {
        let (x, y) = linear_data(500);
        let mut m = ElasticNet::new(1e-6, 0.5, 1e-8, true);
        m.fit(&x, 2, &y);
        assert!((m.weights()[0] - 3.0).abs() < 0.05, "w0 {}", m.weights()[0]);
        assert!((m.weights()[1] + 2.0).abs() < 0.05, "w1 {}", m.weights()[1]);
        assert!((m.intercept() - 1.0).abs() < 0.1, "b {}", m.intercept());
    }

    #[test]
    fn predictions_match_fit() {
        let (x, y) = linear_data(300);
        let mut m = ElasticNet::new(1e-6, 0.0, 1e-8, true);
        m.fit(&x, 2, &y);
        let preds = m.predict(&x, 2);
        let mse: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.01, "mse {mse}");
    }

    #[test]
    fn strong_l1_zeroes_irrelevant_features() {
        // x1 is pure noise uncorrelated with y.
        let n = 400;
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        let mut state = 3u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..n {
            let a = rnd() * 4.0;
            let noise = rnd() * 4.0;
            x.push(a);
            x.push(noise);
            y.push(2.0 * a);
        }
        let mut m = ElasticNet::new(0.5, 1.0, 1e-8, true);
        m.fit(&x, 2, &y);
        assert_eq!(m.weights()[1], 0.0, "noise feature should be zeroed");
        assert!(m.weights()[0] > 0.5, "signal survives");
    }

    #[test]
    fn constant_feature_is_ignored() {
        let n = 100;
        let mut x = Vec::with_capacity(n * 2);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            x.push(5.0); // constant
            x.push(i as f64);
            y.push(i as f64);
        }
        let mut m = ElasticNet::new(1e-6, 0.5, 1e-8, true);
        m.fit(&x, 2, &y);
        assert_eq!(m.weights()[0], 0.0);
        let preds = m.predict(&x, 2);
        assert!((preds[50] - 50.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_fit() {
        let (x, y) = linear_data(200);
        let mut a = ElasticNet::new(0.01, 0.5, 1e-6, true);
        let mut b = ElasticNet::new(0.01, 0.5, 1e-6, true);
        a.fit(&x, 2, &y);
        b.fit(&x, 2, &y);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.intercept(), b.intercept());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_fit_panics() {
        let mut m = ElasticNet::new(0.1, 0.5, 1e-4, true);
        m.fit(&[], 2, &[]);
    }
}
