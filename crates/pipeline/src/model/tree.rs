//! Depth-limited regression trees (CART-style variance-reduction splits),
//! the weak learner inside the GBDT ensemble.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tree growth hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum examples in a node to consider splitting (LightGBM `min_data`).
    pub min_samples_split: usize,
    /// Fraction of features considered per split (LightGBM `sub_feature`).
    pub feature_fraction: f64,
    /// L2 regularization on leaf values (XGBoost `lambda`).
    pub lambda: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            min_samples_split: 20,
            feature_fraction: 1.0,
            lambda: 1.0,
        }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree stored as a flat arena of nodes.
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit a tree on row-major `x` (`n x p`) against residual targets `y`.
    /// `seed` drives the per-split feature subsampling.
    pub fn fit(
        x: &[f64],
        n_features: usize,
        y: &[f64],
        params: &TreeParams,
        seed: u64,
    ) -> RegressionTree {
        let n = y.len();
        assert_eq!(x.len(), n * n_features, "x shape mismatch");
        assert!(n > 0, "empty training set");
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features,
        };
        let indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        tree.grow(x, y, indices, params, 0, &mut rng);
        tree
    }

    fn leaf_value(y: &[f64], idx: &[usize], lambda: f64) -> f64 {
        // Regularized mean, as in XGBoost's leaf weight: sum(g) / (n + lambda).
        let sum: f64 = idx.iter().map(|&i| y[i]).sum();
        sum / (idx.len() as f64 + lambda)
    }

    fn grow(
        &mut self,
        x: &[f64],
        y: &[f64],
        idx: Vec<usize>,
        params: &TreeParams,
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let make_leaf = |tree: &mut RegressionTree, idx: &[usize]| {
            tree.nodes.push(Node::Leaf {
                value: Self::leaf_value(y, idx, params.lambda),
            });
            tree.nodes.len() - 1
        };

        if depth >= params.max_depth || idx.len() < params.min_samples_split {
            return make_leaf(self, &idx);
        }

        // Candidate features under feature_fraction subsampling.
        let mut feats: Vec<usize> = (0..self.n_features).collect();
        feats.shuffle(rng);
        let k = ((self.n_features as f64 * params.feature_fraction).ceil() as usize)
            .clamp(1, self.n_features);
        feats.truncate(k);

        // Best variance-reduction split across candidate features.
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let n = idx.len() as f64;
        let parent_score = total_sum * total_sum / n;

        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in &feats {
            // Sort indices by the feature value; scan split points.
            let mut order: Vec<usize> = idx.clone();
            // total_cmp places NaN (missing) values last, so they fall into
            // the right branch of any split — matching predict_row's routing.
            order.sort_by(|&a, &b| {
                x[a * self.n_features + f].total_cmp(&x[b * self.n_features + f])
            });
            let mut left_sum = 0.0;
            let mut left_n = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_sum += y[i];
                left_n += 1.0;
                let cur = x[i * self.n_features + f];
                let next = x[order[w + 1] * self.n_features + f];
                if cur == next || !cur.is_finite() || !next.is_finite() {
                    continue; // no split between equal or non-finite values
                }
                let right_sum = total_sum - left_sum;
                let right_n = n - left_n;
                let score = left_sum * left_sum / (left_n + params.lambda)
                    + right_sum * right_sum / (right_n + params.lambda);
                let gain = score - parent_score;
                if best.map_or(gain > 1e-12, |(g, _, _)| gain > g) {
                    best = Some((gain, f, (cur + next) / 2.0));
                }
            }
        }
        let _ = total_sq;

        let Some((_, feature, threshold)) = best else {
            return make_leaf(self, &idx);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x[i * self.n_features + feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            let all: Vec<usize> = left_idx.into_iter().chain(right_idx).collect();
            return make_leaf(self, &all);
        }

        // Reserve our slot, then grow children.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
        let left = self.grow(x, y, left_idx, params, depth + 1, rng);
        let right = self.grow(x, y, right_idx, params, depth + 1, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Predict a single row (`row.len() == n_features`). NaN feature values
    /// follow the right branch (missing goes with "greater").
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        // The root is the first node pushed at depth 0 — which is the *last*
        // slot reserved... actually the root slot is index 0 only when the
        // root is a leaf; otherwise the root's slot is also 0 because grow()
        // reserves before recursing. Either way index 0 is the root.
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row[*feature];
                    at = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predict every row of a row-major matrix.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        x.chunks_exact(self.n_features)
            .map(|r| self.predict_row(r))
            .collect()
    }

    /// Number of nodes in the tree.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        // y = 10 if x0 > 0.5 else -10, exactly learnable by one split.
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let v = i as f64 / n as f64;
            x.push(v);
            y.push(if v > 0.5 { 10.0 } else { -10.0 });
        }
        (x, y)
    }

    #[test]
    fn learns_a_step_function() {
        let (x, y) = step_data(200);
        let params = TreeParams {
            max_depth: 2,
            min_samples_split: 4,
            lambda: 0.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, 1, &y, &params, 0);
        assert!((tree.predict_row(&[0.2]) + 10.0).abs() < 0.5);
        assert!((tree.predict_row(&[0.9]) - 10.0).abs() < 0.5);
    }

    #[test]
    fn depth_zero_is_single_leaf_mean() {
        let (x, y) = step_data(100);
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, 1, &y, &params, 0);
        assert_eq!(tree.n_nodes(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict_row(&[0.3]) - mean).abs() < 1e-9);
    }

    #[test]
    fn min_samples_split_limits_growth() {
        let (x, y) = step_data(10);
        let params = TreeParams {
            max_depth: 10,
            min_samples_split: 100, // never split
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, 1, &y, &params, 0);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 5 iff x0 > 0 and x1 > 0, needs depth 2.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in -10..10 {
            for j in -10..10 {
                x.push(i as f64 + 0.5);
                x.push(j as f64 + 0.5);
                y.push(if i >= 0 && j >= 0 { 5.0 } else { 0.0 });
            }
        }
        let params = TreeParams {
            max_depth: 2,
            min_samples_split: 2,
            lambda: 0.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, 2, &y, &params, 1);
        assert!((tree.predict_row(&[3.0, 3.0]) - 5.0).abs() < 0.5);
        assert!(tree.predict_row(&[-3.0, 3.0]).abs() < 0.5);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let (x, y) = step_data(20);
        let p0 = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..Default::default()
        };
        let p_big = TreeParams {
            max_depth: 0,
            lambda: 100.0,
            ..Default::default()
        };
        let t0 = RegressionTree::fit(&x, 1, &y, &p0, 0);
        let tb = RegressionTree::fit(&x, 1, &y, &p_big, 0);
        assert!(tb.predict_row(&[0.1]).abs() <= t0.predict_row(&[0.1]).abs() + 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = step_data(300);
        let params = TreeParams {
            feature_fraction: 0.5,
            ..Default::default()
        };
        let a = RegressionTree::fit(&x, 1, &y, &params, 42);
        let b = RegressionTree::fit(&x, 1, &y, &params, 42);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn nan_features_route_right() {
        let (x, y) = step_data(200);
        let params = TreeParams {
            max_depth: 2,
            min_samples_split: 4,
            lambda: 0.0,
            ..Default::default()
        };
        let tree = RegressionTree::fit(&x, 1, &y, &params, 0);
        // NaN <= t is false, so NaN follows the right (">") branch.
        let nan_pred = tree.predict_row(&[f64::NAN]);
        let right_pred = tree.predict_row(&[0.99]);
        assert_eq!(nan_pred, right_pred);
    }
}
