//! Trainable regression models for the TRAD pipelines.
//!
//! The Zillow scripts use XGBoost, LightGBM, and scikit-learn's ElasticNet.
//! We implement the two algorithm families from scratch:
//! [`elasticnet::ElasticNet`] (coordinate descent) and [`gbdt::Gbdt`]
//! (gradient-boosted regression trees) — the latter is instantiated with
//! XGBoost-flavoured and LightGBM-flavoured hyper-parameter surfaces by the
//! pipeline templates.

pub mod elasticnet;
pub mod gbdt;
pub mod tree;

pub use elasticnet::ElasticNet;
pub use gbdt::{Gbdt, GbdtParams};
pub use tree::{RegressionTree, TreeParams};

/// A fitted regression model that predicts from a row-major feature matrix.
pub trait Regressor {
    /// Predict one value per row of `x` (`n_rows x n_features`, row-major).
    fn predict(&self, x: &[f64], n_features: usize) -> Vec<f64>;
}
