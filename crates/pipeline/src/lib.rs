//! Traditional ML pipeline substrate (TRAD models, Sec 2.1 / 7.1.1).
//!
//! The paper evaluates MISTIQUE on 50 scikit-learn pipelines derived from
//! Kaggle Zestimate scripts. scikit-learn does not exist here, so this crate
//! implements the whole substrate from scratch:
//!
//! - [`data`]: a deterministic synthetic generator for the three Zillow
//!   tables (properties, train, test) with the same column shapes,
//! - [`stage`]: the transformer vocabulary of Table 4 (ReadCSV, Join,
//!   SelectColumn, DropColumns, FillNA, Avg, OneHotEncoding,
//!   GetConstructionRecency, ComputeNeighborhood, IsResidential,
//!   TrainTestSplit, Train*, Predict),
//! - [`model`]: trainable models — ElasticNet via coordinate descent and a
//!   gradient-boosted decision-tree ensemble standing in for
//!   XGBoost/LightGBM,
//! - [`pipeline`]: the executable pipeline: an ordered list of stages, each
//!   emitting one intermediate dataframe,
//! - [`templates`]: the ten pipeline templates P1–P10 of Appendix E, each
//!   instantiated with five hyper-parameter variants = 50 pipelines,
//! - [`spec`]: a serde-based pipeline specification standing in for the
//!   paper's YAML format.
//!
//! Every stage is deterministic given the pipeline's seed, so re-running a
//! pipeline reproduces byte-identical intermediates — the property both
//! dedup and the read-vs-rerun cost model rely on.

pub mod csv;
pub mod data;
pub mod model;
pub mod pipeline;
pub mod spec;
pub mod stage;
pub mod templates;

pub use data::ZillowData;
pub use pipeline::{Pipeline, PipelineContext, RunRecord};
pub use spec::PipelineSpec;
pub use stage::Stage;
