//! Synthetic Zillow-style dataset generator.
//!
//! The Zestimate competition provides three CSVs: `properties` (home
//! attributes), `train` (parcel id, sale date, logerror target), and `test`
//! (parcel id, candidate sale dates). We generate deterministic synthetic
//! equivalents with the same column shapes: numeric size/area features,
//! categorical region and type codes, missing values, and a target that is a
//! noisy function of the features (so models have signal to learn).

use mistique_dataframe::{Column, ColumnData, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three Zillow tables, held both as parsed frames (for reference and
/// tests) and as CSV text — `ReadCSV` stages parse the text on every run so
/// that re-running a pipeline pays a realistic ingest cost (Eq 2's
/// `t_read_xformer_input`).
#[derive(Clone, Debug)]
pub struct ZillowData {
    /// Home attributes keyed by `parcel_id`.
    pub properties: DataFrame,
    /// Training examples: `parcel_id`, `sale_month`, `logerror`.
    pub train: DataFrame,
    /// Test examples: `parcel_id`, `sale_month`.
    pub test: DataFrame,
    /// CSV text of `properties`.
    pub properties_csv: String,
    /// CSV text of `train`.
    pub train_csv: String,
    /// CSV text of `test`.
    pub test_csv: String,
    /// The `(n_properties, seed)` this dataset was generated from, when it
    /// came from [`ZillowData::generate`] — the workload audit journal
    /// records it so `mistique replay` can regenerate the identical inputs.
    pub provenance: Option<(usize, u64)>,
}

/// Region names used for the categorical `region` column.
pub const REGIONS: [&str; 6] = ["LA", "SF", "SD", "OC", "SEA", "BOS"];
/// Property types used for the categorical `prop_type` column.
pub const PROP_TYPES: [&str; 4] = ["house", "condo", "victorian", "commercial"];

/// Fraction of property rows with a missing (`NaN`) `lot_size`.
pub const MISSING_FRAC: f64 = 0.08;

impl ZillowData {
    /// Generate the dataset deterministically from a seed.
    ///
    /// `n_properties` rows are generated; the train table references ~70% of
    /// them and the test table the rest.
    pub fn generate(n_properties: usize, seed: u64) -> ZillowData {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n_properties;

        let mut bedrooms = Vec::with_capacity(n);
        let mut bathrooms = Vec::with_capacity(n);
        let mut sqft = Vec::with_capacity(n);
        let mut lot_size = Vec::with_capacity(n);
        let mut year_built = Vec::with_capacity(n);
        let mut tax_value = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let mut prop_type = Vec::with_capacity(n);

        for _ in 0..n {
            let beds = rng.gen_range(1..=6) as f64;
            let baths = (rng.gen_range(2..=8) as f64) / 2.0;
            let area = 400.0 + beds * 350.0 + rng.gen_range(0.0..800.0);
            let lot = if rng.gen_bool(MISSING_FRAC) {
                f64::NAN
            } else {
                area * rng.gen_range(1.2..4.0)
            };
            let year = rng.gen_range(1890..=2020) as f64;
            let reg = REGIONS[rng.gen_range(0..REGIONS.len())];
            let ptype = PROP_TYPES[rng.gen_range(0..PROP_TYPES.len())];
            // Tax value correlates with area, recency, and region.
            let region_mult = 1.0 + (REGIONS.iter().position(|&r| r == reg).unwrap() as f64) * 0.15;
            let value = area * 300.0 * region_mult * (1.0 + (year - 1890.0) / 260.0)
                + rng.gen_range(-20_000.0..20_000.0);

            bedrooms.push(beds);
            bathrooms.push(baths);
            sqft.push(area);
            lot_size.push(lot);
            year_built.push(year);
            tax_value.push(value);
            region.push(reg);
            prop_type.push(ptype);
        }

        let properties = DataFrame::from_columns(vec![
            Column::i64("parcel_id", (0..n as i64).collect()),
            Column::f64("bedrooms", bedrooms.clone()),
            Column::f64("bathrooms", bathrooms),
            Column::f64("sqft", sqft.clone()),
            Column::f64("lot_size", lot_size),
            Column::f64("year_built", year_built.clone()),
            Column::f64("tax_value", tax_value.clone()),
            Column::new("region", ColumnData::cat_from_strings(&region)),
            Column::new("prop_type", ColumnData::cat_from_strings(&prop_type)),
        ]);

        // Train rows: ~70% of parcels, with a synthetic logerror target that
        // depends on features + noise (so ElasticNet/GBDT can fit something).
        let n_train = (n * 7) / 10;
        let mut train_ids = Vec::with_capacity(n_train);
        let mut train_month = Vec::with_capacity(n_train);
        let mut logerror = Vec::with_capacity(n_train);
        for pid in 0..n_train {
            let month = rng.gen_range(1..=12) as f64;
            let area = sqft[pid];
            let age = 2017.0 - year_built[pid];
            // Zestimate error: larger for old homes and extreme sizes.
            let signal = 0.02 * (age / 100.0)
                + 0.00001 * (area - 1800.0).abs() / 100.0
                + 0.005 * (month - 6.0).abs() / 6.0;
            let noise = rng.gen_range(-0.05..0.05);
            train_ids.push(pid as i64);
            train_month.push(month);
            logerror.push(signal + noise);
        }
        let train = DataFrame::from_columns(vec![
            Column::i64("parcel_id", train_ids),
            Column::f64("sale_month", train_month),
            Column::f64("logerror", logerror),
        ]);

        // Test rows: remaining parcels with a candidate sale month.
        let mut test_ids = Vec::new();
        let mut test_month = Vec::new();
        for pid in n_train..n {
            test_ids.push(pid as i64);
            test_month.push(rng.gen_range(1..=12) as f64);
        }
        let test = DataFrame::from_columns(vec![
            Column::i64("parcel_id", test_ids),
            Column::f64("sale_month", test_month),
        ]);

        let properties_csv = crate::csv::frame_to_csv(&properties);
        let train_csv = crate::csv::frame_to_csv(&train);
        let test_csv = crate::csv::frame_to_csv(&test);
        ZillowData {
            properties,
            train,
            test,
            properties_csv,
            train_csv,
            test_csv,
            provenance: Some((n, seed)),
        }
    }

    /// The CSV text backing a table.
    pub fn csv_of(&self, table: crate::stage::Table) -> &str {
        match table {
            crate::stage::Table::Properties => &self.properties_csv,
            crate::stage::Table::Train => &self.train_csv,
            crate::stage::Table::Test => &self.test_csv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = ZillowData::generate(500, 7);
        let b = ZillowData::generate(500, 7);
        assert_eq!(a.properties, b.properties);
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seed_differs() {
        let a = ZillowData::generate(500, 7);
        let b = ZillowData::generate(500, 8);
        assert_ne!(a.properties, b.properties);
    }

    #[test]
    fn shapes_are_consistent() {
        let d = ZillowData::generate(1000, 1);
        assert_eq!(d.properties.n_rows(), 1000);
        assert_eq!(d.properties.n_cols(), 9);
        assert_eq!(d.train.n_rows(), 700);
        assert_eq!(d.test.n_rows(), 300);
        assert!(d.properties.column("region").is_some());
    }

    #[test]
    fn lot_size_has_missing_values() {
        let d = ZillowData::generate(2000, 3);
        let lots = d.properties.column("lot_size").unwrap().data.to_f64();
        let missing = lots.iter().filter(|v| v.is_nan()).count();
        let frac = missing as f64 / lots.len() as f64;
        assert!((0.04..0.13).contains(&frac), "missing fraction {frac}");
    }

    #[test]
    fn target_correlates_with_age() {
        let d = ZillowData::generate(4000, 5);
        // Join logerror back to year_built and check the designed signal.
        let years = d.properties.column("year_built").unwrap().data.to_f64();
        let ids = d.train.column("parcel_id").unwrap().data.to_f64();
        let errs = d.train.column("logerror").unwrap().data.to_f64();
        let (mut old_sum, mut old_n, mut new_sum, mut new_n) = (0.0, 0, 0.0, 0);
        for (id, e) in ids.iter().zip(&errs) {
            let y = years[*id as usize];
            if y < 1930.0 {
                old_sum += e;
                old_n += 1;
            } else if y > 1990.0 {
                new_sum += e;
                new_n += 1;
            }
        }
        assert!(
            old_sum / old_n as f64 > new_sum / new_n as f64,
            "old homes have higher error"
        );
    }
}
