//! The transformer vocabulary of the Zillow pipelines (Table 4).
//!
//! Every stage consumes named frames from the [`crate::pipeline::PipelineContext`]
//! and emits exactly one intermediate dataframe — the unit MISTIQUE logs.

use std::collections::HashMap;

use mistique_dataframe::{Column, ColumnData, DataFrame};

use crate::model::{ElasticNet, Gbdt, GbdtParams, Regressor, TreeParams};
use crate::pipeline::{FittedModel, PipelineContext};

/// Which synthetic Zillow table a `ReadCsv` stage loads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Table {
    /// Home attributes.
    Properties,
    /// Training rows with the `logerror` target.
    Train,
    /// Test rows.
    Test,
}

impl Table {
    /// Conventional frame name for the table.
    pub fn frame_name(&self) -> &'static str {
        match self {
            Table::Properties => "properties",
            Table::Train => "train",
            Table::Test => "test",
        }
    }
}

/// Which boosted-tree hyper-parameter surface a GBDT train stage exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum GbdtFlavor {
    /// XGBoost-style: `eta`, `lambda`, `alpha`, `max_depth`.
    Xgboost,
    /// LightGBM-style: `learning_rate`, `sub_feature`, `min_data`,
    /// `bagging_fraction`.
    Lightgbm,
}

/// One pipeline stage. Executing a stage mutates the context (adds frames or
/// models) and returns the stage's intermediate dataframe.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Stage {
    /// Load a source table into its conventional frame.
    ReadCsv {
        /// The table to load.
        table: Table,
    },
    /// One-hot encode a categorical column in place.
    OneHot {
        /// Frame to transform.
        frame: String,
        /// Categorical column name.
        column: String,
    },
    /// Replace NaN values in every float column with the column mean.
    FillNa {
        /// Frame to transform.
        frame: String,
    },
    /// Feature engineering: add `avg_room_size = sqft / bedrooms`.
    AvgFeature {
        /// Frame to transform.
        frame: String,
    },
    /// Feature engineering: add `recency = 2017 - year_built`.
    ConstructionRecency {
        /// Frame to transform.
        frame: String,
    },
    /// Feature engineering: add a coarse `neighborhood` code from region and
    /// a tax-value bin of width `granularity` dollars.
    Neighborhood {
        /// Frame to transform.
        frame: String,
    },
    /// Feature engineering: add `is_residential` from `prop_type`.
    IsResidential {
        /// Frame to transform.
        frame: String,
    },
    /// Inner-join two frames on an i64 key column.
    Join {
        /// Left frame (row order preserved).
        left: String,
        /// Right frame.
        right: String,
        /// Key column present in both.
        on: String,
        /// Name of the output frame.
        out: String,
    },
    /// Project a single column into a new one-column frame.
    SelectColumn {
        /// Source frame.
        frame: String,
        /// Column to project.
        column: String,
        /// Name of the output frame.
        out: String,
    },
    /// Copy a frame without the listed columns.
    DropColumns {
        /// Source frame.
        frame: String,
        /// Columns to drop (missing names are ignored).
        columns: Vec<String>,
        /// Name of the output frame.
        out: String,
    },
    /// Deterministically split a frame into `<frame>_fit` / `<frame>_holdout`.
    TrainTestSplit {
        /// Source frame.
        frame: String,
        /// Fraction of rows in the fit part.
        frac: f64,
    },
    /// Fit an ElasticNet on a frame's features against `y_col`.
    /// Hyper-parameters: `alpha`, `l1_ratio`, `tol`, `normalize`.
    TrainElasticNet {
        /// Frame containing features and the target column.
        frame: String,
        /// Target column name.
        y_col: String,
        /// Name under which the fitted model is registered.
        name: String,
    },
    /// Fit a boosted-tree model on a frame's features against `y_col`.
    TrainGbdt {
        /// Frame containing features and the target column.
        frame: String,
        /// Target column name.
        y_col: String,
        /// Name under which the fitted model is registered.
        name: String,
        /// Hyper-parameter surface.
        flavor: GbdtFlavor,
    },
    /// Predict with a registered model over a frame's features, emitting a
    /// frame with `parcel_id` (when present) and `pred`.
    Predict {
        /// Registered model name. `"a+b"` blends two models with the
        /// `xgb_weight` / `lgbm_weight` hyper-parameters (P5).
        model: String,
        /// Frame to predict over.
        frame: String,
        /// Name of the output frame.
        out: String,
    },
}

/// Columns never used as model features.
const NON_FEATURES: [&str; 4] = ["parcel_id", "logerror", "pred", "row_id"];

/// Extract the numeric feature matrix of a frame (row-major) and the feature
/// names, excluding ids/targets/predictions and categorical columns.
pub fn feature_matrix(frame: &DataFrame) -> (Vec<f64>, usize, Vec<String>) {
    let feats: Vec<&Column> = frame
        .columns()
        .iter()
        .filter(|c| {
            !NON_FEATURES.contains(&c.name.as_str()) && !matches!(c.data, ColumnData::Cat { .. })
        })
        .collect();
    let names: Vec<String> = feats.iter().map(|c| c.name.clone()).collect();
    let n_features = feats.len();
    let n_rows = frame.n_rows();
    let cols: Vec<Vec<f64>> = feats.iter().map(|c| c.data.to_f64()).collect();
    let mut x = Vec::with_capacity(n_rows * n_features);
    for r in 0..n_rows {
        for col in &cols {
            x.push(col[r]);
        }
    }
    (x, n_features, names)
}

fn hyper(ctx: &PipelineContext, key: &str, default: f64) -> f64 {
    ctx.hyper.get(key).copied().unwrap_or(default)
}

impl Stage {
    /// A short name identifying the stage kind (used in intermediate ids).
    pub fn kind(&self) -> &'static str {
        match self {
            Stage::ReadCsv { .. } => "ReadCSV",
            Stage::OneHot { .. } => "OneHotEncoding",
            Stage::FillNa { .. } => "FillNA",
            Stage::AvgFeature { .. } => "Avg",
            Stage::ConstructionRecency { .. } => "GetConstructionRecency",
            Stage::Neighborhood { .. } => "ComputeNeighborhood",
            Stage::IsResidential { .. } => "IsResidential",
            Stage::Join { .. } => "Join",
            Stage::SelectColumn { .. } => "SelectColumn",
            Stage::DropColumns { .. } => "DropColumns",
            Stage::TrainTestSplit { .. } => "TrainTestSplit",
            Stage::TrainElasticNet { .. } => "TrainElasticNet",
            Stage::TrainGbdt {
                flavor: GbdtFlavor::Xgboost,
                ..
            } => "TrainXGBoost",
            Stage::TrainGbdt {
                flavor: GbdtFlavor::Lightgbm,
                ..
            } => "TrainLightGBM",
            Stage::Predict { .. } => "Predict",
        }
    }

    /// Execute the stage, returning its intermediate dataframe.
    ///
    /// # Panics
    /// Panics when a referenced frame, column, or model is missing — pipeline
    /// construction errors, not runtime conditions.
    pub fn execute(&self, ctx: &mut PipelineContext) -> DataFrame {
        match self {
            Stage::ReadCsv { table } => {
                // Parse the CSV text every run: re-running a pipeline must
                // pay the real ingest cost, exactly as scikit-learn's
                // read_csv would.
                let frame = crate::csv::csv_to_frame(ctx.data.csv_of(*table));
                ctx.frames
                    .insert(table.frame_name().to_string(), frame.clone());
                frame
            }

            Stage::OneHot { frame, column } => {
                let mut df = ctx.take_frame(frame);
                let col = df
                    .drop_column(column)
                    .unwrap_or_else(|| panic!("no column {column}"));
                let (codes, dict) = match col.data {
                    ColumnData::Cat { codes, dict } => (codes, dict),
                    other => panic!("OneHot on non-categorical column ({:?})", other.dtype()),
                };
                for (k, value) in dict.iter().enumerate() {
                    let indicator: Vec<f64> = codes
                        .iter()
                        .map(|&c| if c as usize == k { 1.0 } else { 0.0 })
                        .collect();
                    df.push_column(Column::f64(format!("{column}={value}"), indicator));
                }
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::FillNa { frame } => {
                let mut df = ctx.take_frame(frame);
                let names: Vec<String> = df.column_names().iter().map(|s| s.to_string()).collect();
                for name in names {
                    let col = df.column(&name).unwrap();
                    if let ColumnData::F64(values) = &col.data {
                        if values.iter().any(|v| v.is_nan()) {
                            let present: Vec<f64> =
                                values.iter().copied().filter(|v| !v.is_nan()).collect();
                            let mean = if present.is_empty() {
                                0.0
                            } else {
                                present.iter().sum::<f64>() / present.len() as f64
                            };
                            let filled: Vec<f64> = values
                                .iter()
                                .map(|&v| if v.is_nan() { mean } else { v })
                                .collect();
                            df.drop_column(&name);
                            df.push_column(Column::f64(name.clone(), filled));
                        }
                    }
                }
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::AvgFeature { frame } => {
                let mut df = ctx.take_frame(frame);
                let sqft = df.column("sqft").expect("sqft column").data.to_f64();
                let beds = df
                    .column("bedrooms")
                    .expect("bedrooms column")
                    .data
                    .to_f64();
                let avg: Vec<f64> = sqft
                    .iter()
                    .zip(&beds)
                    .map(|(s, b)| if *b > 0.0 { s / b } else { *s })
                    .collect();
                df.push_column(Column::f64("avg_room_size", avg));
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::ConstructionRecency { frame } => {
                let mut df = ctx.take_frame(frame);
                let years = df
                    .column("year_built")
                    .expect("year_built column")
                    .data
                    .to_f64();
                let rec: Vec<f64> = years.iter().map(|y| 2017.0 - y).collect();
                df.push_column(Column::f64("recency", rec));
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::Neighborhood { frame } => {
                let gran = hyper(ctx, "neighborhood_granularity", 250_000.0);
                let mut df = ctx.take_frame(frame);
                let region = match &df.column("region").expect("region column").data {
                    ColumnData::Cat { codes, .. } => codes.clone(),
                    _ => panic!("region must be categorical"),
                };
                let tax = df
                    .column("tax_value")
                    .expect("tax_value column")
                    .data
                    .to_f64();
                let hood: Vec<f64> = region
                    .iter()
                    .zip(&tax)
                    .map(|(r, t)| (*r as f64) * 100.0 + (t / gran).floor())
                    .collect();
                df.push_column(Column::f64("neighborhood", hood));
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::IsResidential { frame } => {
                let mut df = ctx.take_frame(frame);
                let flags: Vec<f64> = {
                    let col = df.column("prop_type").expect("prop_type column");
                    (0..df.n_rows())
                        .map(|r| {
                            let v = col.data.cat_value(r).unwrap_or("");
                            if v == "commercial" {
                                0.0
                            } else {
                                1.0
                            }
                        })
                        .collect()
                };
                df.push_column(Column::f64("is_residential", flags));
                ctx.frames.insert(frame.clone(), df.clone());
                df
            }

            Stage::Join {
                left,
                right,
                on,
                out,
            } => {
                let l = ctx.frame(left).clone();
                let r = ctx.frame(right).clone();
                let joined = inner_join(&l, &r, on);
                ctx.frames.insert(out.clone(), joined.clone());
                joined
            }

            Stage::SelectColumn { frame, column, out } => {
                let df = ctx.frame(frame);
                let sel = df.select(&[column.as_str()]);
                ctx.frames.insert(out.clone(), sel.clone());
                sel
            }

            Stage::DropColumns {
                frame,
                columns,
                out,
            } => {
                let mut df = ctx.frame(frame).clone();
                for c in columns {
                    df.drop_column(c);
                }
                ctx.frames.insert(out.clone(), df.clone());
                df
            }

            Stage::TrainTestSplit { frame, frac } => {
                let df = ctx.frame(frame).clone();
                let n_fit = ((df.n_rows() as f64) * frac).round() as usize;
                let fit = df.slice_rows(0, n_fit);
                let holdout = df.slice_rows(n_fit, df.n_rows());
                ctx.frames.insert(format!("{frame}_fit"), fit.clone());
                ctx.frames.insert(format!("{frame}_holdout"), holdout);
                fit
            }

            Stage::TrainElasticNet { frame, y_col, name } => {
                let df = ctx.frame(frame).clone();
                let (x, p, _) = feature_matrix(&df);
                let y = df.column(y_col).expect("target column").data.to_f64();
                let mut m = ElasticNet::new(
                    hyper(ctx, "alpha", 0.001),
                    hyper(ctx, "l1_ratio", 0.5),
                    hyper(ctx, "tol", 1e-4),
                    hyper(ctx, "normalize", 1.0) != 0.0,
                );
                m.fit(&x, p, &y);
                let preds = m.predict(&x, p);
                ctx.models.insert(name.clone(), FittedModel::Elastic(m));
                let out = DataFrame::from_columns(vec![Column::f64("pred_train", preds)]);
                ctx.frames.insert(format!("{name}_train_pred"), out.clone());
                out
            }

            Stage::TrainGbdt {
                frame,
                y_col,
                name,
                flavor,
            } => {
                let df = ctx.frame(frame).clone();
                let (x, p, _) = feature_matrix(&df);
                let y = df.column(y_col).expect("target column").data.to_f64();
                let params = match flavor {
                    GbdtFlavor::Xgboost => GbdtParams {
                        n_rounds: hyper(ctx, "n_rounds", 25.0) as usize,
                        learning_rate: hyper(ctx, "eta", 0.1),
                        tree: TreeParams {
                            max_depth: hyper(ctx, "max_depth", 4.0) as usize,
                            min_samples_split: 20,
                            feature_fraction: 1.0,
                            lambda: hyper(ctx, "lambda", 1.0),
                        },
                        bagging_fraction: 1.0,
                        seed: ctx.seed,
                    },
                    GbdtFlavor::Lightgbm => GbdtParams {
                        n_rounds: hyper(ctx, "n_rounds", 25.0) as usize,
                        learning_rate: hyper(ctx, "learning_rate", 0.1),
                        tree: TreeParams {
                            max_depth: hyper(ctx, "max_depth", 5.0) as usize,
                            min_samples_split: hyper(ctx, "min_data", 20.0) as usize,
                            feature_fraction: hyper(ctx, "sub_feature", 0.8),
                            lambda: 1.0,
                        },
                        bagging_fraction: hyper(ctx, "bagging_fraction", 1.0),
                        seed: ctx.seed,
                    },
                };
                let m = Gbdt::fit(&x, p, &y, &params);
                let preds = m.predict(&x, p);
                ctx.models.insert(name.clone(), FittedModel::Gbdt(m));
                let out = DataFrame::from_columns(vec![Column::f64("pred_train", preds)]);
                ctx.frames.insert(format!("{name}_train_pred"), out.clone());
                out
            }

            Stage::Predict { model, frame, out } => {
                let df = ctx.frame(frame).clone();
                let (x, p, _) = feature_matrix(&df);
                let preds: Vec<f64> = if let Some((a, b)) = model.split_once('+') {
                    let wa = hyper(ctx, "xgb_weight", 0.5);
                    let wb = hyper(ctx, "lgbm_weight", 0.5);
                    let pa = ctx.model(a).predict(&x, p);
                    let pb = ctx.model(b).predict(&x, p);
                    let norm = (wa + wb).max(1e-12);
                    pa.iter()
                        .zip(&pb)
                        .map(|(u, v)| (wa * u + wb * v) / norm)
                        .collect()
                } else {
                    ctx.model(model).predict(&x, p)
                };
                let mut cols = Vec::new();
                if let Some(ids) = df.column("parcel_id") {
                    cols.push(ids.clone());
                }
                cols.push(Column::f64("pred", preds));
                let res = DataFrame::from_columns(cols);
                ctx.frames.insert(out.clone(), res.clone());
                res
            }
        }
    }
}

/// Inner hash join preserving the left frame's row order. Key columns must be
/// i64; right-side duplicate keys keep the first match (sufficient for the
/// Zillow schema where `parcel_id` is unique).
pub fn inner_join(left: &DataFrame, right: &DataFrame, on: &str) -> DataFrame {
    let lkeys = match &left
        .column(on)
        .unwrap_or_else(|| panic!("no join key {on} in left"))
        .data
    {
        ColumnData::I64(v) => v.clone(),
        other => panic!("join key must be i64, got {:?}", other.dtype()),
    };
    let rkeys = match &right
        .column(on)
        .unwrap_or_else(|| panic!("no join key {on} in right"))
        .data
    {
        ColumnData::I64(v) => v.clone(),
        other => panic!("join key must be i64, got {:?}", other.dtype()),
    };
    let mut index: HashMap<i64, usize> = HashMap::with_capacity(rkeys.len());
    for (i, &k) in rkeys.iter().enumerate() {
        index.entry(k).or_insert(i);
    }
    let mut lrows = Vec::new();
    let mut rrows = Vec::new();
    for (i, k) in lkeys.iter().enumerate() {
        if let Some(&j) = index.get(k) {
            lrows.push(i);
            rrows.push(j);
        }
    }
    let mut out = left.gather_rows(&lrows);
    let rsel = right.gather_rows(&rrows);
    for col in rsel.columns() {
        if col.name != on && out.column(&col.name).is_none() {
            out.push_column(col.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ZillowData;

    fn ctx() -> PipelineContext {
        PipelineContext::new(ZillowData::generate(300, 1), HashMap::new(), 7)
    }

    #[test]
    fn read_csv_loads_tables() {
        let mut c = ctx();
        let out = Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        assert_eq!(out.n_rows(), 300);
        assert!(c.frames.contains_key("properties"));
    }

    #[test]
    fn one_hot_expands_categories() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let before = c.frame("properties").n_cols();
        let out = Stage::OneHot {
            frame: "properties".into(),
            column: "region".into(),
        }
        .execute(&mut c);
        // region (1 col) replaced by one indicator per region value.
        assert!(out.n_cols() > before);
        assert!(out.column("region").is_none());
        assert!(out.column("region=LA").is_some());
        // Indicators sum to 1 per row.
        let la = out.column("region=LA").unwrap().data.to_f64();
        let sf = out.column("region=SF").unwrap().data.to_f64();
        assert!(la.iter().zip(&sf).all(|(a, b)| a + b <= 1.0 + 1e-12));
    }

    #[test]
    fn fillna_removes_nans() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let out = Stage::FillNa {
            frame: "properties".into(),
        }
        .execute(&mut c);
        let lots = out.column("lot_size").unwrap().data.to_f64();
        assert!(lots.iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn join_matches_train_rows() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        Stage::ReadCsv {
            table: Table::Train,
        }
        .execute(&mut c);
        let out = Stage::Join {
            left: "train".into(),
            right: "properties".into(),
            on: "parcel_id".into(),
            out: "merged".into(),
        }
        .execute(&mut c);
        assert_eq!(out.n_rows(), c.data.train.n_rows());
        assert!(out.column("sqft").is_some());
        assert!(out.column("logerror").is_some());
    }

    #[test]
    fn train_test_split_partitions_rows() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Train,
        }
        .execute(&mut c);
        Stage::TrainTestSplit {
            frame: "train".into(),
            frac: 0.8,
        }
        .execute(&mut c);
        let fit = c.frame("train_fit").n_rows();
        let hold = c.frame("train_holdout").n_rows();
        assert_eq!(fit + hold, c.data.train.n_rows());
        assert_eq!(fit, (c.data.train.n_rows() as f64 * 0.8).round() as usize);
    }

    #[test]
    fn end_to_end_train_and_predict() {
        let mut c = ctx();
        for s in [
            Stage::ReadCsv {
                table: Table::Properties,
            },
            Stage::ReadCsv {
                table: Table::Train,
            },
            Stage::FillNa {
                frame: "properties".into(),
            },
            Stage::Join {
                left: "train".into(),
                right: "properties".into(),
                on: "parcel_id".into(),
                out: "merged".into(),
            },
            Stage::TrainGbdt {
                frame: "merged".into(),
                y_col: "logerror".into(),
                name: "gbm".into(),
                flavor: GbdtFlavor::Lightgbm,
            },
            Stage::Predict {
                model: "gbm".into(),
                frame: "merged".into(),
                out: "preds".into(),
            },
        ] {
            s.execute(&mut c);
        }
        let preds = c.frame("preds");
        assert_eq!(preds.n_rows(), c.frame("merged").n_rows());
        assert!(preds.column("pred").is_some());
        let vals = preds.column("pred").unwrap().data.to_f64();
        assert!(vals.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn feature_matrix_excludes_ids_and_cats() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let (_, p, names) = feature_matrix(c.frame("properties"));
        assert!(!names.contains(&"parcel_id".to_string()));
        assert!(!names.contains(&"region".to_string()));
        assert_eq!(p, names.len());
    }

    #[test]
    fn blended_predict_mixes_models() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        Stage::ReadCsv {
            table: Table::Train,
        }
        .execute(&mut c);
        Stage::FillNa {
            frame: "properties".into(),
        }
        .execute(&mut c);
        Stage::Join {
            left: "train".into(),
            right: "properties".into(),
            on: "parcel_id".into(),
            out: "merged".into(),
        }
        .execute(&mut c);
        Stage::TrainGbdt {
            frame: "merged".into(),
            y_col: "logerror".into(),
            name: "xgb".into(),
            flavor: GbdtFlavor::Xgboost,
        }
        .execute(&mut c);
        Stage::TrainGbdt {
            frame: "merged".into(),
            y_col: "logerror".into(),
            name: "lgbm".into(),
            flavor: GbdtFlavor::Lightgbm,
        }
        .execute(&mut c);
        let blend = Stage::Predict {
            model: "xgb+lgbm".into(),
            frame: "merged".into(),
            out: "blend".into(),
        }
        .execute(&mut c);
        let pa = Stage::Predict {
            model: "xgb".into(),
            frame: "merged".into(),
            out: "pa".into(),
        }
        .execute(&mut c);
        let pb = Stage::Predict {
            model: "lgbm".into(),
            frame: "merged".into(),
            out: "pb".into(),
        }
        .execute(&mut c);
        let bl = blend.column("pred").unwrap().data.to_f64();
        let a = pa.column("pred").unwrap().data.to_f64();
        let b = pb.column("pred").unwrap().data.to_f64();
        for i in 0..bl.len() {
            let expected = (a[i] + b[i]) / 2.0;
            assert!((bl[i] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn stage_kinds_match_table4_names() {
        assert_eq!(
            Stage::ReadCsv {
                table: Table::Train
            }
            .kind(),
            "ReadCSV"
        );
        assert_eq!(
            Stage::TrainGbdt {
                frame: "f".into(),
                y_col: "y".into(),
                name: "m".into(),
                flavor: GbdtFlavor::Xgboost
            }
            .kind(),
            "TrainXGBoost"
        );
    }

    #[test]
    fn avg_feature_divides_sqft_by_bedrooms() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let out = Stage::AvgFeature {
            frame: "properties".into(),
        }
        .execute(&mut c);
        let sqft = out.column("sqft").unwrap().data.to_f64();
        let beds = out.column("bedrooms").unwrap().data.to_f64();
        let avg = out.column("avg_room_size").unwrap().data.to_f64();
        for i in 0..out.n_rows() {
            assert!((avg[i] - sqft[i] / beds[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn construction_recency_is_2017_minus_year() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let out = Stage::ConstructionRecency {
            frame: "properties".into(),
        }
        .execute(&mut c);
        let years = out.column("year_built").unwrap().data.to_f64();
        let rec = out.column("recency").unwrap().data.to_f64();
        for i in 0..out.n_rows() {
            assert_eq!(rec[i], 2017.0 - years[i]);
        }
    }

    #[test]
    fn is_residential_flags_commercial_as_zero() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let out = Stage::IsResidential {
            frame: "properties".into(),
        }
        .execute(&mut c);
        let flags = out.column("is_residential").unwrap().data.to_f64();
        for (i, &flag) in flags.iter().enumerate() {
            let ptype = out.column("prop_type").unwrap().data.cat_value(i).unwrap();
            let expected = if ptype == "commercial" { 0.0 } else { 1.0 };
            assert_eq!(flag, expected, "row {i} type {ptype}");
        }
        // Both classes occur in the synthetic data.
        assert!(flags.contains(&0.0));
        assert!(flags.contains(&1.0));
    }

    #[test]
    fn neighborhood_respects_granularity_hyperparameter() {
        let mut hyper = HashMap::new();
        hyper.insert("neighborhood_granularity".to_string(), 1e12); // one huge bin
        let mut c = PipelineContext::new(crate::data::ZillowData::generate(100, 1), hyper, 7);
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        let out = Stage::Neighborhood {
            frame: "properties".into(),
        }
        .execute(&mut c);
        let hood = out.column("neighborhood").unwrap().data.to_f64();
        // With one value bin, the code reduces to region * 100.
        let region = out.column("region").unwrap().data.to_f64();
        for i in 0..out.n_rows() {
            assert_eq!(hood[i], region[i] * 100.0, "row {i}");
        }
    }

    #[test]
    fn select_column_produces_single_column_frame() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Train,
        }
        .execute(&mut c);
        let out = Stage::SelectColumn {
            frame: "train".into(),
            column: "logerror".into(),
            out: "y".into(),
        }
        .execute(&mut c);
        assert_eq!(out.n_cols(), 1);
        assert_eq!(out.n_rows(), c.data.train.n_rows());
        assert!(c.frames.contains_key("y"));
    }

    #[test]
    fn drop_columns_ignores_missing_names() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Train,
        }
        .execute(&mut c);
        let out = Stage::DropColumns {
            frame: "train".into(),
            columns: vec!["sale_month".into(), "no_such_column".into()],
            out: "slim".into(),
        }
        .execute(&mut c);
        assert!(out.column("sale_month").is_none());
        assert_eq!(out.n_cols(), 2);
    }

    #[test]
    fn join_with_no_matches_is_empty() {
        let mut c = ctx();
        Stage::ReadCsv {
            table: Table::Properties,
        }
        .execute(&mut c);
        // A frame whose parcel ids never match.
        let phantom = DataFrame::from_columns(vec![Column::i64("parcel_id", vec![-1, -2, -3])]);
        c.frames.insert("phantom".into(), phantom);
        let out = Stage::Join {
            left: "phantom".into(),
            right: "properties".into(),
            on: "parcel_id".into(),
            out: "j".into(),
        }
        .execute(&mut c);
        assert_eq!(out.n_rows(), 0);
        assert!(out.n_cols() > 1, "schema still joined");
    }
}
