//! The ten Zillow pipeline templates of Appendix E (Table 4), each
//! instantiated with five hyper-parameter variants → 50 pipelines.
//!
//! Notes on fidelity:
//! - Table 4 annotates repeated applications, e.g. `Predict (2)` = once on
//!   the holdout split, once on the test set. Each application is a separate
//!   stage here, so each emits its own intermediate.
//! - P7's row in Table 4 lists tree hyper-parameters (`eta`, `max_depth`,
//!   `bagging_fraction`) against a `TrainElasticNet` stage — an apparent typo
//!   in the paper; we instantiate P7 with LightGBM to match its
//!   hyper-parameters (documented in DESIGN.md).

use std::collections::HashMap;

use crate::pipeline::Pipeline;
use crate::stage::{GbdtFlavor, Stage, Table};

fn read_all() -> Vec<Stage> {
    vec![
        Stage::ReadCsv {
            table: Table::Properties,
        },
        Stage::ReadCsv {
            table: Table::Train,
        },
        Stage::ReadCsv { table: Table::Test },
    ]
}

fn joins() -> Vec<Stage> {
    vec![
        Stage::Join {
            left: "train".into(),
            right: "properties".into(),
            on: "parcel_id".into(),
            out: "merged_train".into(),
        },
        Stage::Join {
            left: "test".into(),
            right: "properties".into(),
            on: "parcel_id".into(),
            out: "merged_test".into(),
        },
    ]
}

fn select_and_drop(extra_drop: &[&str]) -> Vec<Stage> {
    let mut drops: Vec<String> = vec!["region".into(), "prop_type".into()];
    drops.extend(extra_drop.iter().map(|s| s.to_string()));
    vec![
        Stage::SelectColumn {
            frame: "merged_train".into(),
            column: "logerror".into(),
            out: "y_train".into(),
        },
        Stage::DropColumns {
            frame: "merged_train".into(),
            columns: drops.clone(),
            out: "features_train".into(),
        },
        Stage::DropColumns {
            frame: "merged_test".into(),
            columns: drops,
            out: "features_test".into(),
        },
    ]
}

fn split() -> Stage {
    Stage::TrainTestSplit {
        frame: "features_train".into(),
        frac: 0.8,
    }
}

fn predict_both(model: &str) -> Vec<Stage> {
    vec![
        Stage::Predict {
            model: model.into(),
            frame: "features_train_holdout".into(),
            out: "pred_holdout".into(),
        },
        Stage::Predict {
            model: model.into(),
            frame: "features_test".into(),
            out: "pred_test".into(),
        },
    ]
}

fn fillna_both() -> Vec<Stage> {
    vec![
        Stage::FillNa {
            frame: "properties".into(),
        },
        Stage::FillNa {
            frame: "train".into(),
        },
    ]
}

fn train_gbdt(flavor: GbdtFlavor, name: &str) -> Stage {
    Stage::TrainGbdt {
        frame: "features_train_fit".into(),
        y_col: "logerror".into(),
        name: name.into(),
        flavor,
    }
}

fn train_enet() -> Stage {
    Stage::TrainElasticNet {
        frame: "features_train_fit".into(),
        y_col: "logerror".into(),
        name: "enet".into(),
    }
}

/// Build the stage list for a template id (`1..=10`).
///
/// # Panics
/// Panics for ids outside `1..=10`.
pub fn template_stages(id: usize) -> Vec<Stage> {
    let mut s = read_all();
    match id {
        1 => {
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_gbdt(GbdtFlavor::Lightgbm, "lgbm"));
            s.extend(predict_both("lgbm"));
        }
        2 => {
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_gbdt(GbdtFlavor::Xgboost, "xgb"));
            s.extend(predict_both("xgb"));
        }
        3 => {
            s.push(Stage::OneHot {
                frame: "properties".into(),
                column: "region".into(),
            });
            s.extend(fillna_both());
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_enet());
            s.extend(predict_both("enet"));
        }
        4 => {
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.push(Stage::OneHot {
                frame: "properties".into(),
                column: "region".into(),
            });
            s.extend(fillna_both());
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_enet());
            s.extend(predict_both("enet"));
        }
        5 => {
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_gbdt(GbdtFlavor::Xgboost, "xgb"));
            s.push(train_gbdt(GbdtFlavor::Lightgbm, "lgbm"));
            s.extend(predict_both("xgb+lgbm"));
        }
        6 => {
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_gbdt(GbdtFlavor::Lightgbm, "lgbm"));
            s.extend(predict_both("lgbm"));
        }
        7 => {
            // Table 4 lists tree hyper-parameters for P7; see module docs.
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_gbdt(GbdtFlavor::Lightgbm, "lgbm"));
            s.extend(predict_both("lgbm"));
        }
        8 => {
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.push(Stage::ConstructionRecency {
                frame: "properties".into(),
            });
            s.push(Stage::OneHot {
                frame: "properties".into(),
                column: "region".into(),
            });
            s.extend(fillna_both());
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_enet());
            s.extend(predict_both("enet"));
        }
        9 => {
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.push(Stage::ConstructionRecency {
                frame: "properties".into(),
            });
            s.push(Stage::Neighborhood {
                frame: "properties".into(),
            });
            s.push(Stage::OneHot {
                frame: "properties".into(),
                column: "region".into(),
            });
            s.extend(fillna_both());
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_enet());
            s.extend(predict_both("enet"));
        }
        10 => {
            s.push(Stage::AvgFeature {
                frame: "properties".into(),
            });
            s.push(Stage::ConstructionRecency {
                frame: "properties".into(),
            });
            s.push(Stage::IsResidential {
                frame: "properties".into(),
            });
            s.push(Stage::OneHot {
                frame: "properties".into(),
                column: "region".into(),
            });
            s.extend(fillna_both());
            s.extend(joins());
            s.extend(select_and_drop(&[]));
            s.push(split());
            s.push(train_enet());
            s.extend(predict_both("enet"));
        }
        other => panic!("no template P{other}"),
    }
    s
}

/// The five hyper-parameter variants for a template.
pub fn template_variants(id: usize) -> Vec<HashMap<String, f64>> {
    let grid: Vec<Vec<(&str, f64)>> = match id {
        1 => vec![
            vec![
                ("learning_rate", 0.05),
                ("sub_feature", 0.6),
                ("min_data", 10.0),
            ],
            vec![
                ("learning_rate", 0.1),
                ("sub_feature", 0.8),
                ("min_data", 20.0),
            ],
            vec![
                ("learning_rate", 0.2),
                ("sub_feature", 1.0),
                ("min_data", 40.0),
            ],
            vec![
                ("learning_rate", 0.05),
                ("sub_feature", 1.0),
                ("min_data", 20.0),
            ],
            vec![
                ("learning_rate", 0.3),
                ("sub_feature", 0.7),
                ("min_data", 15.0),
            ],
        ],
        2 => vec![
            vec![
                ("eta", 0.05),
                ("lambda", 0.5),
                ("alpha", 0.0),
                ("max_depth", 3.0),
            ],
            vec![
                ("eta", 0.1),
                ("lambda", 1.0),
                ("alpha", 0.1),
                ("max_depth", 4.0),
            ],
            vec![
                ("eta", 0.2),
                ("lambda", 2.0),
                ("alpha", 0.0),
                ("max_depth", 5.0),
            ],
            vec![
                ("eta", 0.1),
                ("lambda", 0.1),
                ("alpha", 0.5),
                ("max_depth", 6.0),
            ],
            vec![
                ("eta", 0.3),
                ("lambda", 1.0),
                ("alpha", 0.0),
                ("max_depth", 3.0),
            ],
        ],
        3 => vec![
            vec![("l1_ratio", 0.1), ("tol", 1e-4)],
            vec![("l1_ratio", 0.3), ("tol", 1e-4)],
            vec![("l1_ratio", 0.5), ("tol", 1e-5)],
            vec![("l1_ratio", 0.7), ("tol", 1e-5)],
            vec![("l1_ratio", 0.9), ("tol", 1e-6)],
        ],
        4 | 8 => vec![
            vec![("l1_ratio", 0.2), ("tol", 1e-4), ("normalize", 1.0)],
            vec![("l1_ratio", 0.4), ("tol", 1e-4), ("normalize", 0.0)],
            vec![("l1_ratio", 0.5), ("tol", 1e-5), ("normalize", 1.0)],
            vec![("l1_ratio", 0.6), ("tol", 1e-5), ("normalize", 0.0)],
            vec![("l1_ratio", 0.8), ("tol", 1e-6), ("normalize", 1.0)],
        ],
        5 => vec![
            vec![
                ("eta", 0.1),
                ("max_depth", 4.0),
                ("xgb_weight", 0.7),
                ("lgbm_weight", 0.3),
            ],
            vec![
                ("eta", 0.1),
                ("max_depth", 4.0),
                ("xgb_weight", 0.5),
                ("lgbm_weight", 0.5),
            ],
            vec![
                ("eta", 0.2),
                ("max_depth", 5.0),
                ("xgb_weight", 0.3),
                ("lgbm_weight", 0.7),
            ],
            vec![
                ("eta", 0.05),
                ("max_depth", 3.0),
                ("xgb_weight", 0.6),
                ("lgbm_weight", 0.4),
            ],
            vec![
                ("eta", 0.15),
                ("max_depth", 6.0),
                ("xgb_weight", 0.4),
                ("lgbm_weight", 0.6),
            ],
        ],
        6 | 7 => vec![
            vec![("eta", 0.05), ("max_depth", 3.0), ("bagging_fraction", 0.6)],
            vec![("eta", 0.1), ("max_depth", 4.0), ("bagging_fraction", 0.8)],
            vec![("eta", 0.2), ("max_depth", 5.0), ("bagging_fraction", 1.0)],
            vec![("eta", 0.1), ("max_depth", 6.0), ("bagging_fraction", 0.7)],
            vec![("eta", 0.3), ("max_depth", 4.0), ("bagging_fraction", 0.9)],
        ],
        9 => vec![
            vec![
                ("neighborhood_granularity", 100_000.0),
                ("l1_ratio", 0.3),
                ("tol", 1e-4),
            ],
            vec![
                ("neighborhood_granularity", 250_000.0),
                ("l1_ratio", 0.5),
                ("tol", 1e-4),
            ],
            vec![
                ("neighborhood_granularity", 500_000.0),
                ("l1_ratio", 0.5),
                ("tol", 1e-5),
            ],
            vec![
                ("neighborhood_granularity", 250_000.0),
                ("l1_ratio", 0.7),
                ("tol", 1e-5),
            ],
            vec![
                ("neighborhood_granularity", 1_000_000.0),
                ("l1_ratio", 0.9),
                ("tol", 1e-6),
            ],
        ],
        10 => vec![
            vec![("l1_ratio", 0.1), ("tol", 1e-4), ("normalize", 1.0)],
            vec![("l1_ratio", 0.3), ("tol", 1e-4), ("normalize", 1.0)],
            vec![("l1_ratio", 0.5), ("tol", 1e-5), ("normalize", 0.0)],
            vec![("l1_ratio", 0.7), ("tol", 1e-5), ("normalize", 1.0)],
            vec![("l1_ratio", 0.9), ("tol", 1e-6), ("normalize", 0.0)],
        ],
        other => panic!("no template P{other}"),
    };
    grid.into_iter()
        .map(|pairs| pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        .collect()
}

/// All 50 Zillow pipelines: templates P1–P10 × 5 variants.
/// For LightGBM-style stages the `learning_rate`/`eta` naming difference is
/// normalized inside the train stage.
pub fn zillow_pipelines() -> Vec<Pipeline> {
    let mut out = Vec::with_capacity(50);
    for id in 1..=10 {
        let stages = template_stages(id);
        for (v, mut hyper) in template_variants(id).into_iter().enumerate() {
            // LightGBM reads `learning_rate`; templates 6/7 specify `eta`.
            if let Some(&eta) = hyper.get("eta") {
                hyper.entry("learning_rate".to_string()).or_insert(eta);
            }
            out.push(Pipeline::new(
                format!("P{id}_v{v}"),
                stages.clone(),
                hyper,
                42, // shared seed: variants differ only via hyper-parameters
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ZillowData;

    #[test]
    fn fifty_pipelines_generated() {
        let pipes = zillow_pipelines();
        assert_eq!(pipes.len(), 50);
        let ids: std::collections::HashSet<_> = pipes.iter().map(|p| p.id.clone()).collect();
        assert_eq!(ids.len(), 50, "unique ids");
    }

    #[test]
    fn stage_counts_in_paper_range() {
        // Paper: workflows contain between 9 and 19 stages.
        for id in 1..=10 {
            let n = template_stages(id).len();
            assert!((9..=19).contains(&n), "P{id} has {n} stages");
        }
    }

    #[test]
    fn every_template_runs_end_to_end() {
        let data = ZillowData::generate(200, 1);
        for id in 1..=10 {
            let stages = template_stages(id);
            let hyper = template_variants(id).remove(0);
            let p = Pipeline::new(format!("P{id}"), stages, hyper, 1);
            let records = p.run(&data);
            assert_eq!(records.len(), p.len(), "P{id}");
            // Final stage is a prediction over the test set.
            let last = &records[records.len() - 1].output;
            assert!(last.column("pred").is_some(), "P{id} final predictions");
            let preds = last.column("pred").unwrap().data.to_f64();
            assert!(
                preds.iter().all(|v| v.is_finite()),
                "P{id} finite predictions"
            );
        }
    }

    #[test]
    fn variants_of_one_template_share_prefix_intermediates() {
        let data = ZillowData::generate(200, 1);
        let pipes = zillow_pipelines();
        let p2_variants: Vec<_> = pipes.iter().filter(|p| p.id.starts_with("P2_")).collect();
        assert_eq!(p2_variants.len(), 5);
        let a = p2_variants[0].run(&data);
        let b = p2_variants[1].run(&data);
        // All stages before the train stage are identical across variants.
        let train_idx = a
            .iter()
            .position(|r| r.intermediate_id.contains("Train"))
            .unwrap();
        for i in 0..train_idx {
            assert_eq!(a[i].output, b[i].output, "stage {i}");
        }
    }

    #[test]
    fn variants_produce_distinct_predictions() {
        let data = ZillowData::generate(300, 1);
        let pipes = zillow_pipelines();
        let v0 = pipes.iter().find(|p| p.id == "P2_v0").unwrap().run(&data);
        let v4 = pipes.iter().find(|p| p.id == "P2_v4").unwrap().run(&data);
        assert_ne!(
            v0.last().unwrap().output,
            v4.last().unwrap().output,
            "different hyper-parameters must change predictions"
        );
    }

    #[test]
    #[should_panic(expected = "no template")]
    fn unknown_template_panics() {
        template_stages(11);
    }
}
