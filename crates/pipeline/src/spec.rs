//! Serialized pipeline specifications.
//!
//! The paper expresses scikit-learn pipelines in a YAML format "modeled after
//! Apache Airflow" so that MISTIQUE can re-run arbitrary stages. The
//! equivalent here is a serde/JSON specification: the full stage list plus
//! hyper-parameters, round-trippable to disk.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::pipeline::Pipeline;
use crate::stage::Stage;

/// A serializable pipeline description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Pipeline id.
    pub id: String,
    /// Ordered stages.
    pub stages: Vec<Stage>,
    /// Hyper-parameter settings.
    pub hyper: HashMap<String, f64>,
    /// Seed for stochastic stages.
    pub seed: u64,
}

impl PipelineSpec {
    /// Capture a pipeline as a spec.
    pub fn from_pipeline(p: &Pipeline) -> PipelineSpec {
        PipelineSpec {
            id: p.id.clone(),
            stages: p.stages.clone(),
            hyper: p.hyper.clone(),
            seed: p.seed,
        }
    }

    /// Instantiate the executable pipeline.
    pub fn into_pipeline(self) -> Pipeline {
        Pipeline::new(self.id, self.stages, self.hyper, self.seed)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Parse from a JSON string.
    pub fn from_json(s: &str) -> Result<PipelineSpec, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::ZillowData;
    use crate::templates::zillow_pipelines;

    #[test]
    fn roundtrip_all_templates() {
        for p in zillow_pipelines() {
            let spec = PipelineSpec::from_pipeline(&p);
            let json = spec.to_json();
            let back = PipelineSpec::from_json(&json).unwrap();
            assert_eq!(back, spec);
            let p2 = back.into_pipeline();
            assert_eq!(p2.id, p.id);
            assert_eq!(p2.stages, p.stages);
        }
    }

    #[test]
    fn restored_pipeline_reproduces_outputs() {
        let data = ZillowData::generate(150, 1);
        let p = zillow_pipelines().remove(0);
        let json = PipelineSpec::from_pipeline(&p).to_json();
        let restored = PipelineSpec::from_json(&json).unwrap().into_pipeline();
        let a = p.run(&data);
        let b = restored.run(&data);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.output, rb.output);
        }
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(PipelineSpec::from_json("{not json").is_err());
        assert!(PipelineSpec::from_json("{}").is_err());
    }

    #[test]
    fn spec_json_mentions_stage_kind() {
        let p = zillow_pipelines().remove(0);
        let json = PipelineSpec::from_pipeline(&p).to_json();
        assert!(json.contains("ReadCsv"));
        assert!(json.contains("TrainTestSplit"));
    }
}
