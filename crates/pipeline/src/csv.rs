//! A minimal CSV codec for the Zillow source tables.
//!
//! The paper's pipelines start from `ReadCSV` stages that parse real files;
//! reproducing the re-run cost of a pipeline therefore requires ReadCSV to
//! do real parsing work, not an in-memory clone. Types are encoded in the
//! header (`name:f64`), missing f64 values serialize as empty cells.

use mistique_dataframe::{Column, ColumnData, DataFrame};

/// Serialize a dataframe to CSV text with typed headers.
///
/// Supported column types: f64, i64, categorical. (The Zillow tables use
/// only these.)
pub fn frame_to_csv(df: &DataFrame) -> String {
    let mut out = String::new();
    let headers: Vec<String> = df
        .columns()
        .iter()
        .map(|c| {
            let t = match c.data {
                ColumnData::F64(_) => "f64",
                ColumnData::I64(_) => "i64",
                ColumnData::Cat { .. } => "cat",
                _ => panic!("unsupported CSV column type {:?}", c.data.dtype()),
            };
            format!("{}:{}", c.name, t)
        })
        .collect();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in 0..df.n_rows() {
        let cells: Vec<String> = df
            .columns()
            .iter()
            .map(|c| match &c.data {
                ColumnData::F64(v) => {
                    if v[row].is_nan() {
                        String::new()
                    } else {
                        // Full round-trip precision.
                        format!("{:?}", v[row])
                    }
                }
                ColumnData::I64(v) => v[row].to_string(),
                ColumnData::Cat { .. } => c.data.cat_value(row).unwrap_or("").to_string(),
                _ => unreachable!(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parse CSV text produced by [`frame_to_csv`].
///
/// # Panics
/// Panics on malformed input — the source tables are generated internally,
/// so malformed CSV is a bug, not a runtime condition.
pub fn csv_to_frame(text: &str) -> DataFrame {
    let mut lines = text.lines();
    let header = lines.next().expect("CSV header");
    let specs: Vec<(&str, &str)> = header
        .split(',')
        .map(|h| h.split_once(':').expect("typed header"))
        .collect();

    enum Builder {
        F64(Vec<f64>),
        I64(Vec<i64>),
        Cat(Vec<String>),
    }
    let mut builders: Vec<Builder> = specs
        .iter()
        .map(|(_, t)| match *t {
            "f64" => Builder::F64(Vec::new()),
            "i64" => Builder::I64(Vec::new()),
            "cat" => Builder::Cat(Vec::new()),
            other => panic!("unknown CSV type {other}"),
        })
        .collect();

    // `str::lines` never yields a trailing empty line, so every yielded line
    // is a data row — including "" for a single-column row with a NaN cell.
    for line in lines {
        for (cell, builder) in line.split(',').zip(&mut builders) {
            match builder {
                Builder::F64(v) => v.push(if cell.is_empty() {
                    f64::NAN
                } else {
                    cell.parse().expect("f64 cell")
                }),
                Builder::I64(v) => v.push(cell.parse().expect("i64 cell")),
                Builder::Cat(v) => v.push(cell.to_string()),
            }
        }
    }

    let columns = specs
        .iter()
        .zip(builders)
        .map(|((name, _), b)| match b {
            Builder::F64(v) => Column::f64(*name, v),
            Builder::I64(v) => Column::i64(*name, v),
            Builder::Cat(v) => Column::new(*name, ColumnData::cat_from_strings(&v)),
        })
        .collect();
    DataFrame::from_columns(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_typed_frame() {
        let df = DataFrame::from_columns(vec![
            Column::i64("id", vec![1, 2, 3]),
            Column::f64("x", vec![1.5, f64::NAN, -2.25e10]),
            Column::new("c", ColumnData::cat_from_strings(&["a", "b", "a"])),
        ]);
        let text = frame_to_csv(&df);
        let back = csv_to_frame(&text);
        assert_eq!(back, df);
    }

    #[test]
    fn nan_serializes_as_empty_cell() {
        let df = DataFrame::from_columns(vec![Column::f64("x", vec![f64::NAN])]);
        let text = frame_to_csv(&df);
        assert!(text.lines().nth(1).unwrap().is_empty());
        let back = csv_to_frame(&text);
        assert!(back.column("x").unwrap().data.to_f64()[0].is_nan());
    }

    #[test]
    fn full_f64_precision_preserved() {
        let vals = vec![0.1 + 0.2, 1e-300, std::f64::consts::PI];
        let df = DataFrame::from_columns(vec![Column::f64("x", vals.clone())]);
        let back = csv_to_frame(&frame_to_csv(&df));
        assert_eq!(back.column("x").unwrap().data.to_f64(), vals);
    }

    #[test]
    #[should_panic(expected = "typed header")]
    fn untyped_header_rejected() {
        csv_to_frame("justname\n1\n");
    }
}
