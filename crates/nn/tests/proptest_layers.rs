//! Property tests on layer semantics: linearity of convolution and dense
//! layers, pooling bounds, and softmax invariants — for arbitrary inputs.

// Tensor sizes are written `channels * h * w` even when a factor is 1.
#![allow(clippy::identity_op)]

use mistique_nn::layer::{Activation, Layer};
use mistique_nn::Tensor;
use proptest::prelude::*;

fn conv(in_c: usize, out_c: usize, weights: Vec<f32>, bias: Vec<f32>) -> Layer {
    Layer::Conv2d {
        in_c,
        out_c,
        weights,
        bias,
        activation: Activation::Linear,
    }
}

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Convolution without bias is linear: conv(a*x) == a*conv(x).
    #[test]
    fn conv_is_homogeneous(
        x in finite_vec(2 * 4 * 4),
        w in finite_vec(1 * 2 * 9),
        a in -3.0f32..3.0,
    ) {
        let layer = conv(2, 1, w, vec![0.0]);
        let t = Tensor::from_vec(1, 2, 4, 4, x.clone());
        let scaled = Tensor::from_vec(1, 2, 4, 4, x.iter().map(|v| v * a).collect());
        let y1 = layer.forward(&t);
        let y2 = layer.forward(&scaled);
        for (u, v) in y1.data.iter().zip(&y2.data) {
            prop_assert!((u * a - v).abs() < 1e-3, "{u} * {a} vs {v}");
        }
    }

    // conv(x + y) == conv(x) + conv(y) - conv(0) (bias counted once).
    #[test]
    fn conv_is_additive_up_to_bias(
        x in finite_vec(1 * 3 * 3),
        y in finite_vec(1 * 3 * 3),
        w in finite_vec(9),
        b in -2.0f32..2.0,
    ) {
        let layer = conv(1, 1, w, vec![b]);
        let tx = Tensor::from_vec(1, 1, 3, 3, x.clone());
        let ty = Tensor::from_vec(1, 1, 3, 3, y.clone());
        let txy = Tensor::from_vec(1, 1, 3, 3, x.iter().zip(&y).map(|(u, v)| u + v).collect());
        let fx = layer.forward(&tx);
        let fy = layer.forward(&ty);
        let fxy = layer.forward(&txy);
        for i in 0..fxy.data.len() {
            let expect = fx.data[i] + fy.data[i] - b;
            prop_assert!((fxy.data[i] - expect).abs() < 1e-3);
        }
    }

    // Max pooling output values are drawn from the input.
    #[test]
    fn maxpool_values_come_from_input(x in finite_vec(1 * 4 * 4)) {
        let t = Tensor::from_vec(1, 1, 4, 4, x.clone());
        let y = Layer::MaxPool2.forward(&t);
        for v in &y.data {
            prop_assert!(x.contains(v));
        }
        // And each is >= every member of its window.
        prop_assert_eq!(y.data.len(), 4);
    }

    // Softmax is shift-invariant and produces a distribution.
    #[test]
    fn softmax_invariants(x in finite_vec(8), shift in -5.0f32..5.0) {
        let t = Tensor::from_vec(1, 8, 1, 1, x.clone());
        let shifted = Tensor::from_vec(1, 8, 1, 1, x.iter().map(|v| v + shift).collect());
        let a = Layer::Softmax.forward(&t);
        let b = Layer::Softmax.forward(&shifted);
        let sum: f32 = a.data.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        for (u, v) in a.data.iter().zip(&b.data) {
            prop_assert!((u - v).abs() < 1e-5, "softmax must be shift-invariant");
        }
    }

    // Batch independence: forwarding two examples together equals forwarding
    // them separately (no cross-example leakage).
    #[test]
    fn batch_independence(
        x1 in finite_vec(2 * 4 * 4),
        x2 in finite_vec(2 * 4 * 4),
        w in finite_vec(3 * 2 * 9),
        b in finite_vec(3),
    ) {
        let layer = conv(2, 3, w, b);
        let t1 = Tensor::from_vec(1, 2, 4, 4, x1.clone());
        let t2 = Tensor::from_vec(1, 2, 4, 4, x2.clone());
        let mut both_data = x1;
        both_data.extend(x2);
        let both = Tensor::from_vec(2, 2, 4, 4, both_data);
        let y1 = layer.forward(&t1);
        let y2 = layer.forward(&t2);
        let y = layer.forward(&both);
        prop_assert_eq!(y.example(0), &y1.data[..]);
        prop_assert_eq!(y.example(1), &y2.data[..]);
    }
}
