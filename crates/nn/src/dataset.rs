//! Synthetic CIFAR10-like dataset.
//!
//! Real CIFAR10 is unavailable; for the diagnostics that matter here (KNN
//! neighbour overlap, SVCCA between layers, per-class activation averages,
//! confusion-style queries) what matters is that images of the same class
//! share structure. Each class gets a characteristic low-frequency pattern;
//! images are the class pattern plus per-image deterministic noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Tensor;

/// A labelled synthetic image dataset, 3×32×32 per example.
#[derive(Clone, Debug)]
pub struct CifarLike {
    /// Image tensor, `n x 3 x 32 x 32`.
    pub images: Tensor,
    /// Class labels in `0..n_classes`.
    pub labels: Vec<u8>,
    /// Number of classes.
    pub n_classes: usize,
    /// The `(n, n_classes, seed)` this dataset was generated from, when it
    /// came from [`CifarLike::generate`] — the workload audit journal
    /// records it so `mistique replay` can regenerate the identical inputs.
    pub provenance: Option<(usize, usize, u64)>,
}

impl CifarLike {
    /// Generate `n` images across `n_classes` classes, deterministically
    /// from `seed`.
    pub fn generate(n: usize, n_classes: usize, seed: u64) -> CifarLike {
        assert!(n_classes > 0 && n_classes <= 256, "1..=256 classes");
        let hw = 32usize;
        let mut data = Vec::with_capacity(n * 3 * hw * hw);
        let mut labels = Vec::with_capacity(n);

        // Per-class pattern parameters.
        let mut class_params = Vec::with_capacity(n_classes);
        let mut crng = StdRng::seed_from_u64(seed ^ 0xC1A55);
        for _ in 0..n_classes {
            let fx: f32 = crng.gen_range(0.5..3.0);
            let fy: f32 = crng.gen_range(0.5..3.0);
            let phase: f32 = crng.gen_range(0.0..std::f32::consts::TAU);
            let ch_mix: [f32; 3] = [
                crng.gen_range(0.2..1.0),
                crng.gen_range(0.2..1.0),
                crng.gen_range(0.2..1.0),
            ];
            class_params.push((fx, fy, phase, ch_mix));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let label = (i % n_classes) as u8;
            labels.push(label);
            let (fx, fy, phase, mix) = class_params[label as usize];
            let jitter: f32 = rng.gen_range(-0.3..0.3);
            for (c, &m) in mix.iter().enumerate() {
                for y in 0..hw {
                    for x in 0..hw {
                        let sx = x as f32 / hw as f32 * std::f32::consts::TAU;
                        let sy = y as f32 / hw as f32 * std::f32::consts::TAU;
                        let signal =
                            ((sx * fx + phase + jitter).sin() + (sy * fy + phase).cos()) * 0.5 * m;
                        let noise: f32 = rng.gen_range(-0.25..0.25);
                        let _ = c;
                        data.push(signal + noise);
                    }
                }
            }
        }

        CifarLike {
            images: Tensor::from_vec(n, 3, hw, hw, data),
            labels,
            n_classes,
            provenance: Some((n, n_classes, seed)),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Indices of the examples with the given label.
    pub fn indices_of_class(&self, class: u8) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = CifarLike::generate(50, 10, 3);
        let b = CifarLike::generate(50, 10, 3);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = CifarLike::generate(25, 10, 1);
        assert_eq!(d.labels[0], 0);
        assert_eq!(d.labels[9], 9);
        assert_eq!(d.labels[10], 0);
        assert_eq!(d.indices_of_class(3), vec![3, 13, 23]);
    }

    #[test]
    fn same_class_images_more_similar_than_cross_class() {
        let d = CifarLike::generate(40, 4, 7);
        let dist = |a: usize, b: usize| -> f32 {
            d.images
                .example(a)
                .iter()
                .zip(d.images.example(b))
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        // Examples 0, 4, 8 are class 0; example 1 is class 1.
        let same = dist(0, 4) + dist(0, 8) + dist(4, 8);
        let cross = dist(0, 1) + dist(4, 1) + dist(8, 1);
        assert!(same < cross, "same-class {same} vs cross-class {cross}");
    }

    #[test]
    fn pixel_range_is_bounded() {
        let d = CifarLike::generate(20, 10, 2);
        for &v in &d.images.data {
            assert!(v.abs() < 2.0, "pixel {v}");
        }
    }
}
