//! The two evaluation architectures.

/// Specification of one layer in an architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerSpec {
    /// 3×3 convolution to `out_c` channels, followed implicitly by ReLU.
    Conv(usize),
    /// 2×2 max pool.
    Pool,
    /// Fully connected to `out_f` features, followed implicitly by ReLU.
    Dense(usize),
    /// Final classifier head: dense to `n_classes` then softmax.
    Classifier,
}

/// An architecture: layer specs plus input geometry and the training regime
/// (which layers are frozen across checkpoints).
#[derive(Clone, Debug)]
pub struct ArchConfig {
    /// Architecture name (`CIFAR10_VGG16` / `CIFAR10_CNN`).
    pub name: String,
    /// Input channels.
    pub in_c: usize,
    /// Input height/width (square).
    pub in_hw: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Layer specifications in order.
    pub layers: Vec<LayerSpec>,
    /// Number of leading specs whose weights are frozen across checkpoints
    /// (the VGG16 fine-tuning setup freezes all 13 conv blocks).
    pub frozen_prefix: usize,
}

/// VGG16 fine-tuned on CIFAR10 (paper Sec 7.1.2): 13 convolutional layers in
/// the standard VGG16 channel progression, five pools, and a reduced
/// two-layer fully-connected head. `channel_scale` divides every channel
/// count so experiments fit laptop budgets while preserving the layer-size
/// *geometry* (early layers are by far the largest — the Layer1 anomaly of
/// Fig 5d/8 depends on this).
pub fn vgg16_cifar(channel_scale: usize) -> ArchConfig {
    assert!(channel_scale >= 1, "scale must be >= 1");
    let s = |c: usize| (c / channel_scale).max(2);
    let layers = vec![
        LayerSpec::Conv(s(64)),
        LayerSpec::Conv(s(64)),
        LayerSpec::Pool,
        LayerSpec::Conv(s(128)),
        LayerSpec::Conv(s(128)),
        LayerSpec::Pool,
        LayerSpec::Conv(s(256)),
        LayerSpec::Conv(s(256)),
        LayerSpec::Conv(s(256)),
        LayerSpec::Pool,
        LayerSpec::Conv(s(512)),
        LayerSpec::Conv(s(512)),
        LayerSpec::Conv(s(512)),
        LayerSpec::Pool,
        LayerSpec::Conv(s(512)),
        LayerSpec::Conv(s(512)),
        LayerSpec::Conv(s(512)),
        LayerSpec::Pool,
        LayerSpec::Dense(s(512)),
        LayerSpec::Classifier,
    ];
    // Freeze everything up to and including the last pool: only the
    // fully-connected head trains during fine-tuning.
    let frozen_prefix = 18;
    ArchConfig {
        name: "CIFAR10_VGG16".to_string(),
        in_c: 3,
        in_hw: 32,
        n_classes: 10,
        layers,
        frozen_prefix,
    }
}

/// The simple Keras-style CIFAR10 CNN (4 conv + 2 FC), trained from scratch:
/// no frozen layers, so every checkpoint's intermediates differ.
pub fn simple_cnn(channel_scale: usize) -> ArchConfig {
    assert!(channel_scale >= 1, "scale must be >= 1");
    let s = |c: usize| (c / channel_scale).max(2);
    ArchConfig {
        name: "CIFAR10_CNN".to_string(),
        in_c: 3,
        in_hw: 32,
        n_classes: 10,
        layers: vec![
            LayerSpec::Conv(s(32)),
            LayerSpec::Conv(s(32)),
            LayerSpec::Pool,
            LayerSpec::Conv(s(64)),
            LayerSpec::Conv(s(64)),
            LayerSpec::Pool,
            LayerSpec::Dense(s(512)),
            LayerSpec::Classifier,
        ],
        frozen_prefix: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_convs_5_pools() {
        let a = vgg16_cifar(8);
        let convs = a
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv(_)))
            .count();
        let pools = a
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Pool))
            .count();
        assert_eq!(convs, 13);
        assert_eq!(pools, 5);
        assert!(a.frozen_prefix > 0, "conv stack is frozen");
    }

    #[test]
    fn simple_cnn_not_frozen() {
        let a = simple_cnn(4);
        assert_eq!(a.frozen_prefix, 0);
        let convs = a
            .layers
            .iter()
            .filter(|l| matches!(l, LayerSpec::Conv(_)))
            .count();
        assert_eq!(convs, 4);
    }

    #[test]
    fn channel_scale_divides_widths() {
        let full = vgg16_cifar(1);
        let eighth = vgg16_cifar(8);
        let first_c = |a: &ArchConfig| match a.layers[0] {
            LayerSpec::Conv(c) => c,
            _ => unreachable!(),
        };
        assert_eq!(first_c(&full), 64);
        assert_eq!(first_c(&eighth), 8);
    }

    #[test]
    fn extreme_scale_clamps_to_min_channels() {
        let tiny = vgg16_cifar(1000);
        for l in &tiny.layers {
            if let LayerSpec::Conv(c) = l {
                assert!(*c >= 2);
            }
        }
    }
}
