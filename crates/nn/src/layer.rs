//! Network layers: forward passes only.

use crate::tensor::Tensor;

/// Activation fused into a Conv2d or Dense layer. Fusing keeps the layer
/// enumeration aligned with the paper's "Layer1..Layer21" numbering for
/// VGG16 (13 conv + 5 pool + flatten + 2 FC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation.
    Linear,
    /// `max(0, x)`.
    Relu,
    /// Row-wise softmax (classifier head).
    Softmax,
}

/// A network layer. Convolution is 3×3, stride 1, zero-padding 1 (the VGG
/// configuration); pooling is 2×2 max with stride 2.
#[derive(Clone, Debug)]
pub enum Layer {
    /// 3×3 convolution with padding 1: weights `[out_c][in_c][3][3]` (flat).
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Flat kernel weights, length `out_c * in_c * 9`.
        weights: Vec<f32>,
        /// Per-output-channel bias.
        bias: Vec<f32>,
        /// Fused activation applied to the output.
        activation: Activation,
    },
    /// Element-wise `max(0, x)`.
    Relu,
    /// 2×2 max pooling with stride 2 (floor semantics on odd dims).
    MaxPool2,
    /// Reshape NCHW to N×(C·H·W)×1×1.
    Flatten,
    /// Fully connected: weights `[out][in]` (flat) and bias `[out]`.
    Dense {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
        /// Flat weights, length `out_f * in_f`.
        weights: Vec<f32>,
        /// Per-output bias.
        bias: Vec<f32>,
        /// Fused activation applied to the output.
        activation: Activation,
    },
    /// Row-wise softmax over the channel dimension (expects `h = w = 1`).
    Softmax,
}

impl Layer {
    /// Parameter count (weights + biases).
    pub fn n_params(&self) -> usize {
        match self {
            Layer::Conv2d { weights, bias, .. } => weights.len() + bias.len(),
            Layer::Dense { weights, bias, .. } => weights.len() + bias.len(),
            _ => 0,
        }
    }

    /// Output shape `(c, h, w)` for an input of shape `(c, h, w)`.
    pub fn output_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        match self {
            Layer::Conv2d { in_c, out_c, .. } => {
                assert_eq!(*in_c, c, "conv input channels mismatch");
                (*out_c, h, w)
            }
            Layer::Relu => (c, h, w),
            Layer::MaxPool2 => (c, h / 2, w / 2),
            Layer::Flatten => (c * h * w, 1, 1),
            Layer::Dense { in_f, out_f, .. } => {
                assert_eq!(*in_f, c * h * w, "dense input features mismatch");
                (*out_f, 1, 1)
            }
            Layer::Softmax => (c, h, w),
        }
    }

    /// Approximate multiply-accumulate count per example, the basis of the
    /// cost model's per-layer forward cost.
    pub fn flops_per_example(&self, c: usize, h: usize, w: usize) -> u64 {
        match self {
            Layer::Conv2d { in_c, out_c, .. } => (out_c * in_c * 9 * h * w) as u64,
            Layer::Dense { in_f, out_f, .. } => (in_f * out_f) as u64,
            _ => (c * h * w) as u64,
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d {
                in_c,
                out_c,
                weights,
                bias,
                activation,
            } => {
                let out = conv2d_3x3(x, *in_c, *out_c, weights, bias);
                apply_activation(out, *activation)
            }
            Layer::Relu => {
                let mut out = x.clone();
                for v in &mut out.data {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
                out
            }
            Layer::MaxPool2 => maxpool2(x),
            Layer::Flatten => Tensor {
                n: x.n,
                c: x.features_per_example(),
                h: 1,
                w: 1,
                data: x.data.clone(),
            },
            Layer::Dense {
                in_f,
                out_f,
                weights,
                bias,
                activation,
            } => {
                let out = dense(x, *in_f, *out_f, weights, bias);
                apply_activation(out, *activation)
            }
            Layer::Softmax => softmax(x),
        }
    }
}

fn apply_activation(mut t: Tensor, a: Activation) -> Tensor {
    match a {
        Activation::Linear => t,
        Activation::Relu => {
            for v in &mut t.data {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            t
        }
        Activation::Softmax => softmax(&t),
    }
}

fn conv2d_3x3(x: &Tensor, in_c: usize, out_c: usize, weights: &[f32], bias: &[f32]) -> Tensor {
    assert_eq!(x.c, in_c, "conv input channels mismatch");
    assert_eq!(weights.len(), out_c * in_c * 9, "conv weights length");
    assert_eq!(bias.len(), out_c, "conv bias length");
    let (h, w) = (x.h, x.w);
    let mut out = Tensor::zeros(x.n, out_c, h, w);
    for n in 0..x.n {
        for oc in 0..out_c {
            let b = bias[oc];
            for ic in 0..in_c {
                let k = &weights[(oc * in_c + ic) * 9..(oc * in_c + ic) * 9 + 9];
                for oy in 0..h {
                    for ox in 0..w {
                        let mut acc = 0.0f32;
                        // 3x3 window, zero padding.
                        for ky in 0..3usize {
                            let iy = oy as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let ix = ox as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += k[ky * 3 + kx] * x.at(n, ic, iy as usize, ix as usize);
                            }
                        }
                        *out.at_mut(n, oc, oy, ox) += acc;
                    }
                }
            }
            // Apply bias once per output cell.
            for oy in 0..h {
                for ox in 0..w {
                    *out.at_mut(n, oc, oy, ox) += b;
                }
            }
        }
    }
    out
}

fn maxpool2(x: &Tensor) -> Tensor {
    let (oh, ow) = (x.h / 2, x.w / 2);
    assert!(
        oh > 0 && ow > 0,
        "maxpool on too-small input {}x{}",
        x.h,
        x.w
    );
    let mut out = Tensor::zeros(x.n, x.c, oh, ow);
    for n in 0..x.n {
        for c in 0..x.c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let m = x
                        .at(n, c, oy * 2, ox * 2)
                        .max(x.at(n, c, oy * 2, ox * 2 + 1))
                        .max(x.at(n, c, oy * 2 + 1, ox * 2))
                        .max(x.at(n, c, oy * 2 + 1, ox * 2 + 1));
                    *out.at_mut(n, c, oy, ox) = m;
                }
            }
        }
    }
    out
}

fn dense(x: &Tensor, in_f: usize, out_f: usize, weights: &[f32], bias: &[f32]) -> Tensor {
    assert_eq!(
        x.features_per_example(),
        in_f,
        "dense input features mismatch"
    );
    assert_eq!(weights.len(), out_f * in_f, "dense weights length");
    let mut out = Tensor::zeros(x.n, out_f, 1, 1);
    for n in 0..x.n {
        let row = x.example(n);
        for o in 0..out_f {
            let wrow = &weights[o * in_f..(o + 1) * in_f];
            let mut acc = bias[o];
            for (a, b) in row.iter().zip(wrow) {
                acc += a * b;
            }
            out.data[n * out_f + o] = acc;
        }
    }
    out
}

fn softmax(x: &Tensor) -> Tensor {
    assert_eq!(x.h * x.w, 1, "softmax expects flattened input");
    let mut out = x.clone();
    let c = x.c;
    for n in 0..x.n {
        let row = &mut out.data[n * c..(n + 1) * c];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(1, 4, 1, 1, vec![-1.0, 0.0, 2.0, -0.5]);
        let y = Layer::Relu.forward(&x);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn identity_conv_kernel_preserves_input() {
        // Kernel with 1 at the center acts as identity.
        let mut weights = vec![0.0f32; 9];
        weights[4] = 1.0;
        let layer = Layer::Conv2d {
            in_c: 1,
            out_c: 1,
            weights,
            bias: vec![0.0],
            activation: Activation::Linear,
        };
        let x = Tensor::from_vec(1, 1, 3, 3, (1..=9).map(|i| i as f32).collect());
        let y = layer.forward(&x);
        assert_eq!(y.data, x.data);
    }

    #[test]
    fn conv_averaging_kernel_on_constant_input() {
        // All-ones kernel over constant input: interior cells see 9 values,
        // corner cells only 4 (zero padding).
        let layer = Layer::Conv2d {
            in_c: 1,
            out_c: 1,
            weights: vec![1.0; 9],
            bias: vec![0.0],
            activation: Activation::Linear,
        };
        let x = Tensor::from_vec(1, 1, 3, 3, vec![1.0; 9]);
        let y = layer.forward(&x);
        assert_eq!(y.at(0, 0, 1, 1), 9.0);
        assert_eq!(y.at(0, 0, 0, 0), 4.0);
        assert_eq!(y.at(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn conv_bias_and_multi_channel() {
        // Two input channels summed, bias added.
        let mut weights = vec![0.0f32; 2 * 9];
        weights[4] = 1.0; // center of channel 0
        weights[9 + 4] = 2.0; // center of channel 1
        let layer = Layer::Conv2d {
            in_c: 2,
            out_c: 1,
            weights,
            bias: vec![10.0],
            activation: Activation::Linear,
        };
        let x = Tensor::from_vec(1, 2, 1, 1, vec![3.0, 4.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data, vec![3.0 + 8.0 + 10.0]);
    }

    #[test]
    fn maxpool_picks_window_max() {
        #[rustfmt::skip]
        let x = Tensor::from_vec(1, 1, 4, 4, vec![
            1.0, 2.0, 5.0, 6.0,
            3.0, 4.0, 7.0, 8.0,
            9.0, 10.0, 13.0, 14.0,
            11.0, 12.0, 15.0, 16.0,
        ]);
        let y = Layer::MaxPool2.forward(&x);
        assert_eq!(y.data, vec![4.0, 8.0, 12.0, 16.0]);
        assert_eq!((y.h, y.w), (2, 2));
    }

    #[test]
    fn dense_computes_affine_map() {
        let layer = Layer::Dense {
            in_f: 2,
            out_f: 2,
            weights: vec![1.0, 2.0, 3.0, 4.0], // rows: [1,2], [3,4]
            bias: vec![0.5, -0.5],
            activation: Activation::Linear,
        };
        let x = Tensor::from_vec(1, 2, 1, 1, vec![10.0, 20.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data, vec![50.5, 109.5]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(2, 3, 1, 1, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let y = Layer::Softmax.forward(&x);
        for n in 0..2 {
            let sum: f32 = y.data[n * 3..(n + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Largest logit gets the largest probability.
        assert!(y.data[2] > y.data[1] && y.data[1] > y.data[0]);
    }

    #[test]
    fn flatten_reshapes() {
        let x = Tensor::zeros(2, 3, 4, 4);
        let y = Layer::Flatten.forward(&x);
        assert_eq!((y.c, y.h, y.w), (48, 1, 1));
        assert_eq!(y.n, 2);
    }

    #[test]
    fn output_shapes_compose() {
        let conv = Layer::Conv2d {
            in_c: 3,
            out_c: 8,
            weights: vec![0.0; 8 * 3 * 9],
            bias: vec![0.0; 8],
            activation: Activation::Relu,
        };
        assert_eq!(conv.output_shape(3, 32, 32), (8, 32, 32));
        assert_eq!(Layer::MaxPool2.output_shape(8, 32, 32), (8, 16, 16));
        assert_eq!(Layer::Flatten.output_shape(8, 4, 4), (128, 1, 1));
    }
}
