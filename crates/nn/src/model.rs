//! Sequential models with named layers, per-layer activation capture, and
//! deterministic per-epoch checkpoints.

use mistique_dataframe::{Column, ColumnData, DataFrame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arch::{ArchConfig, LayerSpec};
use crate::layer::{Activation, Layer};
use crate::tensor::Tensor;

/// A named layer inside a model.
#[derive(Clone, Debug)]
pub struct NamedLayer {
    /// Layer name, `layer1..layerN` in execution order (as the paper
    /// references "Layer1", "Layer11", "Layer21").
    pub name: String,
    /// The layer itself.
    pub layer: Layer,
    /// Output shape `(c, h, w)` for the model's input geometry.
    pub out_shape: (usize, usize, usize),
}

/// A sequential network instantiated from an [`ArchConfig`] at a specific
/// training checkpoint.
///
/// Checkpoints model the paper's "checkpoint model weights after every 10%
/// of the epochs": weights are a deterministic function of
/// `(arch seed, layer index, epoch)` — except frozen layers, whose weights
/// ignore the epoch. Re-instantiating the same `(arch, seed, epoch)`
/// reproduces bit-identical weights, which is what lets dedup collapse the
/// frozen VGG16 conv intermediates across checkpoints (Fig 6b).
#[derive(Clone, Debug)]
pub struct Model {
    /// Architecture name.
    pub arch_name: String,
    /// Checkpoint epoch this instance represents.
    pub epoch: u32,
    /// Named layers in order.
    pub layers: Vec<NamedLayer>,
    /// Input channels.
    pub in_c: usize,
    /// Input height/width.
    pub in_hw: usize,
}

fn init_weights(rng: &mut StdRng, n: usize, fan_in: usize) -> Vec<f32> {
    // He-style uniform init keeps activations in a stable range through deep
    // ReLU stacks.
    let bound = (2.0 / fan_in as f32).sqrt();
    (0..n).map(|_| rng.gen_range(-bound..bound)).collect()
}

impl Model {
    /// Instantiate `arch` at `epoch` with deterministic weights derived from
    /// `seed`.
    pub fn build(arch: &ArchConfig, seed: u64, epoch: u32) -> Model {
        let mut layers = Vec::new();
        let (mut c, mut h, mut w) = (arch.in_c, arch.in_hw, arch.in_hw);
        let mut flattened = false;
        let mut idx = 0usize;
        let mut push = |layer: Layer, c: &mut usize, h: &mut usize, w: &mut usize| {
            let (oc, oh, ow) = layer.output_shape(*c, *h, *w);
            idx += 1;
            let named = NamedLayer {
                name: format!("layer{idx}"),
                layer,
                out_shape: (oc, oh, ow),
            };
            *c = oc;
            *h = oh;
            *w = ow;
            named
        };

        for (li, spec) in arch.layers.iter().enumerate() {
            // Frozen layers derive weights from epoch 0 regardless of the
            // requested checkpoint.
            let effective_epoch = if li < arch.frozen_prefix { 0 } else { epoch };
            let mut rng = StdRng::seed_from_u64(
                seed ^ (li as u64).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ u64::from(effective_epoch).wrapping_mul(0xD1B54A32D192ED03),
            );
            match spec {
                LayerSpec::Conv(out_c) => {
                    let fan_in = c * 9;
                    let weights = init_weights(&mut rng, out_c * c * 9, fan_in);
                    let bias = init_weights(&mut rng, *out_c, fan_in);
                    layers.push(push(
                        Layer::Conv2d {
                            in_c: c,
                            out_c: *out_c,
                            weights,
                            bias,
                            activation: Activation::Relu,
                        },
                        &mut c,
                        &mut h,
                        &mut w,
                    ));
                }
                LayerSpec::Pool => {
                    layers.push(push(Layer::MaxPool2, &mut c, &mut h, &mut w));
                }
                LayerSpec::Dense(out_f) => {
                    if !flattened {
                        layers.push(push(Layer::Flatten, &mut c, &mut h, &mut w));
                        flattened = true;
                    }
                    let in_f = c;
                    let weights = init_weights(&mut rng, out_f * in_f, in_f);
                    let bias = init_weights(&mut rng, *out_f, in_f);
                    layers.push(push(
                        Layer::Dense {
                            in_f,
                            out_f: *out_f,
                            weights,
                            bias,
                            activation: Activation::Relu,
                        },
                        &mut c,
                        &mut h,
                        &mut w,
                    ));
                }
                LayerSpec::Classifier => {
                    if !flattened {
                        layers.push(push(Layer::Flatten, &mut c, &mut h, &mut w));
                        flattened = true;
                    }
                    let in_f = c;
                    let out_f = arch.n_classes;
                    let weights = init_weights(&mut rng, out_f * in_f, in_f);
                    let bias = init_weights(&mut rng, out_f, in_f);
                    layers.push(push(
                        Layer::Dense {
                            in_f,
                            out_f,
                            weights,
                            bias,
                            activation: Activation::Softmax,
                        },
                        &mut c,
                        &mut h,
                        &mut w,
                    ));
                }
            }
        }

        Model {
            arch_name: arch.name.clone(),
            epoch,
            layers,
            in_c: arch.in_c,
            in_hw: arch.in_hw,
        }
    }

    /// Number of layers (each conv/dense + its ReLU count separately, as do
    /// pools, flatten, and softmax).
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Model id string: `ARCH@epochE`.
    pub fn id(&self) -> String {
        format!("{}@epoch{}", self.arch_name, self.epoch)
    }

    /// Total parameter bytes (the cost model's `t_model_load` scales on this).
    pub fn param_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.layer.n_params() * 4).sum()
    }

    /// Forward `x` through layers `0..=upto`, returning only the final
    /// activation (the cheap path when one layer is wanted).
    pub fn forward_to(&self, x: &Tensor, upto: usize) -> Tensor {
        assert!(upto < self.layers.len(), "layer {upto} out of range");
        let mut cur = x.clone();
        for nl in &self.layers[..=upto] {
            cur = nl.layer.forward(&cur);
        }
        cur
    }

    /// Forward `x` through the whole network, returning every layer's
    /// activation (the logging path: `log_intermediates`).
    pub fn forward_collect(&self, x: &Tensor) -> Vec<(String, Tensor)> {
        let mut out = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for nl in &self.layers {
            cur = nl.layer.forward(&cur);
            out.push((nl.name.clone(), cur.clone()));
        }
        out
    }

    /// Forward in batches of `batch_size`, as the paper's evaluation does
    /// ("Batch size for the DNN queries was set to 1000").
    pub fn forward_to_batched(&self, x: &Tensor, upto: usize, batch_size: usize) -> Tensor {
        assert!(batch_size > 0, "batch size must be positive");
        let mut parts = Vec::new();
        let mut start = 0;
        while start < x.n {
            let end = (start + batch_size).min(x.n);
            parts.push(self.forward_to(&x.slice_examples(start, end), upto));
            start = end;
        }
        Tensor::concat_examples(&parts)
    }

    /// Per-example FLOP estimate up to and including layer `upto`.
    pub fn flops_to(&self, upto: usize) -> u64 {
        let (mut c, mut h, mut w) = (self.in_c, self.in_hw, self.in_hw);
        let mut total = 0u64;
        for nl in &self.layers[..=upto] {
            total += nl.layer.flops_per_example(c, h, w);
            let s = nl.layer.output_shape(c, h, w);
            c = s.0;
            h = s.1;
            w = s.2;
        }
        total
    }
}

/// Convert one layer's activation tensor into a MISTIQUE dataframe: one row
/// per example, one f32 column per flattened activation (`n0..nK`).
pub fn activation_to_frame(t: &Tensor) -> DataFrame {
    let f = t.features_per_example();
    let mut cols = Vec::with_capacity(f);
    for j in 0..f {
        let values: Vec<f32> = (0..t.n).map(|i| t.example(i)[j]).collect();
        cols.push(Column::new(format!("n{j}"), ColumnData::F32(values)));
    }
    DataFrame::from_columns(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{simple_cnn, vgg16_cifar};

    fn tiny_input(n: usize) -> Tensor {
        let mut data = Vec::with_capacity(n * 3 * 32 * 32);
        for i in 0..n * 3 * 32 * 32 {
            data.push(((i % 255) as f32) / 255.0 - 0.5);
        }
        Tensor::from_vec(n, 3, 32, 32, data)
    }

    #[test]
    fn build_is_deterministic() {
        let arch = simple_cnn(8);
        let a = Model::build(&arch, 1, 3);
        let b = Model::build(&arch, 1, 3);
        let x = tiny_input(2);
        assert_eq!(
            a.forward_to(&x, a.n_layers() - 1).data,
            b.forward_to(&x, b.n_layers() - 1).data
        );
    }

    #[test]
    fn epochs_change_trainable_layers_only() {
        let arch = vgg16_cifar(16);
        let e0 = Model::build(&arch, 1, 0);
        let e5 = Model::build(&arch, 1, 5);
        let x = tiny_input(2);
        // Frozen conv stack: activations before the head are identical.
        let last_pool = e0
            .layers
            .iter()
            .rposition(|l| matches!(l.layer, Layer::MaxPool2))
            .unwrap();
        assert_eq!(
            e0.forward_to(&x, last_pool).data,
            e5.forward_to(&x, last_pool).data,
            "frozen conv activations must match across checkpoints"
        );
        // Head differs.
        let last = e0.n_layers() - 1;
        assert_ne!(e0.forward_to(&x, last).data, e5.forward_to(&x, last).data);
    }

    #[test]
    fn simple_cnn_checkpoints_all_differ() {
        let arch = simple_cnn(8);
        let e0 = Model::build(&arch, 1, 0);
        let e1 = Model::build(&arch, 1, 1);
        let x = tiny_input(1);
        assert_ne!(e0.forward_to(&x, 0).data, e1.forward_to(&x, 0).data);
    }

    #[test]
    fn forward_collect_matches_forward_to() {
        let arch = simple_cnn(16);
        let m = Model::build(&arch, 2, 0);
        let x = tiny_input(2);
        let all = m.forward_collect(&x);
        assert_eq!(all.len(), m.n_layers());
        for (i, (name, t)) in all.iter().enumerate() {
            assert_eq!(name, &format!("layer{}", i + 1));
            assert_eq!(t.data, m.forward_to(&x, i).data, "layer {i}");
        }
    }

    #[test]
    fn batched_forward_equals_unbatched() {
        let arch = simple_cnn(16);
        let m = Model::build(&arch, 2, 0);
        let x = tiny_input(5);
        let full = m.forward_to(&x, m.n_layers() - 1);
        let batched = m.forward_to_batched(&x, m.n_layers() - 1, 2);
        assert_eq!(full, batched);
    }

    #[test]
    fn final_output_is_probability_distribution() {
        let arch = simple_cnn(16);
        let m = Model::build(&arch, 3, 0);
        let x = tiny_input(3);
        let probs = m.forward_to(&x, m.n_layers() - 1);
        assert_eq!(probs.c, 10);
        for n in 0..3 {
            let sum: f32 = probs.example(n).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(probs.example(n).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn layer_sizes_shrink_with_depth_for_vgg() {
        // The Layer1 anomaly (Fig 5d) requires early layers to dominate size.
        let arch = vgg16_cifar(8);
        let m = Model::build(&arch, 1, 0);
        let first = m.layers[0].out_shape;
        let last_conv = m
            .layers
            .iter()
            .rfind(|l| matches!(l.layer, Layer::Conv2d { .. }))
            .unwrap()
            .out_shape;
        let size = |s: (usize, usize, usize)| s.0 * s.1 * s.2;
        assert!(
            size(first) > 4 * size(last_conv),
            "{first:?} vs {last_conv:?}"
        );
    }

    #[test]
    fn activation_frame_layout() {
        let t = Tensor::from_vec(2, 2, 1, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let df = activation_to_frame(&t);
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.n_cols(), 2);
        assert_eq!(df.column("n0").unwrap().data.to_f64(), vec![1.0, 3.0]);
        assert_eq!(df.column("n1").unwrap().data.to_f64(), vec![2.0, 4.0]);
    }

    #[test]
    fn flops_increase_with_depth() {
        let arch = vgg16_cifar(8);
        let m = Model::build(&arch, 1, 0);
        let early = m.flops_to(0);
        let late = m.flops_to(m.n_layers() - 1);
        assert!(
            late > early * 5,
            "deep layers accumulate cost: {early} vs {late}"
        );
    }
}
