//! DNN inference substrate (Sec 7.1.2's CIFAR10 models, built from scratch).
//!
//! MISTIQUE logs the *hidden representations* a network produces at every
//! layer. The paper uses TensorFlow; here the forward pass is implemented
//! directly:
//!
//! - [`tensor::Tensor`]: NCHW f32 tensors,
//! - [`layer::Layer`]: Conv2d (3×3, pad 1), ReLU, MaxPool 2×2, Flatten,
//!   Dense, Softmax,
//! - [`model::Model`]: a sequential network with named layers,
//!   per-layer activation capture, and deterministic per-epoch checkpoints,
//! - [`arch`]: the two evaluation architectures — `vgg16_cifar` (13 conv +
//!   2 FC head; conv weights *frozen* across checkpoints, mirroring the
//!   paper's fine-tuning setup where only the head trains) and `simple_cnn`
//!   (4 conv + 2 FC, everything trains ⇒ every checkpoint differs),
//! - [`dataset`]: deterministic synthetic CIFAR10-like images with
//!   class-dependent structure, so class-sensitive diagnostics (KNN, SVCCA,
//!   per-class averages) have signal to find.
//!
//! Only inference is needed: the paper's diagnostics all consume forward
//! activations of checkpointed weights, never gradients.

pub mod arch;
pub mod dataset;
pub mod layer;
pub mod model;
pub mod tensor;

pub use arch::{simple_cnn, vgg16_cifar, ArchConfig, LayerSpec};
pub use dataset::CifarLike;
pub use layer::Layer;
pub use model::Model;
pub use tensor::Tensor;
