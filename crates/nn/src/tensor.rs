//! NCHW tensors.

/// A dense f32 tensor in NCHW layout (batch, channels, height, width).
/// Fully-connected activations use `h = w = 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    /// Batch size.
    pub n: usize,
    /// Channels (or features for dense layers).
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major NCHW data, length `n * c * h * w`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor of the given shape.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Tensor {
        Tensor {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wrap existing data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(data.len(), n * c * h * w, "tensor shape mismatch");
        Tensor { n, c, h, w, data }
    }

    /// Features per example (`c * h * w`).
    #[inline]
    pub fn features_per_example(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow example `i`'s features as a contiguous slice.
    #[inline]
    pub fn example(&self, i: usize) -> &[f32] {
        let f = self.features_per_example();
        &self.data[i * f..(i + 1) * f]
    }

    /// Value at `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }

    /// Mutable value at `(n, c, h, w)`.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        &mut self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }

    /// Select a batch sub-range `[start, end)` of examples.
    pub fn slice_examples(&self, start: usize, end: usize) -> Tensor {
        let f = self.features_per_example();
        Tensor {
            n: end - start,
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data[start * f..end * f].to_vec(),
        }
    }

    /// Concatenate tensors along the batch dimension.
    ///
    /// # Panics
    /// Panics on shape mismatch or empty input.
    pub fn concat_examples(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "nothing to concatenate");
        let (c, h, w) = (parts[0].c, parts[0].h, parts[0].w);
        let mut data = Vec::with_capacity(parts.iter().map(|t| t.len()).sum());
        let mut n = 0;
        for t in parts {
            assert_eq!((t.c, t.h, t.w), (c, h, w), "shape mismatch in concat");
            data.extend_from_slice(&t.data);
            n += t.n;
        }
        Tensor { n, c, h, w, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_layout() {
        let mut t = Tensor::zeros(2, 3, 4, 5);
        *t.at_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at(1, 2, 3, 4), 7.0);
        assert_eq!(t.data[((3 + 2) * 4 + 3) * 5 + 4], 7.0);
    }

    #[test]
    fn example_slices_are_contiguous() {
        let data: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let t = Tensor::from_vec(2, 3, 2, 2, data);
        assert_eq!(t.features_per_example(), 12);
        assert_eq!(t.example(1)[0], 12.0);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let data: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let t = Tensor::from_vec(4, 10, 1, 1, data);
        let a = t.slice_examples(0, 2);
        let b = t.slice_examples(2, 4);
        let back = Tensor::concat_examples(&[a, b]);
        assert_eq!(back, t);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        Tensor::from_vec(1, 2, 2, 2, vec![0.0; 7]);
    }
}
