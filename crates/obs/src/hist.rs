//! Log-linear histograms (HdrHistogram-style bucketing, built from scratch).
//!
//! Values in `[0, 16)` get unit-width buckets; above that, each power of two
//! is split into 16 linear sub-buckets, so the relative quantization error
//! is bounded by 1/16 ≈ 6.25% while the whole range of `u64` fits in 976
//! buckets (≈ 8 KiB of atomics per histogram). Recording is a handful of
//! relaxed atomic ops — safe for the chunk read/write hot path.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-buckets per power of two (and the width of the initial linear range).
const SUB: u64 = 16;
/// Bucket count: 16 unit buckets + 16 per exponent for exponents 4..=63.
pub(crate) const N_BUCKETS: usize = 16 + 60 * 16;

/// Bucket index of a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // 4..=63
        let sub = ((v >> (exp - 4)) & 0xf) as usize;
        16 + (exp - 4) * 16 + sub
    }
}

/// Inclusive lower bound and exclusive upper bound of a bucket, as u128 so
/// the topmost bucket cannot overflow.
fn bucket_bounds(idx: usize) -> (u128, u128) {
    if idx < SUB as usize {
        (idx as u128, idx as u128 + 1)
    } else {
        let exp = 4 + (idx - 16) / 16;
        let sub = ((idx - 16) % 16) as u128;
        let width = 1u128 << (exp - 4);
        let lo = (16 + sub) << (exp - 4);
        (lo, lo + width)
    }
}

/// A bucket's representative value (its midpoint, saturated to u64).
fn bucket_mid(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    let mid = lo + (hi - lo) / 2;
    u64::try_from(mid).unwrap_or(u64::MAX)
}

pub(crate) struct HistCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn atomic_min(a: &AtomicU64, v: u64) {
    let mut cur = a.load(Ordering::Relaxed);
    while v < cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

fn atomic_max(a: &AtomicU64, v: u64) {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(c) => cur = c,
        }
    }
}

/// One non-empty histogram bucket, exported for Prometheus `_bucket`
/// series: `le` is the bucket's inclusive upper bound (saturated to `u64`),
/// `count` the number of values it holds (non-cumulative).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistBucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Values recorded into this bucket (non-cumulative).
    pub count: u64,
}

/// Percentile summary of a histogram at one point in time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (within the bucket quantization error).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (tail latency for SLO burn detection).
    pub p999: u64,
    /// The non-empty buckets, in increasing `le` order (Prometheus
    /// exposition builds its cumulative `_bucket` series from these).
    pub buckets: Vec<HistBucket>,
}

/// A concurrent log-linear histogram of `u64` values. Durations are recorded
/// in nanoseconds. Handles are cheap clones of one shared core.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistCore>);

impl Histogram {
    /// A standalone histogram not attached to any registry.
    pub fn standalone() -> Histogram {
        Histogram(Arc::new(HistCore::new()))
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        atomic_min(&core.min, v);
        atomic_max(&core.max, v);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.0.min.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Value at quantile `q` in `[0, 1]`, clamped to the observed min/max so
    /// the answer is always a value that could actually have been recorded.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the requested quantile.
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut value = self.max();
        for (idx, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                value = bucket_mid(idx);
                break;
            }
        }
        value.clamp(self.min(), self.max())
    }

    /// The non-empty buckets (inclusive upper bound, count), in increasing
    /// bound order.
    pub fn nonzero_buckets(&self) -> Vec<HistBucket> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let count = b.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let (_, hi) = bucket_bounds(idx);
                Some(HistBucket {
                    le: u64::try_from(hi - 1).unwrap_or(u64::MAX),
                    count,
                })
            })
            .collect()
    }

    /// Point-in-time summary.
    pub fn summary(&self) -> HistSummary {
        let count = self.count();
        let sum = self.sum();
        HistSummary {
            count,
            sum,
            min: self.min(),
            max: self.max(),
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            p999: self.percentile(0.999),
            buckets: self.nonzero_buckets(),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_unit_buckets() {
        for v in 0u64..16 {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_bounds(v as usize), (v as u128, v as u128 + 1));
        }
    }

    #[test]
    fn bucket_boundaries_are_contiguous_and_monotone() {
        // Every bucket's upper bound is the next bucket's lower bound.
        for idx in 0..N_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (lo, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, lo, "gap between buckets {idx} and {}", idx + 1);
        }
        // And every value maps into a bucket whose bounds contain it.
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1023,
            1024,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                (lo..hi).contains(&(v as u128)),
                "value {v} outside bucket {idx} [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Bucket width / lower bound <= 1/16 beyond the linear range.
        for v in [100u64, 999, 12_345, 1 << 30, (1 << 50) + 12_345] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 1.0 / 16.0 + 1e-12, "value {v}");
        }
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let h = Histogram::standalone();
        h.record(100);
        assert_eq!(h.percentile(0.5), 100);
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn uniform_percentiles_land_close() {
        let h = Histogram::standalone();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50) as f64;
        let p90 = h.percentile(0.90) as f64;
        let p95 = h.percentile(0.95) as f64;
        let p99 = h.percentile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.07, "p50 = {p50}");
        assert!((p90 - 9_000.0).abs() / 9_000.0 < 0.07, "p90 = {p90}");
        assert!((p95 - 9_500.0).abs() / 9_500.0 < 0.07, "p95 = {p95}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.07, "p99 = {p99}");
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert!((s.mean - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::standalone();
        let s = h.summary();
        assert_eq!(s, HistSummary::default());
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn concurrent_records_preserve_count_and_sum() {
        let h = Histogram::standalone();
        let threads = 8u64;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads * per_thread);
        let n = threads * per_thread;
        assert_eq!(h.sum(), n * (n - 1) / 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), n - 1);
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let h = Histogram::standalone();
        for v in [1u64, 5, 9, 100, 1_000, 50_000, 1_000_000] {
            h.record(v);
        }
        let s = h.summary();
        assert!(
            s.p50 <= s.p90
                && s.p90 <= s.p95
                && s.p95 <= s.p99
                && s.p99 <= s.p999
                && s.p999 <= s.max
        );
    }

    #[test]
    fn nonzero_buckets_cover_every_recorded_value() {
        let h = Histogram::standalone();
        for v in [0u64, 3, 3, 17, 1_000, u64::MAX] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), h.count());
        // Bounds increase strictly and contain each value's bucket.
        for w in buckets.windows(2) {
            assert!(w[0].le < w[1].le);
        }
        assert_eq!(buckets.last().unwrap().le, u64::MAX);
        let s = h.summary();
        assert_eq!(s.buckets, buckets);
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let h = Histogram::standalone();
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.sum(), 3_000);
    }
}
