//! Minimal hand-rolled JSON parser (this crate is dependency-free).
//!
//! Just enough JSON to read back the flight recorder's own JSONL segments
//! (see [`crate::timeline`]): objects, arrays, strings with the escapes the
//! emitter produces, numbers, booleans, null. Numbers are kept as `f64`
//! plus the raw text so exact `u64` sequence numbers survive round-trips.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, with the raw literal kept for lossless integer access.
    Num(f64, String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (insertion order is irrelevant to the recorder).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v, _) => Some(*v),
            _ => None,
        }
    }

    /// Number as `u64`, parsed from the raw literal so values above 2^53
    /// stay exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// Object members.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error —
/// a torn JSONL line must not silently parse as its untorn prefix.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("invalid number {raw:?} at byte {start}"))?;
    Ok(JsonValue::Num(v, raw.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogates are not emitted by our writer; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("-2").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn u64_survives_above_f64_precision() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":{"d":null}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut emitted = String::new();
        crate::export::push_json_string(&mut emitted, "a\"b\\c\nd\te\u{1}");
        let v = parse(&emitted).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn torn_input_is_an_error() {
        for torn in [
            "{\"a\":1",
            "{\"a\":1}x",
            "[1,2",
            "\"unterminated",
            "{\"a\"}",
            "",
        ] {
            assert!(parse(torn).is_err(), "input {torn:?} must not parse");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }
}
