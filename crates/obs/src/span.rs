//! Lightweight hierarchical span tracing.
//!
//! A [`Span`] is a timed guard: created via [`crate::Obs::span`] (or the
//! [`crate::span!`] macro, which also attaches key=value attributes),
//! finished explicitly with [`Span::finish`] (returning the measured
//! duration, so callers can use the span itself as their timer) or
//! implicitly on drop. Finished spans land in a bounded ring buffer of
//! recent spans and in per-name aggregate histograms. Parent links are
//! inferred from a thread-local stack of active spans.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::hist::{HistCore, HistSummary, Histogram};

/// How many finished spans the ring buffer keeps.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 256;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `fetch.read`).
    pub name: String,
    /// Name of the span active on this thread when this one started.
    pub parent: Option<String>,
    /// Start time in nanoseconds since the owning `Obs` was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form key=value attributes.
    pub attrs: Vec<(String, String)>,
}

/// Aggregate timing of all finished spans sharing one name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanSummary {
    /// Number of finished spans.
    pub count: u64,
    /// Total nanoseconds across all of them.
    pub total_ns: u64,
    /// Mean nanoseconds.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile nanoseconds.
    pub p99_ns: u64,
    /// Slowest span.
    pub max_ns: u64,
}

impl From<HistSummary> for SpanSummary {
    fn from(h: HistSummary) -> SpanSummary {
        SpanSummary {
            count: h.count,
            total_ns: h.sum,
            mean_ns: h.mean,
            p50_ns: h.p50,
            p90_ns: h.p90,
            p99_ns: h.p99,
            max_ns: h.max,
        }
    }
}

pub(crate) struct Tracer {
    epoch: Instant,
    recent: Mutex<VecDeque<SpanRecord>>,
    aggs: RwLock<HashMap<String, Arc<HistCore>>>,
    capacity: usize,
}

impl Tracer {
    pub(crate) fn new(epoch: Instant, capacity: usize) -> Tracer {
        Tracer {
            epoch,
            recent: Mutex::new(VecDeque::with_capacity(capacity)),
            aggs: RwLock::new(HashMap::new()),
            capacity,
        }
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    fn agg(&self, name: &str) -> Histogram {
        if let Some(core) = self.aggs.read().unwrap().get(name) {
            return Histogram(Arc::clone(core));
        }
        let mut w = self.aggs.write().unwrap();
        let core = w
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram(Arc::clone(core))
    }

    pub(crate) fn record(&self, rec: SpanRecord) {
        self.agg(&rec.name).record(rec.dur_ns);
        let mut ring = self.recent.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Per-name aggregate summaries.
    pub(crate) fn summaries(&self) -> Vec<(String, SpanSummary)> {
        self.aggs
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| {
                (
                    name.clone(),
                    SpanSummary::from(Histogram(Arc::clone(core)).summary()),
                )
            })
            .collect()
    }

    /// Snapshot of the ring buffer, oldest first.
    pub(crate) fn recent(&self) -> Vec<SpanRecord> {
        self.recent.lock().unwrap().iter().cloned().collect()
    }
}

thread_local! {
    /// Stack of `(tracer identity, span name)` for the spans currently open
    /// on this thread; the tracer identity keeps concurrent `Obs` instances
    /// from claiming each other's spans as parents.
    static ACTIVE: std::cell::RefCell<Vec<(usize, String)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// An in-flight timed span. Dropping it records it; [`Span::finish`] records
/// it and hands back the measured duration.
pub struct Span {
    tracer: Arc<Tracer>,
    name: String,
    attrs: Vec<(String, String)>,
    parent: Option<String>,
    start: Instant,
    start_ns: u64,
    finished: bool,
}

impl Span {
    pub(crate) fn begin(tracer: Arc<Tracer>, name: &str) -> Span {
        let start = Instant::now();
        let start_ns =
            u64::try_from(start.duration_since(tracer.epoch()).as_nanos()).unwrap_or(u64::MAX);
        let id = Arc::as_ptr(&tracer) as usize;
        let parent = ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack
                .iter()
                .rev()
                .find(|(tid, _)| *tid == id)
                .map(|(_, n)| n.clone());
            stack.push((id, name.to_string()));
            parent
        });
        Span {
            tracer,
            name: name.to_string(),
            attrs: Vec::new(),
            parent,
            start,
            start_ns,
            finished: false,
        }
    }

    /// Attach a key=value attribute (e.g. the intermediate being fetched).
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Time elapsed since the span started (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Finish the span and return its duration.
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if self.finished {
            return dur;
        }
        self.finished = true;
        let id = Arc::as_ptr(&self.tracer) as usize;
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|(tid, n)| *tid == id && *n == self.name)
            {
                stack.remove(pos);
            }
        });
        self.tracer.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            parent: self.parent.take(),
            start_ns: self.start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            attrs: std::mem::take(&mut self.attrs),
        });
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn finish_returns_duration_and_records() {
        let obs = Obs::new();
        let mut sp = obs.span("work");
        sp.attr("k", "v");
        std::thread::sleep(Duration::from_millis(2));
        let d = sp.finish();
        assert!(d >= Duration::from_millis(2));
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].name, "work");
        assert_eq!(recent[0].attrs, vec![("k".to_string(), "v".to_string())]);
        assert!(recent[0].dur_ns >= 2_000_000);
        let aggs = obs.span_summaries();
        let s = aggs.iter().find(|(n, _)| n == "work").unwrap();
        assert_eq!(s.1.count, 1);
    }

    #[test]
    fn drop_records_too() {
        let obs = Obs::new();
        {
            let _sp = obs.span("dropped");
        }
        assert_eq!(obs.recent_spans().len(), 1);
    }

    #[test]
    fn nesting_sets_parent() {
        let obs = Obs::new();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
        }
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), 2);
        // Inner finished first.
        assert_eq!(recent[0].name, "inner");
        assert_eq!(recent[0].parent.as_deref(), Some("outer"));
        assert_eq!(recent[1].name, "outer");
        assert_eq!(recent[1].parent, None);
    }

    #[test]
    fn two_obs_instances_do_not_share_parents() {
        let a = Obs::new();
        let b = Obs::new();
        let _outer = a.span("a.outer");
        {
            let _inner = b.span("b.inner");
        }
        let recent = b.recent_spans();
        assert_eq!(recent[0].parent, None, "parent from another Obs leaked");
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let obs = Obs::new();
        for i in 0..(DEFAULT_RING_CAPACITY + 10) {
            let mut sp = obs.span("s");
            sp.attr("i", i);
            drop(sp);
        }
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), DEFAULT_RING_CAPACITY);
        // Oldest entries were evicted: first kept span is i=10.
        assert_eq!(recent[0].attrs[0].1, "10");
        let aggs = obs.span_summaries();
        let s = aggs.iter().find(|(n, _)| n == "s").unwrap();
        assert_eq!(
            s.1.count,
            (DEFAULT_RING_CAPACITY + 10) as u64,
            "aggregates keep counting past the ring"
        );
    }

    #[test]
    fn span_macro_attaches_attrs() {
        let obs = Obs::new();
        let interm = "m1.stage3";
        let sp = crate::span!(obs, "fetch", interm = interm, n = 42);
        drop(sp);
        let recent = obs.recent_spans();
        assert_eq!(
            recent[0].attrs,
            vec![
                ("interm".to_string(), "m1.stage3".to_string()),
                ("n".to_string(), "42".to_string()),
            ]
        );
    }
}
