//! Lightweight hierarchical span tracing.
//!
//! A [`Span`] is a timed guard: created via [`crate::Obs::span`] (or the
//! [`crate::span!`] macro, which also attaches key=value attributes),
//! finished explicitly with [`Span::finish`] (returning the measured
//! duration, so callers can use the span itself as their timer) or
//! implicitly on drop. Finished spans land in a bounded ring buffer of
//! recent spans and in per-name aggregate histograms.
//!
//! Every span carries a unique `id`, a `parent_id` and a `trace_id` (the id
//! of the root span of its tree), so finished records can be reassembled
//! into trees (see [`crate::tree`]). On a single thread the parent is
//! inferred from a thread-local stack of active spans; across threads —
//! e.g. parallel read workers — the spawning code captures a
//! [`SpanContext`] and starts worker spans with
//! [`crate::Obs::span_with_parent`], so the tree looks the same at every
//! worker count.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use crate::hist::{HistCore, HistSummary, Histogram};

/// How many finished spans the ring buffer keeps by default (configurable
/// per `Obs` via [`crate::Obs::with_ring_capacity`]).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique (per `Obs`) span id; ids increase in creation order, so a
    /// parent's id is always smaller than its children's.
    pub id: u64,
    /// Id of the parent span, if any.
    pub parent_id: Option<u64>,
    /// Id of the root span of this span's tree (== `id` for roots).
    pub trace_id: u64,
    /// Small dense id of the thread the span ran on (not the OS tid).
    pub thread: u64,
    /// Span name (e.g. `fetch.read`).
    pub name: String,
    /// Name of the parent span (kept alongside `parent_id` for cheap
    /// text rendering).
    pub parent: Option<String>,
    /// Start time in nanoseconds since the owning `Obs` was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Free-form key=value attributes.
    pub attrs: Vec<(String, String)>,
}

/// The identity of an in-flight span, used to link spans across threads:
/// capture it with [`crate::Obs::current_context`] (or [`Span::context`])
/// before spawning workers, then start each worker's span with
/// [`crate::Obs::span_with_parent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// Id of the span that will become the parent.
    pub span_id: u64,
    /// Trace id inherited by every descendant.
    pub trace_id: u64,
    /// Name of the parent span.
    pub name: String,
}

/// Aggregate timing of all finished spans sharing one name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanSummary {
    /// Number of finished spans.
    pub count: u64,
    /// Total nanoseconds across all of them.
    pub total_ns: u64,
    /// Mean nanoseconds.
    pub mean_ns: f64,
    /// Median nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile nanoseconds.
    pub p99_ns: u64,
    /// Slowest span.
    pub max_ns: u64,
}

impl From<HistSummary> for SpanSummary {
    fn from(h: HistSummary) -> SpanSummary {
        SpanSummary {
            count: h.count,
            total_ns: h.sum,
            mean_ns: h.mean,
            p50_ns: h.p50,
            p90_ns: h.p90,
            p99_ns: h.p99,
            max_ns: h.max,
        }
    }
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread id, assigned on first use.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

pub(crate) struct Tracer {
    epoch: Instant,
    recent: Mutex<VecDeque<SpanRecord>>,
    aggs: RwLock<HashMap<String, Arc<HistCore>>>,
    capacity: usize,
    next_id: AtomicU64,
}

impl Tracer {
    pub(crate) fn new(epoch: Instant, capacity: usize) -> Tracer {
        Tracer {
            epoch,
            recent: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            aggs: RwLock::new(HashMap::new()),
            capacity,
            next_id: AtomicU64::new(1),
        }
    }

    pub(crate) fn epoch(&self) -> Instant {
        self.epoch
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn agg(&self, name: &str) -> Histogram {
        if let Some(core) = self.aggs.read().unwrap().get(name) {
            return Histogram(Arc::clone(core));
        }
        let mut w = self.aggs.write().unwrap();
        let core = w
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram(Arc::clone(core))
    }

    pub(crate) fn record(&self, rec: SpanRecord) {
        self.agg(&rec.name).record(rec.dur_ns);
        let mut ring = self.recent.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// Per-name aggregate summaries.
    pub(crate) fn summaries(&self) -> Vec<(String, SpanSummary)> {
        self.aggs
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| {
                (
                    name.clone(),
                    SpanSummary::from(Histogram(Arc::clone(core)).summary()),
                )
            })
            .collect()
    }

    /// Snapshot of the ring buffer, oldest first.
    pub(crate) fn recent(&self) -> Vec<SpanRecord> {
        self.recent.lock().unwrap().iter().cloned().collect()
    }
}

/// Record an already-measured span directly into the tracer, bypassing the
/// thread-local active stack. Used when logical units of work are executed
/// out-of-line (e.g. striped across worker threads at a finer granularity)
/// and their per-unit timing is only known after the fact.
pub(crate) fn record_manual(
    tracer: &Arc<Tracer>,
    name: &str,
    parent: Option<&SpanContext>,
    start_ns: u64,
    dur_ns: u64,
    attrs: Vec<(String, String)>,
) {
    let id = tracer.next_id();
    let (parent_id, trace_id, parent_name) = match parent {
        Some(c) => (Some(c.span_id), c.trace_id, Some(c.name.clone())),
        None => (None, id, None),
    };
    tracer.record(SpanRecord {
        id,
        parent_id,
        trace_id,
        thread: current_thread_id(),
        name: name.to_string(),
        parent: parent_name,
        start_ns,
        dur_ns,
        attrs,
    });
}

/// The innermost active span of one tracer on the current thread.
pub(crate) fn current_context(tracer: &Arc<Tracer>) -> Option<SpanContext> {
    let key = Arc::as_ptr(tracer) as usize;
    ACTIVE.with(|stack| {
        stack
            .borrow()
            .iter()
            .rev()
            .find(|a| a.tracer == key)
            .map(|a| SpanContext {
                span_id: a.span_id,
                trace_id: a.trace_id,
                name: a.name.clone(),
            })
    })
}

/// One entry of the thread-local active-span stack. The tracer identity
/// keeps concurrent `Obs` instances from claiming each other's spans as
/// parents; the span id lets `end` remove exactly this entry even when
/// same-named spans nest.
struct ActiveSpan {
    tracer: usize,
    span_id: u64,
    trace_id: u64,
    name: String,
}

thread_local! {
    static ACTIVE: std::cell::RefCell<Vec<ActiveSpan>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// An in-flight timed span. Dropping it records it; [`Span::finish`] records
/// it and hands back the measured duration.
pub struct Span {
    tracer: Arc<Tracer>,
    id: u64,
    parent_id: Option<u64>,
    trace_id: u64,
    name: String,
    attrs: Vec<(String, String)>,
    parent: Option<String>,
    start: Instant,
    start_ns: u64,
    finished: bool,
}

impl Span {
    /// Begin a span whose parent is the innermost active span of this
    /// tracer on the current thread (or none → a new trace root).
    pub(crate) fn begin(tracer: Arc<Tracer>, name: &str) -> Span {
        let key = Arc::as_ptr(&tracer) as usize;
        let inherited = ACTIVE.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|a| a.tracer == key)
                .map(|a| (a.span_id, a.trace_id, a.name.clone()))
        });
        Span::begin_resolved(tracer, name, inherited)
    }

    /// Begin a span under an explicit parent (for cross-thread links);
    /// `None` starts a new trace root regardless of what is active on the
    /// current thread.
    pub(crate) fn begin_with_parent(
        tracer: Arc<Tracer>,
        name: &str,
        parent: Option<&SpanContext>,
    ) -> Span {
        let resolved = parent.map(|c| (c.span_id, c.trace_id, c.name.clone()));
        Span::begin_resolved(tracer, name, resolved)
    }

    fn begin_resolved(tracer: Arc<Tracer>, name: &str, parent: Option<(u64, u64, String)>) -> Span {
        let start = Instant::now();
        let start_ns =
            u64::try_from(start.duration_since(tracer.epoch()).as_nanos()).unwrap_or(u64::MAX);
        let id = tracer.next_id();
        let key = Arc::as_ptr(&tracer) as usize;
        let (parent_id, trace_id, parent_name) = match parent {
            Some((pid, tid, pname)) => (Some(pid), tid, Some(pname)),
            None => (None, id, None),
        };
        ACTIVE.with(|stack| {
            stack.borrow_mut().push(ActiveSpan {
                tracer: key,
                span_id: id,
                trace_id,
                name: name.to_string(),
            });
        });
        Span {
            tracer,
            id,
            parent_id,
            trace_id,
            name: name.to_string(),
            attrs: Vec::new(),
            parent: parent_name,
            start,
            start_ns,
            finished: false,
        }
    }

    /// Attach a key=value attribute (e.g. the intermediate being fetched).
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// This span's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of this span's trace root (== [`Span::id`] for roots).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's identity, for parenting spans started on other threads.
    pub fn context(&self) -> SpanContext {
        SpanContext {
            span_id: self.id,
            trace_id: self.trace_id,
            name: self.name.clone(),
        }
    }

    /// Time elapsed since the span started (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Finish the span and return its duration.
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if self.finished {
            return dur;
        }
        self.finished = true;
        let key = Arc::as_ptr(&self.tracer) as usize;
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack
                .iter()
                .rposition(|a| a.tracer == key && a.span_id == self.id)
            {
                stack.remove(pos);
            }
        });
        self.tracer.record(SpanRecord {
            id: self.id,
            parent_id: self.parent_id,
            trace_id: self.trace_id,
            thread: current_thread_id(),
            name: std::mem::take(&mut self.name),
            parent: self.parent.take(),
            start_ns: self.start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
            attrs: std::mem::take(&mut self.attrs),
        });
        dur
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn finish_returns_duration_and_records() {
        let obs = Obs::new();
        let mut sp = obs.span("work");
        sp.attr("k", "v");
        std::thread::sleep(Duration::from_millis(2));
        let d = sp.finish();
        assert!(d >= Duration::from_millis(2));
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].name, "work");
        assert_eq!(recent[0].attrs, vec![("k".to_string(), "v".to_string())]);
        assert!(recent[0].dur_ns >= 2_000_000);
        let aggs = obs.span_summaries();
        let s = aggs.iter().find(|(n, _)| n == "work").unwrap();
        assert_eq!(s.1.count, 1);
    }

    #[test]
    fn drop_records_too() {
        let obs = Obs::new();
        {
            let _sp = obs.span("dropped");
        }
        assert_eq!(obs.recent_spans().len(), 1);
    }

    #[test]
    fn nesting_sets_parent() {
        let obs = Obs::new();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
            }
        }
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), 2);
        // Inner finished first.
        assert_eq!(recent[0].name, "inner");
        assert_eq!(recent[0].parent.as_deref(), Some("outer"));
        assert_eq!(recent[1].name, "outer");
        assert_eq!(recent[1].parent, None);
        // Ids link the same way, and both share the root's trace id.
        assert_eq!(recent[0].parent_id, Some(recent[1].id));
        assert_eq!(recent[1].parent_id, None);
        assert_eq!(recent[0].trace_id, recent[1].id);
        assert_eq!(recent[1].trace_id, recent[1].id);
    }

    #[test]
    fn two_obs_instances_do_not_share_parents() {
        let a = Obs::new();
        let b = Obs::new();
        let _outer = a.span("a.outer");
        {
            let _inner = b.span("b.inner");
        }
        let recent = b.recent_spans();
        assert_eq!(recent[0].parent, None, "parent from another Obs leaked");
        assert_eq!(recent[0].parent_id, None);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let obs = Obs::new();
        for i in 0..(DEFAULT_RING_CAPACITY + 10) {
            let mut sp = obs.span("s");
            sp.attr("i", i);
            drop(sp);
        }
        let recent = obs.recent_spans();
        assert_eq!(recent.len(), DEFAULT_RING_CAPACITY);
        // Oldest entries were evicted: first kept span is i=10.
        assert_eq!(recent[0].attrs[0].1, "10");
        let aggs = obs.span_summaries();
        let s = aggs.iter().find(|(n, _)| n == "s").unwrap();
        assert_eq!(
            s.1.count,
            (DEFAULT_RING_CAPACITY + 10) as u64,
            "aggregates keep counting past the ring"
        );
    }

    #[test]
    fn configurable_ring_capacity() {
        let obs = Obs::with_ring_capacity(4);
        for _ in 0..10 {
            drop(obs.span("s"));
        }
        assert_eq!(obs.recent_spans().len(), 4);
    }

    #[test]
    fn span_macro_attaches_attrs() {
        let obs = Obs::new();
        let interm = "m1.stage3";
        let sp = crate::span!(obs, "fetch", interm = interm, n = 42);
        drop(sp);
        let recent = obs.recent_spans();
        assert_eq!(
            recent[0].attrs,
            vec![
                ("interm".to_string(), "m1.stage3".to_string()),
                ("n".to_string(), "42".to_string()),
            ]
        );
    }

    #[test]
    fn explicit_parent_links_across_threads() {
        let obs = Obs::new();
        let root = obs.span("root");
        let ctx = root.context();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let obs = obs.clone();
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _sp = obs.span_with_parent("worker", Some(&ctx));
                });
            }
        });
        let root_id = root.id();
        let trace = root.trace_id();
        root.finish();
        let recent = obs.recent_spans();
        let workers: Vec<_> = recent.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.parent_id, Some(root_id));
            assert_eq!(w.trace_id, trace);
            assert_eq!(w.parent.as_deref(), Some("root"));
        }
    }

    #[test]
    fn current_context_reflects_innermost_span() {
        let obs = Obs::new();
        assert_eq!(obs.current_context(), None);
        let outer = obs.span("outer");
        {
            let inner = obs.span("inner");
            let ctx = obs.current_context().unwrap();
            assert_eq!(ctx.span_id, inner.id());
            assert_eq!(ctx.name, "inner");
            assert_eq!(ctx.trace_id, outer.trace_id());
            inner.finish();
        }
        let ctx = obs.current_context().unwrap();
        assert_eq!(ctx.span_id, outer.id());
    }

    #[test]
    fn same_named_nested_spans_unwind_correctly() {
        let obs = Obs::new();
        let a = obs.span("s");
        let b = obs.span("s");
        let a_id = a.id();
        // Finishing the outer one first must not corrupt the inner's entry.
        a.finish();
        let ctx = obs.current_context().unwrap();
        assert_eq!(ctx.span_id, b.id());
        b.finish();
        let recent = obs.recent_spans();
        assert_eq!(recent[0].parent_id, None); // a, the outer
        assert_eq!(recent[1].parent_id, Some(a_id)); // b started under a
    }
}
