//! Chrome-trace JSON export, loadable by Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`.
//!
//! Each finished span becomes one complete event (`"ph":"X"`) on its
//! thread's track; span ids, trace ids, parent links, and attributes ride
//! along in `args`. Timestamps are microseconds since the owning `Obs` was
//! created, with nanosecond precision kept as a fractional part.

use std::fmt::Write as _;

use crate::export::push_json_string;
use crate::span::SpanRecord;
use crate::timeline::Timeline;

/// Serialize spans as a Chrome-trace JSON document (object form, with a
/// `traceEvents` array holding one `"ph":"X"` event per span).
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &r.name);
        out.push_str(",\"cat\":\"mistique\",\"ph\":\"X\",\"pid\":1");
        let _ = write!(out, ",\"tid\":{}", r.thread);
        // The trace event format counts in microseconds; keep the
        // sub-microsecond part as a decimal fraction.
        let _ = write!(
            out,
            ",\"ts\":{}.{:03}",
            r.start_ns / 1_000,
            r.start_ns % 1_000
        );
        let _ = write!(out, ",\"dur\":{}.{:03}", r.dur_ns / 1_000, r.dur_ns % 1_000);
        let _ = write!(
            out,
            ",\"args\":{{\"span_id\":{},\"trace_id\":{}",
            r.id, r.trace_id
        );
        if let Some(p) = r.parent_id {
            let _ = write!(out, ",\"parent_id\":{p}");
        }
        for (k, v) in &r.attrs {
            out.push(',');
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Serialize a [`Timeline`] as Chrome-trace counter tracks: one `"ph":"C"`
/// event per changed metric per point, on pid 2 so the tracks sit apart
/// from span tracks. Histograms contribute their count and p99. Timestamps
/// are the points' wall-clock milliseconds rebased to the first point (the
/// trace format counts in microseconds).
pub fn counter_trace_json(tl: &Timeline) -> String {
    let mut out = String::with_capacity(64 + tl.points.len() * 120);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let t0 = tl.points.first().map(|p| p.t_ms).unwrap_or(0);
    let mut first = true;
    let mut push = |out: &mut String, name: &str, t_ms: u64, value: f64| {
        if !value.is_finite() {
            return; // the trace format has no NaN/Inf spelling
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_json_string(out, name);
        let _ = write!(
            out,
            ",\"cat\":\"mistique\",\"ph\":\"C\",\"pid\":2,\"ts\":{},\"args\":{{\"value\":{}}}}}",
            t_ms.saturating_sub(t0) * 1_000,
            value
        );
    };
    for p in &tl.points {
        for (name, &v) in &p.counters {
            push(&mut out, name, p.t_ms, v as f64);
        }
        for (name, &v) in &p.gauges {
            push(&mut out, name, p.t_ms, v);
        }
        for (name, h) in &p.hists {
            push(&mut out, &format!("{name}.count"), p.t_ms, h.count as f64);
            push(&mut out, &format!("{name}.p99"), p.t_ms, h.p99 as f64);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{FlightRecorder, MemSegmentIo};
    use crate::Obs;

    #[test]
    fn emits_one_complete_event_per_span() {
        let obs = Obs::new();
        {
            let mut root = obs.span("fetch.read");
            root.attr("interm", "m1.\"s3\"");
            drop(obs.span("fetch.decode"));
        }
        let records = obs.recent_spans();
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), records.len());
        assert!(json.contains("\"name\":\"fetch.read\""));
        assert!(json.contains("\\\"s3\\\"")); // attr values escaped
        assert!(json.contains("\"parent_id\":")); // decode links to read
    }

    #[test]
    fn empty_input_is_still_valid() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        assert_eq!(
            counter_trace_json(&Timeline::default()),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn timeline_points_become_counter_events() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = FlightRecorder::open(Box::new(io.clone()), 1 << 20);
        obs.counter("store.put.count").add(3);
        obs.gauge("adaptive.last_gamma").set(0.5);
        obs.histogram("store.put.ns").record(100);
        rec.capture(&obs.snapshot(), "log");
        obs.counter("store.put.count").inc();
        rec.capture(&obs.snapshot(), "log");
        let tl = Timeline::load(&io).unwrap();
        let json = counter_trace_json(&tl);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // First point: counter + gauge + hist count/p99; second: counter only.
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 5);
        assert_eq!(json.matches("\"name\":\"store.put.count\"").count(), 2);
        assert!(json.contains("\"name\":\"store.put.ns.count\""));
        assert!(json.contains("\"name\":\"store.put.ns.p99\""));
        assert!(json.contains("\"pid\":2"));
        // Valid JSON end to end.
        crate::json::parse(&json).unwrap();
    }
}
