//! Chrome-trace JSON export, loadable by Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`.
//!
//! Each finished span becomes one complete event (`"ph":"X"`) on its
//! thread's track; span ids, trace ids, parent links, and attributes ride
//! along in `args`. Timestamps are microseconds since the owning `Obs` was
//! created, with nanosecond precision kept as a fractional part.

use std::fmt::Write as _;

use crate::export::push_json_string;
use crate::span::SpanRecord;

/// Serialize spans as a Chrome-trace JSON document (object form, with a
/// `traceEvents` array holding one `"ph":"X"` event per span).
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &r.name);
        out.push_str(",\"cat\":\"mistique\",\"ph\":\"X\",\"pid\":1");
        let _ = write!(out, ",\"tid\":{}", r.thread);
        // The trace event format counts in microseconds; keep the
        // sub-microsecond part as a decimal fraction.
        let _ = write!(
            out,
            ",\"ts\":{}.{:03}",
            r.start_ns / 1_000,
            r.start_ns % 1_000
        );
        let _ = write!(out, ",\"dur\":{}.{:03}", r.dur_ns / 1_000, r.dur_ns % 1_000);
        let _ = write!(
            out,
            ",\"args\":{{\"span_id\":{},\"trace_id\":{}",
            r.id, r.trace_id
        );
        if let Some(p) = r.parent_id {
            let _ = write!(out, ",\"parent_id\":{p}");
        }
        for (k, v) in &r.attrs {
            out.push(',');
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn emits_one_complete_event_per_span() {
        let obs = Obs::new();
        {
            let mut root = obs.span("fetch.read");
            root.attr("interm", "m1.\"s3\"");
            drop(obs.span("fetch.decode"));
        }
        let records = obs.recent_spans();
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), records.len());
        assert!(json.contains("\"name\":\"fetch.read\""));
        assert!(json.contains("\\\"s3\\\"")); // attr values escaped
        assert!(json.contains("\"parent_id\":")); // decode links to read
    }

    #[test]
    fn empty_input_is_still_valid() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
