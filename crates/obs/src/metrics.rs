//! Lock-free scalar metrics: sharded counters and float gauges.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of counter shards. A power of two so the thread-local shard id can
/// be masked instead of modded.
pub(crate) const SHARDS: usize = 8;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
pub(crate) struct Shard(pub(crate) AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a stable shard assignment round-robin at first use.
    static SHARD_IDX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

pub(crate) fn shard_index() -> usize {
    SHARD_IDX.with(|v| *v)
}

pub(crate) struct CounterCore {
    shards: [Shard; SHARDS],
}

impl CounterCore {
    pub(crate) fn new() -> CounterCore {
        CounterCore {
            shards: std::array::from_fn(|_| Shard(AtomicU64::new(0))),
        }
    }
}

/// A monotonically increasing counter. Increments are a single relaxed
/// `fetch_add` on the calling thread's shard — no locks anywhere on the
/// write path. Handles are cheap clones of one shared core.
#[derive(Clone)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl Counter {
    /// A standalone counter not attached to any registry (mostly for tests).
    pub fn standalone() -> Counter {
        Counter(Arc::new(CounterCore::new()))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.shards[shard_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (sum over shards).
    pub fn get(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

pub(crate) struct GaugeCore {
    bits: AtomicU64,
}

/// A last-value-wins gauge holding an `f64` (stored as its bit pattern in an
/// atomic, so reads and writes are lock-free).
#[derive(Clone)]
pub struct Gauge(pub(crate) Arc<GaugeCore>);

impl Gauge {
    /// A standalone gauge not attached to any registry.
    pub fn standalone() -> Gauge {
        Gauge(Arc::new(GaugeCore {
            bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    pub(crate) fn new_core() -> GaugeCore {
        GaugeCore {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Set from an integer quantity (bytes, lengths, ...).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.bits.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_up() {
        let c = Counter::standalone();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counter_concurrent_increments_are_lossless() {
        let c = Counter::standalone();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::standalone();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        g.set_u64(7);
        assert_eq!(g.get(), 7.0);
    }
}
