//! # mistique-obs
//!
//! From-scratch, dependency-free observability for MISTIQUE: a metrics
//! registry (sharded atomic [`Counter`]s, [`Gauge`]s, log-linear
//! [`Histogram`]s), a lightweight hierarchical [`Span`] tracer, and
//! exporters producing a human-readable report or a JSON document
//! ([`Snapshot`]).
//!
//! The write path is designed for hot loops: counter increments and
//! histogram records are relaxed atomic ops, and metric handles returned by
//! the registry can be cached so steady-state instrumentation never touches
//! the registry lock.
//!
//! ```
//! let obs = mistique_obs::Obs::new();
//! obs.counter("store.put.count").inc();
//! obs.histogram("store.put.ns").record(1_234);
//! {
//!     let mut sp = obs.span("fetch.read");
//!     sp.attr("interm", "m1.stage3");
//! } // recorded on drop
//! println!("{}", obs.snapshot().render_text());
//! ```

mod audit;
mod export;
mod flame;
mod hist;
mod journal;
pub mod json;
mod metrics;
mod perfetto;
mod span;
mod timeline;
pub mod tree;

pub use audit::{
    AuditLog, AuditRecord, AuditStats, DEFAULT_AUDIT_SEGMENT_TARGET, DEFAULT_FLUSH_EVERY,
};
pub use export::{validate_prometheus, Snapshot};
pub use flame::folded_stacks;
pub use hist::{HistBucket, HistSummary, Histogram};
pub use journal::EngineEvent;
pub use metrics::{Counter, Gauge};
pub use perfetto::{chrome_trace_json, counter_trace_json};
pub use span::{Span, SpanContext, SpanRecord, SpanSummary, DEFAULT_RING_CAPACITY};
pub use timeline::{
    FlightRecorder, HistPoint, MemSegmentIo, RecorderStats, SegmentIo, Timeline, TimelinePoint,
    DEFAULT_SEGMENT_TARGET,
};
pub use tree::{build_trees, render_trees, SpanNode};

use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use hist::HistCore;
use metrics::{CounterCore, GaugeCore};
use span::Tracer;

struct Inner {
    counters: RwLock<HashMap<String, Arc<CounterCore>>>,
    gauges: RwLock<HashMap<String, Arc<GaugeCore>>>,
    hists: RwLock<HashMap<String, Arc<HistCore>>>,
    tracer: Arc<Tracer>,
}

/// The observability handle: a registry of named metrics plus a span tracer.
///
/// Cloning is cheap (one `Arc` bump); clones share all state, so a single
/// `Obs` can be threaded through every subsystem of a [`Mistique`] instance
/// — or shared across several instances to aggregate a whole benchmark run.
///
/// [`Mistique`]: https://docs.rs/mistique-core
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Inner>,
}

impl Obs {
    /// A fresh, empty registry. The creation instant becomes the epoch for
    /// span start timestamps.
    pub fn new() -> Obs {
        Obs::with_ring_capacity(span::DEFAULT_RING_CAPACITY)
    }

    /// Like [`Obs::new`], with an explicit capacity for the ring buffer of
    /// recent finished spans (clamped to at least 1). Aggregates keep
    /// counting past the ring either way.
    pub fn with_ring_capacity(capacity: usize) -> Obs {
        Obs {
            inner: Arc::new(Inner {
                counters: RwLock::new(HashMap::new()),
                gauges: RwLock::new(HashMap::new()),
                hists: RwLock::new(HashMap::new()),
                tracer: Arc::new(Tracer::new(Instant::now(), capacity.max(1))),
            }),
        }
    }

    /// Capacity of the recent-spans ring buffer.
    pub fn ring_capacity(&self) -> usize {
        self.inner.tracer.capacity()
    }

    /// Get or create the counter named `name`. Cache the returned handle on
    /// hot paths; increments on the handle never touch the registry again.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(core) = self.inner.counters.read().unwrap().get(name) {
            return Counter(Arc::clone(core));
        }
        let mut w = self.inner.counters.write().unwrap();
        let core = w
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCore::new()));
        Counter(Arc::clone(core))
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(core) = self.inner.gauges.read().unwrap().get(name) {
            return Gauge(Arc::clone(core));
        }
        let mut w = self.inner.gauges.write().unwrap();
        let core = w
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Gauge::new_core()));
        Gauge(Arc::clone(core))
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(core) = self.inner.hists.read().unwrap().get(name) {
            return Histogram(Arc::clone(core));
        }
        let mut w = self.inner.hists.write().unwrap();
        let core = w
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistCore::new()));
        Histogram(Arc::clone(core))
    }

    /// Start a timed span. Finish it with [`Span::finish`] to get the
    /// duration back, or just let it drop. The parent is the innermost
    /// span of this `Obs` active on the current thread.
    pub fn span(&self, name: &str) -> Span {
        Span::begin(Arc::clone(&self.inner.tracer), name)
    }

    /// Start a timed span under an explicit parent, for linking work done
    /// on other threads (capture the parent with [`Obs::current_context`]
    /// before spawning). `None` starts a fresh trace root.
    pub fn span_with_parent(&self, name: &str, parent: Option<&SpanContext>) -> Span {
        Span::begin_with_parent(Arc::clone(&self.inner.tracer), name, parent)
    }

    /// The identity of the innermost span of this `Obs` active on the
    /// current thread, if any.
    pub fn current_context(&self) -> Option<SpanContext> {
        span::current_context(&self.inner.tracer)
    }

    /// Nanoseconds elapsed since this `Obs` was created — the timebase of
    /// [`SpanRecord::start_ns`], for use with [`Obs::record_span`].
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.tracer.epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record an already-measured span with an explicit parent, start time
    /// (from [`Obs::now_ns`]), and duration. Unlike [`Obs::span`] this never
    /// touches the active-span stack: it exists so work striped across
    /// worker threads at a finer granularity can still be attributed to its
    /// logical unit (e.g. one `fetch.decode` span per column, its duration
    /// the sum of that column's block decodes) with the same tree shape as
    /// the serial path.
    pub fn record_span(
        &self,
        name: &str,
        parent: Option<&SpanContext>,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(String, String)>,
    ) {
        span::record_manual(&self.inner.tracer, name, parent, start_ns, dur_ns, attrs);
    }

    /// The most recently finished spans, oldest first (bounded ring).
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.inner.tracer.recent()
    }

    /// Aggregate timings per span name (unordered).
    pub fn span_summaries(&self) -> Vec<(String, SpanSummary)> {
        self.inner.tracer.summaries()
    }

    /// A point-in-time snapshot of every metric and span aggregate.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), Counter(Arc::clone(core)).get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), Gauge(Arc::clone(core)).get()))
            .collect();
        let histograms = self
            .inner
            .hists
            .read()
            .unwrap()
            .iter()
            .map(|(name, core)| (name.clone(), Histogram(Arc::clone(core)).summary()))
            .collect();
        let spans = self.inner.tracer.summaries().into_iter().collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
            recent_spans: self.inner.tracer.recent(),
        }
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::new()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("counters", &self.inner.counters.read().unwrap().len())
            .field("gauges", &self.inner.gauges.read().unwrap().len())
            .field("histograms", &self.inner.hists.read().unwrap().len())
            .finish()
    }
}

/// Start a [`Span`] on an [`Obs`], optionally attaching `key = value`
/// attributes (values go through `Display`):
///
/// ```
/// # let obs = mistique_obs::Obs::new();
/// let sp = mistique_obs::span!(obs, "fetch.read", interm = "m1.stage3");
/// drop(sp);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {{
        let mut __s = $obs.span($name);
        $(__s.attr(stringify!($k), $v);)+
        __s
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_handles() {
        let obs = Obs::new();
        let a = obs.counter("x");
        let b = obs.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(obs.counter("x").get(), 3);
        // Distinct names are distinct metrics.
        assert_eq!(obs.counter("y").get(), 0);
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::new();
        let clone = obs.clone();
        clone.counter("n").inc();
        clone.gauge("g").set(4.5);
        assert_eq!(obs.snapshot().counter("n"), 1);
        assert_eq!(obs.snapshot().gauge("g"), 4.5);
    }

    #[test]
    fn snapshot_collects_everything() {
        let obs = Obs::new();
        obs.counter("c").add(5);
        obs.gauge("g").set(1.25);
        obs.histogram("h").record(10);
        drop(obs.span("s"));
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), 1.25);
        assert_eq!(snap.histogram("h").count, 1);
        assert_eq!(snap.span("s").count, 1);
        assert_eq!(snap.recent_spans.len(), 1);
    }

    #[test]
    fn concurrent_registry_access_is_safe() {
        let obs = Obs::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let obs = obs.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        obs.counter("shared").inc();
                        obs.counter(&format!("t{t}")).inc();
                        obs.histogram("h").record(i);
                    }
                });
            }
        });
        let snap = obs.snapshot();
        assert_eq!(snap.counter("shared"), 8_000);
        for t in 0..8 {
            assert_eq!(snap.counter(&format!("t{t}")), 1_000);
        }
        assert_eq!(snap.histogram("h").count, 8_000);
    }
}
