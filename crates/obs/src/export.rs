//! Snapshot exporters: a human-readable text report and a JSON document.
//!
//! JSON emission is hand-rolled on std (this crate is dependency-free); the
//! output is plain standard JSON, so callers with `serde_json` can parse it
//! straight into a `Value` (see `Mistique::obs_snapshot_json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::HistSummary;
use crate::span::{SpanRecord, SpanSummary};

/// A point-in-time snapshot of every metric and span aggregate in an
/// [`crate::Obs`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Per-span-name aggregate timings.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Ring buffer of recently finished spans, oldest first.
    pub recent_spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0.0 when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram summary, zeroed when absent.
    pub fn histogram(&self, name: &str) -> HistSummary {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Span aggregate, zeroed when absent.
    pub fn span(&self, name: &str) -> SpanSummary {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Render the snapshot as an aligned, human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            let w = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<w$}  {v:.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms ==\n");
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  n={} mean={:.1} p50={} p90={} p95={} p99={} p999={} max={}",
                    h.count, h.mean, h.p50, h.p90, h.p95, h.p99, h.p999, h.max
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("== spans ==\n");
            let w = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  n={} total={} p50={} p90={} p99={} max={}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p90_ns),
                    fmt_ns(s.p99_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        if !self.recent_spans.is_empty() {
            out.push_str("== recent spans (oldest first) ==\n");
            for r in &self.recent_spans {
                let _ = write!(
                    out,
                    "  [+{}] {} ({})",
                    fmt_ns(r.start_ns),
                    r.name,
                    fmt_ns(r.dur_ns)
                );
                if let Some(p) = &r.parent {
                    let _ = write!(out, " parent={p}");
                }
                for (k, v) in &r.attrs {
                    let _ = write!(out, " {k}={v}");
                }
                out.push('\n');
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Serialize the snapshot as a JSON document.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str("\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| push_f64(out, *v));
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            );
            push_f64(out, h.mean);
            let _ = write!(
                out,
                ",\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                h.p50, h.p90, h.p95, h.p99, h.p999
            );
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", b.le, b.count);
            }
            out.push_str("]}");
        });
        out.push_str("},\"spans\":{");
        push_entries(&mut out, self.spans.iter(), |out, s| {
            let _ = write!(
                out,
                "{{\"count\":{},\"total_ns\":{},\"mean_ns\":",
                s.count, s.total_ns
            );
            push_f64(out, s.mean_ns);
            let _ = write!(
                out,
                ",\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns
            );
        });
        out.push_str("},\"recent_spans\":[");
        for (i, r) in self.recent_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &r.name);
            out.push_str(",\"parent\":");
            match &r.parent {
                Some(p) => push_json_string(&mut out, p),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"id\":{},\"parent_id\":", r.id);
            match r.parent_id {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"trace_id\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
                r.trace_id, r.thread, r.start_ns, r.dur_ns
            );
            for (j, (k, v)) in r.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Render the snapshot in the Prometheus text exposition format
    /// (version 0.0.4) — what a future `mistique-server` would serve at
    /// `/metrics`, and what `mistique stats --prom` writes today.
    ///
    /// Counters become `<name>_total` counter families, gauges map 1:1, and
    /// histograms expand into cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count` (bucket bounds come from the log-linear buckets
    /// actually hit, so the series is exact, not re-bucketed), with `_p999`
    /// and `_max` gauges carrying the tail. Span aggregates are duration
    /// histograms in disguise and are exported as
    /// `<name>_duration_nanoseconds` summaries via gauges for the quantiles.
    /// Every name is prefixed `mistique_` and sanitized (dots become
    /// underscores); distinct metric names that sanitize to the same family
    /// — possible with dynamically named per-codec metrics — are
    /// disambiguated with a numeric suffix so the exposition always passes
    /// [`validate_prometheus`] (which rejects duplicate TYPE declarations).
    pub fn render_prometheus(&self) -> String {
        use std::collections::HashSet;
        let mut out = String::with_capacity(1024);
        let mut seen: HashSet<String> = HashSet::new();
        for (name, v) in &self.counters {
            let n = unique_family(&mut seen, format!("{}_total", prom_name(name)));
            let _ = writeln!(out, "# HELP {n} Counter `{name}`.");
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = unique_family(&mut seen, prom_name(name));
            let _ = writeln!(out, "# HELP {n} Gauge `{name}`.");
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let n = unique_family(&mut seen, prom_name(name));
            let _ = writeln!(out, "# HELP {n} Histogram `{name}`.");
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = 0u64;
            for b in &h.buckets {
                cum += b.count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", b.le);
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let p = unique_family(&mut seen, format!("{n}_p999"));
            let _ = writeln!(out, "# HELP {p} 99.9th percentile of `{name}`.");
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {}", h.p999);
            let m = unique_family(&mut seen, format!("{n}_max"));
            let _ = writeln!(out, "# HELP {m} Largest recorded value of `{name}`.");
            let _ = writeln!(out, "# TYPE {m} gauge");
            let _ = writeln!(out, "{m} {}", h.max);
        }
        for (name, s) in &self.spans {
            let base = format!("{}_duration_nanoseconds", prom_name(name));
            let nc = unique_family(&mut seen, format!("{base}_count"));
            let _ = writeln!(out, "# HELP {nc} Completed `{name}` spans.");
            let _ = writeln!(out, "# TYPE {nc} counter");
            let _ = writeln!(out, "{nc} {}", s.count);
            let ns = unique_family(&mut seen, format!("{base}_sum"));
            let _ = writeln!(out, "# HELP {ns} Total `{name}` span duration.");
            let _ = writeln!(out, "# TYPE {ns} counter");
            let _ = writeln!(out, "{ns} {}", s.total_ns);
            let np = unique_family(&mut seen, format!("{base}_p99"));
            let _ = writeln!(out, "# HELP {np} 99th percentile `{name}` span duration.");
            let _ = writeln!(out, "# TYPE {np} gauge");
            let _ = writeln!(out, "{np} {}", s.p99_ns);
        }
        out
    }
}

/// Claim a family name, disambiguating sanitization collisions (two metric
/// names mapping onto the same Prometheus name) with a `_2`, `_3`, …
/// suffix. Registry maps are ordered, so the assignment is deterministic.
fn unique_family(seen: &mut std::collections::HashSet<String>, want: String) -> String {
    if seen.insert(want.clone()) {
        return want;
    }
    for i in 2.. {
        let candidate = format!("{want}_{i}");
        if seen.insert(candidate.clone()) {
            return candidate;
        }
    }
    unreachable!("the suffix loop always terminates")
}

/// Map a metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`), prefixed with `mistique_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("mistique_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus value rendering: finite floats as-is, non-finite values use
/// the exposition spelling (`NaN`, `+Inf`, `-Inf`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Validate a Prometheus text exposition document: every sample line must
/// parse (`name{labels} value`), every sample must be preceded by a `# TYPE`
/// declaration covering it, and histogram families must have monotone
/// cumulative buckets whose `+Inf` bucket equals `_count`.
///
/// This is the CI gate for the `/metrics` surface — dependency-free, so it
/// deliberately covers only the subset the renderer emits (no timestamps,
/// no exemplars).
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    use std::collections::HashMap;
    // Metric family name -> declared type.
    let mut types: HashMap<String, String> = HashMap::new();
    // Histogram family -> (last cumulative bucket, +Inf bucket, count).
    let mut hist_state: HashMap<String, (u64, Option<u64>, Option<u64>)> = HashMap::new();

    let valid_name = |s: &str| -> bool {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                let ty = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {lineno}: invalid metric name in TYPE"));
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown type {ty:?}"));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
            }
            // HELP and other comments pass through.
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_and_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value"))?;
        if value != "NaN" && value != "+Inf" && value != "-Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: unparseable value {value:?}"));
        }
        let (name, labels) = match name_and_labels.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated label set"))?;
                (n, Some(labels))
            }
            None => (name_and_labels, None),
        };
        if !valid_name(name) {
            return Err(format!("line {lineno}: invalid sample name {name:?}"));
        }
        let mut le: Option<String> = None;
        if let Some(labels) = labels {
            for pair in labels.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: malformed label {pair:?}"))?;
                if !valid_name(k) {
                    return Err(format!("line {lineno}: invalid label name {k:?}"));
                }
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: unquoted label value {v:?}"))?;
                if k == "le" {
                    le = Some(v.to_string());
                }
            }
        }
        // The sample must belong to a declared family: either its own name,
        // or a histogram family via the _bucket/_sum/_count suffixes.
        let family = ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
            let base = name.strip_suffix(suf)?;
            (types.get(base).map(String::as_str) == Some("histogram")).then(|| base.to_string())
        });
        match family {
            Some(base) => {
                let st = hist_state.entry(base.clone()).or_insert((0, None, None));
                if name.ends_with("_bucket") {
                    let le = le.ok_or_else(|| {
                        format!("line {lineno}: histogram bucket without le label")
                    })?;
                    let cum: u64 = value
                        .parse()
                        .map_err(|_| format!("line {lineno}: non-integer bucket count"))?;
                    if cum < st.0 {
                        return Err(format!(
                            "line {lineno}: bucket counts not cumulative for {base}"
                        ));
                    }
                    st.0 = cum;
                    if le == "+Inf" {
                        st.1 = Some(cum);
                    } else if le.parse::<f64>().is_err() {
                        return Err(format!("line {lineno}: invalid le bound {le:?}"));
                    }
                } else if name.ends_with("_count") {
                    st.2 = value.parse().ok();
                }
            }
            None => {
                if !types.contains_key(name) {
                    return Err(format!("line {lineno}: sample {name} has no TYPE"));
                }
            }
        }
    }
    for (base, (_, inf, count)) in &hist_state {
        match (inf, count) {
            (Some(i), Some(c)) if i == c => {}
            (Some(_), Some(_)) => {
                return Err(format!("histogram {base}: +Inf bucket != _count"));
            }
            _ => return Err(format!("histogram {base}: missing +Inf bucket or _count")),
        }
    }
    Ok(())
}

/// Write `"key":<value>` entries separated by commas.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &'a V),
) {
    for (i, (name, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, name);
        out.push(':');
        write_value(out, v);
    }
}

/// JSON has no NaN/Infinity; map them to null.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `Display` for f64 omits the decimal point for integral values,
        // which is still valid JSON (e.g. `3`).
    } else {
        out.push_str("null");
    }
}

/// Escape and quote a JSON string.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format nanoseconds with adaptive units for the text report.
pub(crate) fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1}us", s * 1e6)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn populated() -> Snapshot {
        let obs = Obs::new();
        obs.counter("store.put.count").add(3);
        obs.gauge("cost.read_bandwidth").set(123.5);
        obs.histogram("store.put.ns").record(1000);
        let mut sp = obs.span("fetch.read");
        sp.attr("interm", "m1.\"quoted\"\n");
        drop(sp);
        obs.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = populated().to_json_string();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"store.put.count\":3"));
        assert!(json.contains("\"cost.read_bandwidth\":123.5"));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        // Balanced braces/brackets outside of strings (crude structural check).
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn nonfinite_gauges_become_null() {
        let obs = Obs::new();
        obs.gauge("bad").set(f64::INFINITY);
        let json = obs.snapshot().to_json_string();
        assert!(json.contains("\"bad\":null"));
    }

    #[test]
    fn text_report_mentions_every_section() {
        let text = populated().render_text();
        assert!(text.contains("== counters =="));
        assert!(text.contains("store.put.count"));
        assert!(text.contains("== gauges =="));
        assert!(text.contains("== histograms =="));
        assert!(text.contains("== spans =="));
        assert!(text.contains("== recent spans"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = Snapshot::default();
        assert!(s.render_text().contains("no metrics recorded"));
        assert_eq!(
            s.to_json_string(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{},\"recent_spans\":[]}"
        );
    }

    #[test]
    fn accessors_default_to_zero() {
        let s = Snapshot::default();
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("missing"), 0.0);
        assert_eq!(s.histogram("missing").count, 0);
        assert_eq!(s.span("missing").count, 0);
    }

    #[test]
    fn json_histograms_carry_quantiles_and_buckets() {
        let json = populated().to_json_string();
        assert!(json.contains("\"p95\":"));
        assert!(json.contains("\"buckets\":[["));
    }

    #[test]
    fn prometheus_exposition_passes_its_own_validator() {
        let obs = Obs::new();
        obs.counter("store.put.count").add(3);
        obs.gauge("cost.read_bandwidth").set(123.5);
        obs.gauge("weird-name!").set(f64::NAN);
        let h = obs.histogram("store.put.ns");
        for v in [5u64, 5, 120, 9_000, 1 << 40] {
            h.record(v);
        }
        drop(obs.span("fetch.read"));
        let text = obs.snapshot().render_prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE mistique_store_put_count_total counter"));
        assert!(text.contains("mistique_store_put_count_total 3"));
        assert!(text.contains("mistique_cost_read_bandwidth 123.5"));
        assert!(text.contains("mistique_weird_name_ NaN"));
        assert!(text.contains("# TYPE mistique_store_put_ns histogram"));
        assert!(text.contains("mistique_store_put_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("mistique_store_put_ns_sum"));
        assert!(text.contains("mistique_store_put_ns_count 5"));
        assert!(text.contains("mistique_fetch_read_duration_nanoseconds_count 1"));
    }

    #[test]
    fn every_type_declaration_is_preceded_by_help() {
        let text = populated().render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        let mut families = 0;
        for (i, line) in lines.iter().enumerate() {
            if let Some(decl) = line.strip_prefix("# TYPE ") {
                families += 1;
                let name = decl.split_whitespace().next().unwrap();
                assert!(
                    i > 0 && lines[i - 1].starts_with(&format!("# HELP {name} ")),
                    "family {name} lacks a HELP line"
                );
            }
        }
        assert!(families >= 5, "expected one family per metric kind");
    }

    #[test]
    fn sanitization_collisions_are_disambiguated() {
        // Two distinct metric names that sanitize to the same Prometheus
        // family (the shape dynamically named per-codec metrics can take)
        // must not produce duplicate TYPE declarations.
        let obs = Obs::new();
        obs.gauge("read.codec.a-b.bytes").set(1.0);
        obs.gauge("read.codec.a.b.bytes").set(2.0);
        let text = obs.snapshot().render_prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("mistique_read_codec_a_b_bytes 1"));
        assert!(text.contains("mistique_read_codec_a_b_bytes_2 2"));
    }

    #[test]
    fn histogram_tail_gauges_are_exported() {
        let obs = Obs::new();
        let h = obs.histogram("lat.ns");
        for v in [10u64, 20, 30, 40, 5_000] {
            h.record(v);
        }
        let text = obs.snapshot().render_prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE mistique_lat_ns_p999 gauge"));
        assert!(text.contains("mistique_lat_ns_max 5000"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative_and_end_at_count() {
        let obs = Obs::new();
        let h = obs.histogram("h");
        for v in 0..100u64 {
            h.record(v * 37);
        }
        let text = obs.snapshot().render_prometheus();
        validate_prometheus(&text).unwrap();
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("mistique_h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative counts must not decrease: {line}");
            last = v;
        }
        assert_eq!(last, 100);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (doc, why) in [
            ("metric_without_type 1\n", "sample with no TYPE"),
            ("# TYPE m gauge\nm notanumber\n", "unparseable value"),
            ("# TYPE m gauge\n9bad 1\n", "invalid sample name"),
            ("# TYPE m wat\nm 1\n", "unknown type"),
            ("# TYPE m gauge\nm{le=unquoted} 1\n", "unquoted label"),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 9\nh_count 3\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 3\n",
                "+Inf bucket != count",
            ),
            (
                "# TYPE h histogram\nh_sum 9\nh_count 3\n",
                "missing +Inf bucket",
            ),
        ] {
            assert!(validate_prometheus(doc).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(2_500), "2.5us");
        assert_eq!(fmt_ns(3_000_000), "3.000ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }
}
