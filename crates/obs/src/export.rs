//! Snapshot exporters: a human-readable text report and a JSON document.
//!
//! JSON emission is hand-rolled on std (this crate is dependency-free); the
//! output is plain standard JSON, so callers with `serde_json` can parse it
//! straight into a `Value` (see `Mistique::obs_snapshot_json`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::HistSummary;
use crate::span::{SpanRecord, SpanSummary};

/// A point-in-time snapshot of every metric and span aggregate in an
/// [`crate::Obs`].
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Per-span-name aggregate timings.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Ring buffer of recently finished spans, oldest first.
    pub recent_spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0.0 when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Histogram summary, zeroed when absent.
    pub fn histogram(&self, name: &str) -> HistSummary {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Span aggregate, zeroed when absent.
    pub fn span(&self, name: &str) -> SpanSummary {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Render the snapshot as an aligned, human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("== counters ==\n");
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("== gauges ==\n");
            let w = self.gauges.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<w$}  {v:.3}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("== histograms ==\n");
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  n={} mean={:.1} p50={} p90={} p99={} max={}",
                    h.count, h.mean, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("== spans ==\n");
            let w = self.spans.keys().map(|k| k.len()).max().unwrap_or(0);
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<w$}  n={} total={} p50={} p90={} p99={} max={}",
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p90_ns),
                    fmt_ns(s.p99_ns),
                    fmt_ns(s.max_ns)
                );
            }
        }
        if !self.recent_spans.is_empty() {
            out.push_str("== recent spans (oldest first) ==\n");
            for r in &self.recent_spans {
                let _ = write!(
                    out,
                    "  [+{}] {} ({})",
                    fmt_ns(r.start_ns),
                    r.name,
                    fmt_ns(r.dur_ns)
                );
                if let Some(p) = &r.parent {
                    let _ = write!(out, " parent={p}");
                }
                for (k, v) in &r.attrs {
                    let _ = write!(out, " {k}={v}");
                }
                out.push('\n');
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }

    /// Serialize the snapshot as a JSON document.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str("\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| push_f64(out, *v));
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            );
            push_f64(out, h.mean);
            let _ = write!(
                out,
                ",\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.p50, h.p90, h.p99
            );
        });
        out.push_str("},\"spans\":{");
        push_entries(&mut out, self.spans.iter(), |out, s| {
            let _ = write!(
                out,
                "{{\"count\":{},\"total_ns\":{},\"mean_ns\":",
                s.count, s.total_ns
            );
            push_f64(out, s.mean_ns);
            let _ = write!(
                out,
                ",\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns
            );
        });
        out.push_str("},\"recent_spans\":[");
        for (i, r) in self.recent_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &r.name);
            out.push_str(",\"parent\":");
            match &r.parent {
                Some(p) => push_json_string(&mut out, p),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"id\":{},\"parent_id\":", r.id);
            match r.parent_id {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(
                out,
                ",\"trace_id\":{},\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{",
                r.trace_id, r.thread, r.start_ns, r.dur_ns
            );
            for (j, (k, v)) in r.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Write `"key":<value>` entries separated by commas.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &'a V),
) {
    for (i, (name, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, name);
        out.push(':');
        write_value(out, v);
    }
}

/// JSON has no NaN/Infinity; map them to null.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // `Display` for f64 omits the decimal point for integral values,
        // which is still valid JSON (e.g. `3`).
    } else {
        out.push_str("null");
    }
}

/// Escape and quote a JSON string.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format nanoseconds with adaptive units for the text report.
pub(crate) fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.1}us", s * 1e6)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn populated() -> Snapshot {
        let obs = Obs::new();
        obs.counter("store.put.count").add(3);
        obs.gauge("cost.read_bandwidth").set(123.5);
        obs.histogram("store.put.ns").record(1000);
        let mut sp = obs.span("fetch.read");
        sp.attr("interm", "m1.\"quoted\"\n");
        drop(sp);
        obs.snapshot()
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = populated().to_json_string();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"store.put.count\":3"));
        assert!(json.contains("\"cost.read_bandwidth\":123.5"));
        assert!(json.contains("\\\"quoted\\\"\\n"));
        // Balanced braces/brackets outside of strings (crude structural check).
        let mut depth = 0i32;
        let mut in_str = false;
        let mut esc = false;
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn nonfinite_gauges_become_null() {
        let obs = Obs::new();
        obs.gauge("bad").set(f64::INFINITY);
        let json = obs.snapshot().to_json_string();
        assert!(json.contains("\"bad\":null"));
    }

    #[test]
    fn text_report_mentions_every_section() {
        let text = populated().render_text();
        assert!(text.contains("== counters =="));
        assert!(text.contains("store.put.count"));
        assert!(text.contains("== gauges =="));
        assert!(text.contains("== histograms =="));
        assert!(text.contains("== spans =="));
        assert!(text.contains("== recent spans"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let s = Snapshot::default();
        assert!(s.render_text().contains("no metrics recorded"));
        assert_eq!(
            s.to_json_string(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"spans\":{},\"recent_spans\":[]}"
        );
    }

    #[test]
    fn accessors_default_to_zero() {
        let s = Snapshot::default();
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("missing"), 0.0);
        assert_eq!(s.histogram("missing").count, 0);
        assert_eq!(s.span("missing").count, 0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(2_500), "2.5us");
        assert_eq!(fmt_ns(3_000_000), "3.000ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }
}
