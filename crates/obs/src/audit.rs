//! The workload audit journal: one structured, replayable record per engine
//! entry point (logging, every diagnostic, fetches, reclaim), persisted as
//! JSONL segments alongside the flight-recorder timeline.
//!
//! Where the timeline ([`crate::timeline`]) records *metric deltas*, the
//! audit journal records *operations*: what was asked (operation name plus
//! an argument fingerprint), what the engine decided (the plan of every
//! inner fetch, in order), what it predicted, and what actually happened
//! (latency, bytes and partitions touched, trace id). A captured journal is
//! a complete workload description — `mistique replay` re-executes it
//! against a fresh or existing store and checks the answers and plan
//! choices bit-for-bit.
//!
//! Records are buffered and flushed in batches (every
//! [`DEFAULT_FLUSH_EVERY`] records, at burst boundaries, and on engine
//! drop) so steady-state capture stays off the query hot path. Segments use
//! the same atomic rewrite + byte-bounded retention discipline as the
//! recorder; all I/O is **best-effort** — a failed write counts an error
//! and never fails the data operation that produced the record.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::time::SystemTime;

use crate::export::push_json_string;
use crate::json::{self, JsonValue};
use crate::timeline::SegmentIo;

/// Target size of one audit segment before the log seals it (each flush
/// rewrites the current segment atomically, so this bounds per-flush write
/// amplification).
pub const DEFAULT_AUDIT_SEGMENT_TARGET: usize = 32 * 1024;

/// Records buffered before an automatic flush. A crash can lose at most
/// this many trailing records; the journal on disk stays loadable.
pub const DEFAULT_FLUSH_EVERY: usize = 32;

/// One audited engine operation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditRecord {
    /// Monotone sequence number (continues across restarts).
    pub seq: u64,
    /// Unix timestamp in milliseconds.
    pub t_ms: u64,
    /// Entry point, dot-namespaced (`log`, `log_parallel`, `fetch.get`,
    /// `fetch.rows`, `reclaim`, `register`, `diag.topk`, …).
    pub op: String,
    /// Argument fingerprint: enough key=value detail to re-execute the
    /// operation (intermediate id, column, k, thresholds, row lists…).
    pub args: BTreeMap<String, String>,
    /// Plan chosen by every inner fetch, in execution order
    /// (`read`/`rerun`/`cached`/`indexed_read`).
    pub plans: Vec<String>,
    /// Cost model's read-path prediction for the first inner fetch, seconds.
    pub predicted_read_s: f64,
    /// Cost model's rerun-path prediction for the first inner fetch, seconds.
    pub predicted_rerun_s: f64,
    /// Wall-clock latency of the whole entry point, nanoseconds.
    pub actual_ns: u64,
    /// Compressed bytes read from the DataStore while serving this op.
    pub bytes: u64,
    /// Partitions touched while serving this op.
    pub partitions: u64,
    /// Trace id of the outermost span (0 when none).
    pub trace_id: u64,
    /// Whether the operation returned `Ok`.
    pub ok: bool,
}

impl AuditRecord {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"k\":\"au\",\"seq\":{},\"t_ms\":{},\"op\":",
            self.seq, self.t_ms
        );
        push_json_string(&mut out, &self.op);
        out.push_str(",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("},\"plans\":[");
        for (i, p) in self.plans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, p);
        }
        out.push_str("],");
        push_audit_f64(&mut out, "pred_read_s", self.predicted_read_s);
        out.push(',');
        push_audit_f64(&mut out, "pred_rerun_s", self.predicted_rerun_s);
        let _ = write!(
            out,
            ",\"actual_ns\":{},\"bytes\":{},\"parts\":{},\"trace\":{},\"ok\":{}}}",
            self.actual_ns, self.bytes, self.partitions, self.trace_id, self.ok
        );
        out
    }

    /// Parse a JSONL line previously produced by
    /// [`AuditRecord::to_json_line`]. Returns `None` for foreign records.
    pub fn from_json(v: &JsonValue) -> Option<AuditRecord> {
        if v.get("k")?.as_str()? != "au" {
            return None;
        }
        let args = v
            .get("args")?
            .as_obj()?
            .iter()
            .filter_map(|(k, a)| Some((k.clone(), a.as_str()?.to_string())))
            .collect();
        let plans = v
            .get("plans")?
            .as_arr()?
            .iter()
            .filter_map(|p| p.as_str().map(str::to_string))
            .collect();
        Some(AuditRecord {
            seq: v.get("seq")?.as_u64()?,
            t_ms: v.get("t_ms")?.as_u64()?,
            op: v.get("op")?.as_str()?.to_string(),
            args,
            plans,
            predicted_read_s: v.get("pred_read_s").and_then(|x| x.as_f64()).unwrap_or(0.0),
            predicted_rerun_s: v
                .get("pred_rerun_s")
                .and_then(|x| x.as_f64())
                .unwrap_or(0.0),
            actual_ns: v.get("actual_ns")?.as_u64()?,
            bytes: v.get("bytes")?.as_u64()?,
            partitions: v.get("parts")?.as_u64()?,
            trace_id: v.get("trace")?.as_u64()?,
            ok: v.get("ok")?.as_bool()?,
        })
    }
}

/// JSON has no NaN/Infinity; the audit journal maps them to null (parsed
/// back as 0.0 — predictions are informational, not compared bit-for-bit).
fn push_audit_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, "\"{key}\":");
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse `au_XXXXXXXXXXXXXXXX.jsonl` names.
fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("au_")?.strip_suffix(".jsonl")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn segment_name(first_seq: u64) -> String {
    format!("au_{first_seq:016x}.jsonl")
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Point-in-time audit-log statistics (mirrored into `audit.*` gauges by
/// the engine after each flush).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Records accepted (buffered or flushed).
    pub records: u64,
    /// Flushes that wrote at least one record.
    pub flushes: u64,
    /// Best-effort writes/removals that failed.
    pub write_errors: u64,
    /// Segments dropped by retention.
    pub segments_dropped: u64,
    /// Current total bytes across all segments.
    pub total_bytes: u64,
    /// Current number of segments.
    pub segments: u64,
    /// The sequence number the next record will get.
    pub next_seq: u64,
}

/// The durable workload journal. One per open engine instance; all writes
/// are best-effort (see module docs).
pub struct AuditLog {
    io: Box<dyn SegmentIo>,
    budget_bytes: u64,
    segment_target: usize,
    flush_every: usize,
    next_seq: u64,
    /// Buffered content + name of the currently-open segment.
    cur: (String, Option<String>),
    pending: Vec<AuditRecord>,
    sizes: BTreeMap<String, u64>,
    stats: AuditStats,
}

impl AuditLog {
    /// Open a journal over existing segments: sequence numbering continues
    /// after the highest sequence found on disk, and retention accounting
    /// picks up every existing segment. Scan errors are swallowed (the log
    /// starts fresh, counting a write error) — auditing must never fail an
    /// engine open.
    pub fn open(io: Box<dyn SegmentIo>, budget_bytes: u64) -> AuditLog {
        let target = DEFAULT_AUDIT_SEGMENT_TARGET.min((budget_bytes as usize / 4).max(512));
        let mut log = AuditLog {
            io,
            budget_bytes,
            segment_target: target,
            flush_every: DEFAULT_FLUSH_EVERY,
            next_seq: 0,
            cur: (String::new(), None),
            pending: Vec::new(),
            sizes: BTreeMap::new(),
            stats: AuditStats::default(),
        };
        match log.io.list() {
            Ok(names) => {
                for name in names {
                    if parse_segment_name(&name).is_none() {
                        // Sweep `.tmp` orphans from a crash mid-write; leave
                        // other foreign files alone.
                        if name.ends_with(".tmp") {
                            let _ = log.io.remove(&name);
                        }
                        continue;
                    }
                    let len = log.io.read(&name).map(|b| b.len() as u64).unwrap_or(0);
                    log.sizes.insert(name, len);
                }
                log.next_seq = log
                    .sizes
                    .keys()
                    .filter_map(|n| {
                        let first = parse_segment_name(n)?;
                        let bytes = log.io.read(n).ok()?;
                        let max_line_seq = String::from_utf8_lossy(&bytes)
                            .lines()
                            .filter_map(|l| json::parse(l).ok())
                            .filter_map(|v| v.get("seq")?.as_u64())
                            .max();
                        Some(max_line_seq.unwrap_or(first))
                    })
                    .max()
                    .map(|s| s + 1)
                    .unwrap_or(0);
            }
            Err(_) => log.stats.write_errors += 1,
        }
        log.stats.segments = log.sizes.len() as u64;
        log.stats.total_bytes = log.sizes.values().sum();
        log.stats.next_seq = log.next_seq;
        log
    }

    /// Override the segment rotation target (tests use tiny segments to
    /// exercise retention).
    pub fn set_segment_target(&mut self, bytes: usize) {
        self.segment_target = bytes.max(1);
    }

    /// Override the flush batch size (1 flushes every record).
    pub fn set_flush_every(&mut self, n: usize) {
        self.flush_every = n.max(1);
    }

    /// Current journal statistics.
    pub fn stats(&self) -> AuditStats {
        self.stats
    }

    /// The configured retention budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Append a record: its `seq` and `t_ms` are stamped here; the record
    /// is buffered and flushed with the next batch.
    pub fn append(&mut self, mut record: AuditRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.next_seq = self.next_seq;
        self.stats.records += 1;
        record.seq = seq;
        if record.t_ms == 0 {
            record.t_ms = unix_ms();
        }
        self.pending.push(record);
        if self.pending.len() >= self.flush_every {
            self.flush();
        }
        seq
    }

    /// Records buffered but not yet flushed to disk.
    pub fn pending_records(&self) -> &[AuditRecord] {
        &self.pending
    }

    /// Flush buffered records into the current segment (atomic rewrite),
    /// sealing it at the target size and enforcing the retention budget.
    /// Best-effort: a failed write keeps the buffered lines for the next
    /// flush and counts one error.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let first_seq = self.pending[0].seq;
        for rec in std::mem::take(&mut self.pending) {
            self.cur.0.push_str(&rec.to_json_line());
            self.cur.0.push('\n');
        }
        let name = self
            .cur
            .1
            .get_or_insert_with(|| segment_name(first_seq))
            .clone();
        let buf = self.cur.0.clone();
        match self.io.write_atomic(&name, buf.as_bytes()) {
            Ok(()) => {
                self.sizes.insert(name, buf.len() as u64);
                self.stats.flushes += 1;
            }
            Err(_) => {
                self.stats.write_errors += 1;
                // Keep the buffer: the next flush rewrites the whole
                // segment, so the lost lines ride along then.
            }
        }
        if buf.len() >= self.segment_target {
            self.cur.0.clear();
            self.cur.1 = None;
        }
        self.enforce_budget();
        self.stats.segments = self.sizes.len() as u64;
        self.stats.total_bytes = self.sizes.values().sum();
    }

    /// Drop oldest segments until the ring fits the budget. The bound is
    /// hard: even the current segment is dropped if it alone exceeds it.
    fn enforce_budget(&mut self) {
        loop {
            let total: u64 = self.sizes.values().sum();
            if total <= self.budget_bytes {
                break;
            }
            let Some(oldest) = self
                .sizes
                .keys()
                .filter_map(|n| parse_segment_name(n).map(|s| (s, n.clone())))
                .min()
                .map(|(_, n)| n)
            else {
                break;
            };
            if self.io.remove(&oldest).is_err() {
                self.stats.write_errors += 1;
                break; // avoid spinning when removal keeps failing
            }
            self.sizes.remove(&oldest);
            self.stats.segments_dropped += 1;
            if self.cur.1.as_deref() == Some(oldest.as_str()) {
                self.cur.0.clear();
                self.cur.1 = None;
            }
        }
    }

    /// Load every readable record, in sequence order. Unknown files are
    /// skipped; within a segment, parsing stops at the first torn line.
    pub fn load(io: &dyn SegmentIo) -> io::Result<Vec<AuditRecord>> {
        let mut names: Vec<(u64, String)> = io
            .list()?
            .into_iter()
            .filter_map(|n| parse_segment_name(&n).map(|s| (s, n)))
            .collect();
        names.sort();
        let mut out = Vec::new();
        for (_, name) in names {
            let Ok(bytes) = io.read(&name) else { continue };
            for line in String::from_utf8_lossy(&bytes).lines() {
                let Ok(v) = json::parse(line) else { break };
                if let Some(r) = AuditRecord::from_json(&v) {
                    out.push(r);
                }
            }
        }
        out.sort_by_key(|r| r.seq);
        Ok(out)
    }
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::MemSegmentIo;

    fn sample(op: &str) -> AuditRecord {
        AuditRecord {
            seq: 0,
            t_ms: 0,
            op: op.to_string(),
            args: [
                ("interm".to_string(), "m1.stage3".to_string()),
                ("k".to_string(), "5".to_string()),
            ]
            .into_iter()
            .collect(),
            plans: vec!["read".to_string(), "cached".to_string()],
            predicted_read_s: 0.002,
            predicted_rerun_s: 0.13,
            actual_ns: 1_234_567,
            bytes: 4096,
            partitions: 2,
            trace_id: 99,
            ok: true,
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = sample("diag.topk");
        r.seq = 42;
        r.t_ms = 1_700_000_000_123;
        let line = r.to_json_line();
        let parsed = AuditRecord::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn nonfinite_predictions_become_zero() {
        let mut r = sample("fetch.get");
        r.predicted_read_s = f64::NAN;
        r.predicted_rerun_s = f64::INFINITY;
        let parsed = AuditRecord::from_json(&json::parse(&r.to_json_line()).unwrap()).unwrap();
        assert_eq!(parsed.predicted_read_s, 0.0);
        assert_eq!(parsed.predicted_rerun_s, 0.0);
    }

    #[test]
    fn foreign_records_are_rejected() {
        let v = json::parse("{\"k\":\"ev\",\"seq\":1}").unwrap();
        assert!(AuditRecord::from_json(&v).is_none());
        let v = json::parse("{\"seq\":1}").unwrap();
        assert!(AuditRecord::from_json(&v).is_none());
    }

    #[test]
    fn append_flush_load_round_trip() {
        let io = MemSegmentIo::new();
        let mut log = AuditLog::open(Box::new(io.clone()), 1 << 20);
        log.set_flush_every(2);
        log.append(sample("log"));
        assert_eq!(log.pending_records().len(), 1, "below batch: buffered");
        log.append(sample("fetch.get"));
        assert!(log.pending_records().is_empty(), "batch flushed");
        log.append(sample("reclaim"));
        log.flush();
        let recs = AuditLog::load(&io).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(recs[2].op, "reclaim");
        assert_eq!(log.stats().records, 3);
        assert!(log.stats().total_bytes > 0);
    }

    #[test]
    fn sequence_numbering_continues_across_reopen() {
        let io = MemSegmentIo::new();
        {
            let mut log = AuditLog::open(Box::new(io.clone()), 1 << 20);
            log.append(sample("log"));
            log.append(sample("fetch.get"));
            log.flush();
        }
        let mut log = AuditLog::open(Box::new(io.clone()), 1 << 20);
        assert_eq!(log.stats().next_seq, 2);
        log.append(sample("diag.topk"));
        log.flush();
        let recs = AuditLog::load(&io).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn retention_never_exceeds_the_budget() {
        let io = MemSegmentIo::new();
        let mut log = AuditLog::open(Box::new(io.clone()), 4096);
        log.set_segment_target(512);
        log.set_flush_every(1);
        for _ in 0..100 {
            log.append(sample("fetch.get"));
            let total: u64 = io
                .list()
                .unwrap()
                .iter()
                .map(|n| io.read(n).unwrap().len() as u64)
                .sum();
            assert!(total <= 4096, "audit bytes {total} exceed budget");
        }
        assert!(log.stats().segments_dropped > 0);
        // The survivors are the newest records, contiguous.
        let recs = AuditLog::load(&io).unwrap();
        assert!(!recs.is_empty());
        assert_eq!(recs.last().unwrap().seq, 99);
        for w in recs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn torn_trailing_line_is_ignored_on_load() {
        let io = MemSegmentIo::new();
        let mut log = AuditLog::open(Box::new(io.clone()), 1 << 20);
        log.append(sample("log"));
        log.append(sample("fetch.get"));
        log.flush();
        let name = io.list().unwrap()[0].clone();
        let bytes = io.read(&name).unwrap();
        io.write_atomic(&name, &bytes[..bytes.len() - 25]).unwrap();
        let recs = AuditLog::load(&io).unwrap();
        assert_eq!(recs.len(), 1, "torn tail dropped, valid prefix kept");
        assert_eq!(recs[0].seq, 0);
    }

    #[test]
    fn garbage_segments_do_not_poison_the_load() {
        let io = MemSegmentIo::new();
        io.write_atomic("au_0000000000000000.jsonl", b"not json\n")
            .unwrap();
        io.write_atomic("au_0000000000000003.jsonl.tmp", b"orphan")
            .unwrap();
        io.write_atomic("unrelated.txt", b"ignored").unwrap();
        assert!(AuditLog::load(&io).unwrap().is_empty());
        // Open sweeps the orphan and keeps numbering sane.
        let log = AuditLog::open(Box::new(io.clone()), 1 << 20);
        assert_eq!(log.stats().next_seq, 1, "unparseable segment anchors seq");
        assert!(!io.list().unwrap().iter().any(|n| n.ends_with(".tmp")));
    }

    #[test]
    fn failed_writes_keep_the_buffer_and_count_errors() {
        // An io that always fails writes.
        struct FailIo;
        impl SegmentIo for FailIo {
            fn list(&self) -> io::Result<Vec<String>> {
                Ok(Vec::new())
            }
            fn read(&self, _: &str) -> io::Result<Vec<u8>> {
                Err(io::Error::other("nope"))
            }
            fn write_atomic(&self, _: &str, _: &[u8]) -> io::Result<()> {
                Err(io::Error::other("nope"))
            }
            fn remove(&self, _: &str) -> io::Result<()> {
                Err(io::Error::other("nope"))
            }
        }
        let mut log = AuditLog::open(Box::new(FailIo), 1 << 20);
        log.set_flush_every(1);
        log.append(sample("log"));
        assert_eq!(log.stats().write_errors, 1);
        assert_eq!(log.stats().records, 1, "record still counted");
    }
}
