//! The structured event journal: engine lifecycle events (reclaim
//! demotions/purges, compaction runs, recovery and quarantine outcomes,
//! drift flags, plan-choice flips) persisted as JSONL alongside the metric
//! timeline.
//!
//! Each event is stamped with `snap_seq` — the sequence number of the metric
//! snapshot it was flushed with — so an operator can line an event up with
//! the exact metric deltas that surrounded it (see [`crate::timeline`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::push_json_string;
use crate::json::JsonValue;

/// One engine lifecycle event.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineEvent {
    /// Sequence number of the metric snapshot this event landed in.
    pub snap_seq: u64,
    /// Unix timestamp in milliseconds.
    pub t_ms: u64,
    /// Event kind, dot-namespaced like metrics (e.g. `reclaim.demote`,
    /// `reclaim.purge`, `compaction`, `recovery`, `quarantine`,
    /// `drift.flagged`, `plan.flip`, `qcache.storm`).
    pub kind: String,
    /// The intermediate the event concerns, when there is one.
    pub intermediate: Option<String>,
    /// Free-form key=value detail payload (`from`/`to`/`bytes`/`gamma`…).
    pub details: BTreeMap<String, String>,
}

impl EngineEvent {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"k\":\"ev\",\"seq\":{},\"t_ms\":{},\"kind\":",
            self.snap_seq, self.t_ms
        );
        push_json_string(&mut out, &self.kind);
        out.push_str(",\"interm\":");
        match &self.intermediate {
            Some(i) => push_json_string(&mut out, i),
            None => out.push_str("null"),
        }
        out.push_str(",\"details\":{");
        for (i, (k, v)) in self.details.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, k);
            out.push(':');
            push_json_string(&mut out, v);
        }
        out.push_str("}}");
        out
    }

    /// Parse a JSONL line previously produced by [`EngineEvent::to_json_line`].
    /// Returns `None` for lines that are not event records (torn tails,
    /// foreign content).
    pub fn from_json(v: &JsonValue) -> Option<EngineEvent> {
        if v.get("k")?.as_str()? != "ev" {
            return None;
        }
        let details = v
            .get("details")?
            .as_obj()?
            .iter()
            .filter_map(|(k, d)| Some((k.clone(), d.as_str()?.to_string())))
            .collect();
        Some(EngineEvent {
            snap_seq: v.get("seq")?.as_u64()?,
            t_ms: v.get("t_ms")?.as_u64()?,
            kind: v.get("kind")?.as_str()?.to_string(),
            intermediate: v.get("interm").and_then(|i| i.as_str()).map(str::to_string),
            details,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> EngineEvent {
        EngineEvent {
            snap_seq: 7,
            t_ms: 1_700_000_000_123,
            kind: "reclaim.demote".into(),
            intermediate: Some("m1.stage3".into()),
            details: [
                ("from".to_string(), "FULL".to_string()),
                ("to".to_string(), "LP_QT".to_string()),
                ("gamma".to_string(), "0.0013".to_string()),
            ]
            .into_iter()
            .collect(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let ev = sample();
        let line = ev.to_json_line();
        let parsed = EngineEvent::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, ev);
    }

    #[test]
    fn missing_intermediate_round_trips_as_none() {
        let mut ev = sample();
        ev.intermediate = None;
        ev.details.clear();
        let parsed = EngineEvent::from_json(&json::parse(&ev.to_json_line()).unwrap()).unwrap();
        assert_eq!(parsed.intermediate, None);
        assert!(parsed.details.is_empty());
    }

    #[test]
    fn foreign_records_are_rejected() {
        let v = json::parse("{\"k\":\"pt\",\"seq\":1}").unwrap();
        assert!(EngineEvent::from_json(&v).is_none());
        let v = json::parse("{\"seq\":1}").unwrap();
        assert!(EngineEvent::from_json(&v).is_none());
    }
}
