//! Reassemble finished [`SpanRecord`]s into hierarchical trees.
//!
//! Records carry `id`/`parent_id`/`trace_id`, so a flat dump of the recent
//! ring can be rebuilt into per-trace trees regardless of which thread each
//! span ran on. A record whose parent is missing from the input (evicted
//! from the bounded ring, or simply not selected) becomes a root — trees
//! degrade gracefully instead of dropping spans.

use std::collections::HashMap;

use crate::export::fmt_ns;
use crate::span::SpanRecord;

/// One node of a reassembled span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The finished span at this node.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time of this span including children.
    pub fn total_ns(&self) -> u64 {
        self.record.dur_ns
    }

    /// Wall time not covered by direct children. Parallel children can
    /// overlap and sum past the parent; this saturates at zero then.
    pub fn self_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.record.dur_ns).sum();
        self.record.dur_ns.saturating_sub(child_ns)
    }
}

/// Build trees from a flat set of records. Roots (and children within each
/// node) are ordered by start time, ties broken by span id.
pub fn build_trees(records: &[SpanRecord]) -> Vec<SpanNode> {
    let by_id: HashMap<u64, usize> = records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        match r.parent_id.and_then(|p| by_id.get(&p).copied()) {
            Some(pi) if pi != i => children[pi].push(i),
            _ => roots.push(i),
        }
    }
    roots.sort_by_key(|&i| (records[i].start_ns, records[i].id));
    for c in &mut children {
        c.sort_by_key(|&i| (records[i].start_ns, records[i].id));
    }
    // Span ids increase in creation order and a parent is always created
    // before its children, so parent_id < id: the parent links are acyclic
    // and this recursion terminates.
    fn assemble(i: usize, records: &[SpanRecord], children: &[Vec<usize>]) -> SpanNode {
        SpanNode {
            record: records[i].clone(),
            children: children[i]
                .iter()
                .map(|&c| assemble(c, records, children))
                .collect(),
        }
    }
    roots
        .into_iter()
        .map(|i| assemble(i, records, &children))
        .collect()
}

/// Build the tree(s) of one trace only.
pub fn trace_trees(records: &[SpanRecord], trace_id: u64) -> Vec<SpanNode> {
    let filtered: Vec<SpanRecord> = records
        .iter()
        .filter(|r| r.trace_id == trace_id)
        .cloned()
        .collect();
    build_trees(&filtered)
}

/// Render trees as indented text, one line per span:
///
/// ```text
/// fetch.read 1.882ms interm=P1_v0... n_ex=5000
/// ├── store.partition.load 412.0us pid=3
/// └── fetch.decode 601.3us col=pred
/// ```
pub fn render_trees(roots: &[SpanNode]) -> String {
    let mut out = String::new();
    for root in roots {
        render_node(root, "", "", &mut out);
    }
    out
}

fn render_node(node: &SpanNode, line_prefix: &str, child_prefix: &str, out: &mut String) {
    out.push_str(line_prefix);
    out.push_str(&node.record.name);
    out.push(' ');
    out.push_str(&fmt_ns(node.record.dur_ns));
    for (k, v) in &node.record.attrs {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('\n');
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        let last = i + 1 == n;
        let branch = if last { "└── " } else { "├── " };
        let cont = if last { "    " } else { "│   " };
        render_node(
            child,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{cont}"),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn rec(
        id: u64,
        parent_id: Option<u64>,
        trace_id: u64,
        name: &str,
        start_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent_id,
            trace_id,
            thread: 1,
            name: name.to_string(),
            parent: None,
            start_ns,
            dur_ns: 100,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn builds_nested_tree_in_start_order() {
        let records = vec![
            rec(3, Some(1), 1, "late-child", 20),
            rec(1, None, 1, "root", 0),
            rec(2, Some(1), 1, "early-child", 10),
            rec(4, Some(2), 1, "grandchild", 12),
        ];
        let trees = build_trees(&records);
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert_eq!(root.record.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.name, "early-child");
        assert_eq!(root.children[1].record.name, "late-child");
        assert_eq!(root.children[0].children[0].record.name, "grandchild");
    }

    #[test]
    fn orphans_become_roots() {
        // Parent id 99 is absent (evicted from the ring).
        let records = vec![rec(5, Some(99), 99, "orphan", 0)];
        let trees = build_trees(&records);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].record.name, "orphan");
    }

    #[test]
    fn trace_trees_filters_other_traces() {
        let records = vec![
            rec(1, None, 1, "a", 0),
            rec(2, None, 2, "b", 1),
            rec(3, Some(2), 2, "b-child", 2),
        ];
        let trees = trace_trees(&records, 2);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].record.name, "b");
        assert_eq!(trees[0].children.len(), 1);
    }

    #[test]
    fn self_ns_saturates_on_overlapping_children() {
        let mut parent = rec(1, None, 1, "p", 0);
        parent.dur_ns = 100;
        let mut c1 = rec(2, Some(1), 1, "c1", 0);
        c1.dur_ns = 80;
        let mut c2 = rec(3, Some(1), 1, "c2", 0);
        c2.dur_ns = 80; // overlaps c1 (parallel workers)
        let trees = build_trees(&[parent, c1, c2]);
        assert_eq!(trees[0].self_ns(), 0);
        assert_eq!(trees[0].total_ns(), 100);
    }

    #[test]
    fn renders_live_spans_with_branch_glyphs() {
        let obs = Obs::new();
        {
            let mut root = obs.span("fetch.read");
            root.attr("interm", "m1.s3");
            drop(obs.span("store.partition.load"));
            drop(obs.span("fetch.decode"));
        }
        let trees = build_trees(&obs.recent_spans());
        assert_eq!(trees.len(), 1);
        let text = render_trees(&trees);
        assert!(text.contains("fetch.read"));
        assert!(text.contains("├── store.partition.load"));
        assert!(text.contains("└── fetch.decode"));
        assert!(text.contains("interm=m1.s3"));
    }
}
