//! Folded-stack flamegraph export (the "collapsed" format consumed by
//! `flamegraph.pl`, inferno, speedscope, and most flamegraph viewers):
//! one line per unique stack, `root;child;leaf <value>`.
//!
//! Values are each stack's *self* time in nanoseconds — the span's wall
//! time minus its direct children — so the flamegraph's box widths add up
//! the way sampled profiles do. Overlapping parallel children saturate the
//! parent's self time at zero rather than going negative.

use std::collections::BTreeMap;

use crate::span::SpanRecord;
use crate::tree::{build_trees, SpanNode};

/// Aggregate spans into folded-stack lines, sorted by stack name.
pub fn folded_stacks(records: &[SpanRecord]) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    for root in build_trees(records) {
        fold(&root, "", &mut agg);
    }
    let mut out = String::new();
    for (stack, ns) in agg {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

fn fold(node: &SpanNode, prefix: &str, agg: &mut BTreeMap<String, u64>) {
    // Semicolons separate stack frames; scrub them from frame names.
    let frame = node.record.name.replace(';', ":");
    let stack = if prefix.is_empty() {
        frame
    } else {
        format!("{prefix};{frame}")
    };
    *agg.entry(stack.clone()).or_insert(0) += node.self_ns();
    for child in &node.children {
        fold(child, &stack, agg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn folds_nested_spans_into_stacks() {
        let obs = Obs::new();
        {
            let _root = obs.span("fetch.read");
            drop(obs.span("fetch.decode"));
            drop(obs.span("fetch.decode"));
        }
        let folded = folded_stacks(&obs.recent_spans());
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "two unique stacks: {folded:?}");
        assert!(lines[0].starts_with("fetch.read "));
        assert!(lines[1].starts_with("fetch.read;fetch.decode "));
        // Repeated identical stacks aggregate into one line whose value is
        // the sum of their self times.
        for line in lines {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let _ = value; // parses as an integer
        }
    }

    #[test]
    fn semicolons_in_names_are_scrubbed() {
        let obs = Obs::new();
        drop(obs.span("weird;name"));
        let folded = folded_stacks(&obs.recent_spans());
        assert!(folded.starts_with("weird:name "));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(folded_stacks(&[]), "");
    }
}
