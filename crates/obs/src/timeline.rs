//! The flight recorder: a durable, bounded timeline of metric deltas and
//! engine events.
//!
//! At every burst boundary (logging, reclaim passes, recovery, qcache
//! eviction storms — plus a periodic tick) the engine calls
//! [`FlightRecorder::capture`] with a fresh [`Snapshot`]. The recorder
//! writes a **delta point** — the absolute values of only the metrics that
//! changed since the previous point — as one JSONL line into the current
//! timeline segment, and flushes any buffered [`EngineEvent`]s into the
//! journal segment, stamped with the point's sequence number.
//!
//! Segments live in their own subdirectory under the store directory and
//! are written through a tiny [`SegmentIo`] port (implemented over the
//! store's `StorageBackend` with the same tmp+fsync+rename discipline as
//! partitions), so a crash can orphan a `*.tmp` but never tear a segment.
//! Retention is byte-bounded: when the segment ring outgrows its budget the
//! oldest segments are dropped first. Telemetry I/O is **best-effort** — a
//! failing write increments an error count and is retried at the next
//! capture, but never fails the data path that triggered it.
//!
//! Counters reset when the process restarts (each `Obs` registry starts at
//! zero, exactly like Prometheus counters after a target restart); the
//! journal's `recovery` events mark those boundaries so consumers can
//! detect resets.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use crate::export::{push_json_string, Snapshot};
use crate::journal::EngineEvent;
use crate::json::{self, JsonValue};

/// Target size of one segment before the recorder seals it and starts the
/// next (a capture rewrites the whole current segment atomically, so this
/// bounds per-capture write amplification).
pub const DEFAULT_SEGMENT_TARGET: usize = 16 * 1024;

/// Minimal segment storage port. The obs crate cannot depend on the store
/// crate (the dependency points the other way), so the store implements
/// this over its `StorageBackend` and hands the recorder a boxed instance.
pub trait SegmentIo: Send {
    /// Names of the existing segment files (no paths, files only).
    fn list(&self) -> io::Result<Vec<String>>;
    /// Read a whole segment.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Atomically replace a segment (tmp + fsync + rename + dir fsync).
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Remove a segment durably.
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// In-memory [`SegmentIo`] for unit tests (clones share the same files).
#[derive(Clone, Debug, Default)]
pub struct MemSegmentIo {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemSegmentIo {
    /// A fresh, empty in-memory segment store.
    pub fn new() -> MemSegmentIo {
        MemSegmentIo::default()
    }
}

impl SegmentIo for MemSegmentIo {
    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.files.lock().unwrap().keys().cloned().collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.files.lock().unwrap().remove(name);
        Ok(())
    }
}

/// Absolute histogram state carried by a delta point (recorded whenever the
/// histogram's count moved since the previous point).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistPoint {
    /// Total recorded values so far.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (absent in pre-existing journals; falls back to
    /// `p99` on load).
    pub p999: u64,
}

/// One delta snapshot: the metrics that changed since the previous point,
/// at their new absolute values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelinePoint {
    /// Monotone sequence number (continues across restarts).
    pub seq: u64,
    /// Unix timestamp in milliseconds.
    pub t_ms: u64,
    /// Burst boundary that triggered the capture (`log`, `reclaim`,
    /// `recovery`, `qcache.storm`, `interval`, …).
    pub reason: String,
    /// Changed counters at their new absolute values.
    pub counters: BTreeMap<String, u64>,
    /// Changed gauges at their new values (NaN survives as JSON null).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms whose count moved, at their new absolute summaries.
    pub hists: BTreeMap<String, HistPoint>,
}

impl TimelinePoint {
    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"k\":\"pt\",\"seq\":{},\"t_ms\":{},\"reason\":",
            self.seq, self.t_ms
        );
        push_json_string(&mut out, &self.reason);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            if v.is_finite() {
                let _ = write!(out, "{v}");
            } else {
                out.push_str("null");
            }
        }
        out.push_str("},\"hists\":{");
        for (i, (name, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99, h.p999
            );
        }
        out.push_str("}}");
        out
    }

    /// Parse a JSONL line previously produced by
    /// [`TimelinePoint::to_json_line`]. Returns `None` for non-point records.
    pub fn from_json(v: &JsonValue) -> Option<TimelinePoint> {
        if v.get("k")?.as_str()? != "pt" {
            return None;
        }
        let counters = v
            .get("counters")?
            .as_obj()?
            .iter()
            .filter_map(|(k, c)| Some((k.clone(), c.as_u64()?)))
            .collect();
        let gauges = v
            .get("gauges")?
            .as_obj()?
            .iter()
            .map(|(k, g)| (k.clone(), g.as_f64().unwrap_or(f64::NAN)))
            .collect();
        let hists = v
            .get("hists")?
            .as_obj()?
            .iter()
            .filter_map(|(k, h)| {
                let p99 = h.get("p99")?.as_u64()?;
                Some((
                    k.clone(),
                    HistPoint {
                        count: h.get("count")?.as_u64()?,
                        sum: h.get("sum")?.as_u64()?,
                        min: h.get("min")?.as_u64()?,
                        max: h.get("max")?.as_u64()?,
                        p50: h.get("p50")?.as_u64()?,
                        p95: h.get("p95")?.as_u64()?,
                        p99,
                        // Journals written before p99.9 existed lack the
                        // field; the p99 fallback keeps them loadable.
                        p999: h.get("p999").and_then(|v| v.as_u64()).unwrap_or(p99),
                    },
                ))
            })
            .collect();
        Some(TimelinePoint {
            seq: v.get("seq")?.as_u64()?,
            t_ms: v.get("t_ms")?.as_u64()?,
            reason: v.get("reason")?.as_str()?.to_string(),
            counters,
            gauges,
            hists,
        })
    }
}

/// Which ring a segment belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum SegKind {
    Points,
    Events,
}

/// Parse `tl_XXXXXXXXXXXXXXXX.jsonl` / `ev_XXXXXXXXXXXXXXXX.jsonl` names.
fn parse_segment_name(name: &str) -> Option<(SegKind, u64)> {
    let (kind, rest) = if let Some(r) = name.strip_prefix("tl_") {
        (SegKind::Points, r)
    } else if let Some(r) = name.strip_prefix("ev_") {
        (SegKind::Events, r)
    } else {
        return None;
    };
    let hex = rest.strip_suffix(".jsonl")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(|seq| (kind, seq))
}

fn segment_name(kind: SegKind, first_seq: u64) -> String {
    match kind {
        SegKind::Points => format!("tl_{first_seq:016x}.jsonl"),
        SegKind::Events => format!("ev_{first_seq:016x}.jsonl"),
    }
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Point-in-time recorder statistics (mirrored into `telemetry.*` gauges by
/// the engine after each capture).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Points successfully written.
    pub captures: u64,
    /// Events recorded (buffered or flushed).
    pub events: u64,
    /// Best-effort writes/removals that failed.
    pub write_errors: u64,
    /// Segments dropped by retention.
    pub segments_dropped: u64,
    /// Current total bytes across all segments.
    pub total_bytes: u64,
    /// Current number of segments.
    pub segments: u64,
    /// The sequence number the next point will get.
    pub next_seq: u64,
}

/// Last-seen metric values, for delta computation.
#[derive(Default)]
struct LastSeen {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, u64>, // f64 bit patterns (NaN-stable compare)
    hist_counts: HashMap<String, u64>,
}

/// The durable telemetry recorder. One per open engine instance; all writes
/// are best-effort (see module docs).
pub struct FlightRecorder {
    io: Box<dyn SegmentIo>,
    budget_bytes: u64,
    segment_target: usize,
    next_seq: u64,
    last: LastSeen,
    /// Buffered content + name of the currently-open segment of each ring.
    cur: [(String, Option<String>); 2], // indexed by SegKind as usize
    pending: Vec<EngineEvent>,
    sizes: BTreeMap<String, u64>,
    stats: RecorderStats,
}

impl FlightRecorder {
    /// Open a recorder over existing segments: sequence numbering continues
    /// after the highest sequence found on disk, and retention accounting
    /// picks up every existing segment. Scan errors are swallowed (the
    /// recorder starts fresh, counting a write error) — telemetry must
    /// never fail an engine open.
    pub fn open(io: Box<dyn SegmentIo>, budget_bytes: u64) -> FlightRecorder {
        // A target near the budget would leave the whole ring in one
        // segment, so retention could only drop everything at once; clamp
        // so rotation always keeps a few sealed segments of history.
        let target = DEFAULT_SEGMENT_TARGET.min((budget_bytes as usize / 4).max(512));
        let mut rec = FlightRecorder {
            io,
            budget_bytes,
            segment_target: target,
            next_seq: 0,
            last: LastSeen::default(),
            cur: [(String::new(), None), (String::new(), None)],
            pending: Vec::new(),
            sizes: BTreeMap::new(),
            stats: RecorderStats::default(),
        };
        match rec.io.list() {
            Ok(names) => {
                let mut newest: Option<(u64, String)> = None;
                for name in names {
                    let Some((_, first_seq)) = parse_segment_name(&name) else {
                        // A crash mid-`write_atomic` can strand a `.tmp`
                        // orphan; sweep it so it never accumulates against
                        // the budget. Other foreign files are left alone.
                        if name.ends_with(".tmp") {
                            let _ = rec.io.remove(&name);
                        }
                        continue;
                    };
                    let len = rec.io.read(&name).map(|b| b.len() as u64).unwrap_or(0);
                    rec.sizes.insert(name.clone(), len);
                    if newest.as_ref().is_none_or(|(s, _)| first_seq >= *s) {
                        newest = Some((first_seq, name));
                    }
                }
                // The newest segment's last valid line carries the highest
                // sequence number written so far.
                rec.next_seq = rec
                    .sizes
                    .keys()
                    .filter_map(|n| {
                        let (_, first) = parse_segment_name(n)?;
                        let bytes = rec.io.read(n).ok()?;
                        let max_line_seq = String::from_utf8_lossy(&bytes)
                            .lines()
                            .filter_map(|l| json::parse(l).ok())
                            .filter_map(|v| v.get("seq")?.as_u64())
                            .max();
                        Some(max_line_seq.unwrap_or(first))
                    })
                    .max()
                    .map(|s| s + 1)
                    .unwrap_or(0);
            }
            Err(_) => rec.stats.write_errors += 1,
        }
        rec.stats.segments = rec.sizes.len() as u64;
        rec.stats.total_bytes = rec.sizes.values().sum();
        rec.stats.next_seq = rec.next_seq;
        rec
    }

    /// Override the segment rotation target (tests use tiny segments to
    /// exercise retention).
    pub fn set_segment_target(&mut self, bytes: usize) {
        self.segment_target = bytes.max(1);
    }

    /// Current recorder statistics.
    pub fn stats(&self) -> RecorderStats {
        self.stats
    }

    /// The configured retention budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Buffer an engine event. It is flushed to the journal by the next
    /// [`FlightRecorder::capture`], stamped with that capture's sequence.
    pub fn record_event(
        &mut self,
        kind: &str,
        intermediate: Option<&str>,
        details: impl IntoIterator<Item = (String, String)>,
    ) {
        self.stats.events += 1;
        self.pending.push(EngineEvent {
            snap_seq: 0, // stamped at flush
            t_ms: unix_ms(),
            kind: kind.to_string(),
            intermediate: intermediate.map(str::to_string),
            details: details.into_iter().collect(),
        });
    }

    /// Events recorded but not yet flushed to disk, stamped with the
    /// sequence number the next capture will use.
    pub fn pending_events(&self) -> Vec<EngineEvent> {
        self.pending
            .iter()
            .cloned()
            .map(|mut e| {
                e.snap_seq = self.next_seq;
                e
            })
            .collect()
    }

    /// Capture a delta point from `snap` (and flush buffered events). A
    /// no-op returning `None` when nothing changed and no events are
    /// pending; otherwise returns the point's sequence number. All I/O is
    /// best-effort.
    pub fn capture(&mut self, snap: &Snapshot, reason: &str) -> Option<u64> {
        let mut point = TimelinePoint {
            seq: 0,
            t_ms: unix_ms(),
            reason: reason.to_string(),
            ..TimelinePoint::default()
        };
        for (name, &v) in &snap.counters {
            // Skip still-zero counters that were never recorded (registered
            // but untouched); record every real change.
            let seen = self.last.counters.contains_key(name);
            if (seen || v != 0) && self.last.counters.get(name) != Some(&v) {
                point.counters.insert(name.clone(), v);
            }
        }
        for (name, &v) in &snap.gauges {
            let bits = v.to_bits();
            if self.last.gauges.get(name) != Some(&bits) {
                point.gauges.insert(name.clone(), v);
            }
        }
        for (name, h) in &snap.histograms {
            if self.last.hist_counts.get(name).copied().unwrap_or(0) != h.count && h.count > 0 {
                point.hists.insert(
                    name.clone(),
                    HistPoint {
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                        p50: h.p50,
                        p95: h.p95,
                        p99: h.p99,
                        p999: h.p999,
                    },
                );
            }
        }
        if point.counters.is_empty()
            && point.gauges.is_empty()
            && point.hists.is_empty()
            && self.pending.is_empty()
        {
            return None;
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.next_seq = self.next_seq;
        point.seq = seq;

        // Commit the delta baselines regardless of write success — a failed
        // write loses that point, it must not double future deltas.
        for (name, &v) in &point.counters {
            self.last.counters.insert(name.clone(), v);
        }
        for (name, &v) in &point.gauges {
            self.last.gauges.insert(name.clone(), v.to_bits());
        }
        for (name, h) in &point.hists {
            self.last.hist_counts.insert(name.clone(), h.count);
        }

        self.append_line(SegKind::Points, seq, &point.to_json_line());
        if !self.pending.is_empty() {
            let pending = std::mem::take(&mut self.pending);
            let mut lines = String::new();
            for mut ev in pending {
                ev.snap_seq = seq;
                lines.push_str(&ev.to_json_line());
                lines.push('\n');
            }
            self.append_lines(SegKind::Events, seq, &lines);
        }
        self.enforce_budget();
        self.stats.captures += 1;
        self.stats.segments = self.sizes.len() as u64;
        self.stats.total_bytes = self.sizes.values().sum();
        Some(seq)
    }

    fn append_line(&mut self, kind: SegKind, seq: u64, line: &str) {
        let mut lines = String::with_capacity(line.len() + 1);
        lines.push_str(line);
        lines.push('\n');
        self.append_lines(kind, seq, &lines);
    }

    /// Append pre-terminated lines to the current segment of `kind`,
    /// rewriting it atomically; seal it once it outgrows the target.
    fn append_lines(&mut self, kind: SegKind, seq: u64, lines: &str) {
        let slot = &mut self.cur[kind as usize];
        slot.0.push_str(lines);
        let name = slot
            .1
            .get_or_insert_with(|| segment_name(kind, seq))
            .clone();
        let buf = slot.0.clone();
        match self.io.write_atomic(&name, buf.as_bytes()) {
            Ok(()) => {
                self.sizes.insert(name.clone(), buf.len() as u64);
            }
            Err(_) => {
                self.stats.write_errors += 1;
                // Keep the buffer: the next capture rewrites the whole
                // segment, so the lost lines ride along then.
            }
        }
        if buf.len() >= self.segment_target {
            let slot = &mut self.cur[kind as usize];
            slot.0.clear();
            slot.1 = None;
        }
    }

    /// Drop oldest segments until the ring fits the budget. The bound is
    /// hard: even the current segment is dropped if it alone exceeds it.
    fn enforce_budget(&mut self) {
        loop {
            let total: u64 = self.sizes.values().sum();
            if total <= self.budget_bytes {
                break;
            }
            let Some(oldest) = self
                .sizes
                .keys()
                .filter_map(|n| parse_segment_name(n).map(|(_, s)| (s, n.clone())))
                .min()
                .map(|(_, n)| n)
            else {
                break;
            };
            if self.io.remove(&oldest).is_err() {
                self.stats.write_errors += 1;
                break; // avoid spinning when removal keeps failing
            }
            self.sizes.remove(&oldest);
            self.stats.segments_dropped += 1;
            for slot in &mut self.cur {
                if slot.1.as_deref() == Some(oldest.as_str()) {
                    slot.0.clear();
                    slot.1 = None;
                }
            }
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

/// A loaded timeline: every surviving point and event, in sequence order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Metric delta points, in increasing sequence order.
    pub points: Vec<TimelinePoint>,
    /// Journal events, ordered by the snapshot sequence they landed in.
    pub events: Vec<EngineEvent>,
}

impl Timeline {
    /// Load every readable segment. Unknown files and `*.tmp` orphans are
    /// skipped; within a segment, parsing stops at the first torn line
    /// (atomic segment writes make this a belt-and-braces guard).
    pub fn load(io: &dyn SegmentIo) -> io::Result<Timeline> {
        let mut tl = Timeline::default();
        let mut names: Vec<(u64, SegKind, String)> = io
            .list()?
            .into_iter()
            .filter_map(|n| parse_segment_name(&n).map(|(k, s)| (s, k, n)))
            .collect();
        names.sort();
        for (_, kind, name) in names {
            let Ok(bytes) = io.read(&name) else { continue };
            for line in String::from_utf8_lossy(&bytes).lines() {
                let Ok(v) = json::parse(line) else { break };
                match kind {
                    SegKind::Points => {
                        if let Some(p) = TimelinePoint::from_json(&v) {
                            tl.points.push(p);
                        }
                    }
                    SegKind::Events => {
                        if let Some(e) = EngineEvent::from_json(&v) {
                            tl.events.push(e);
                        }
                    }
                }
            }
        }
        tl.points.sort_by_key(|p| p.seq);
        tl.events
            .sort_by(|a, b| (a.snap_seq, a.t_ms, &a.kind).cmp(&(b.snap_seq, b.t_ms, &b.kind)));
        Ok(tl)
    }

    /// The highest point sequence, if any points survive.
    pub fn max_seq(&self) -> Option<u64> {
        self.points.last().map(|p| p.seq)
    }

    /// Every metric name that appears in any point.
    pub fn metric_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for p in &self.points {
            out.extend(p.counters.keys().cloned());
            out.extend(p.gauges.keys().cloned());
            out.extend(p.hists.keys().cloned());
        }
        out
    }

    /// The series of a counter or gauge: `(seq, t_ms, value)` at every point
    /// where it changed (delta points record changes only; carry the value
    /// forward between samples to reconstruct a step function).
    pub fn series(&self, metric: &str) -> Vec<(u64, u64, f64)> {
        let mut out = Vec::new();
        for p in &self.points {
            if let Some(&v) = p.counters.get(metric) {
                out.push((p.seq, p.t_ms, v as f64));
            } else if let Some(&v) = p.gauges.get(metric) {
                out.push((p.seq, p.t_ms, v));
            }
        }
        out
    }

    /// The series of a histogram: `(seq, t_ms, state)` at every point where
    /// its count moved.
    pub fn hist_series(&self, metric: &str) -> Vec<(u64, u64, HistPoint)> {
        self.points
            .iter()
            .filter_map(|p| p.hists.get(metric).map(|h| (p.seq, p.t_ms, *h)))
            .collect()
    }

    /// Events of one kind, in order.
    pub fn events_by_kind(&self, kind: &str) -> Vec<&EngineEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Events concerning one intermediate, in order.
    pub fn events_for(&self, intermediate: &str) -> Vec<&EngineEvent> {
        self.events
            .iter()
            .filter(|e| e.intermediate.as_deref() == Some(intermediate))
            .collect()
    }

    /// Restrict to points/events with `from_seq <= seq <= to_seq`.
    pub fn window(&self, from_seq: u64, to_seq: u64) -> Timeline {
        Timeline {
            points: self
                .points
                .iter()
                .filter(|p| (from_seq..=to_seq).contains(&p.seq))
                .cloned()
                .collect(),
            events: self
                .events
                .iter()
                .filter(|e| (from_seq..=to_seq).contains(&e.snap_seq))
                .cloned()
                .collect(),
        }
    }

    /// Serialize the whole timeline as one JSON document.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_json_line());
        }
        out.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.to_json_line());
        }
        out.push_str("]}");
        out
    }

    /// Render a compact table: one row per point (with the number of
    /// changed metrics), events interleaved under the point they landed in.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.points.is_empty() && self.events.is_empty() {
            out.push_str("(empty timeline)\n");
            return out;
        }
        let t0 = self.points.first().map(|p| p.t_ms).unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>6}  {:>9}  {:<12}  changed",
            "seq", "t+ms", "reason"
        );
        let mut ei = 0;
        for p in &self.points {
            // Events stamped with earlier sequences than any surviving
            // point (retention dropped their point) print first.
            while ei < self.events.len() && self.events[ei].snap_seq < p.seq {
                Self::render_event(&mut out, &self.events[ei]);
                ei += 1;
            }
            let _ = writeln!(
                out,
                "{:>6}  {:>9}  {:<12}  {}c {}g {}h",
                p.seq,
                p.t_ms.saturating_sub(t0),
                p.reason,
                p.counters.len(),
                p.gauges.len(),
                p.hists.len()
            );
            while ei < self.events.len() && self.events[ei].snap_seq == p.seq {
                Self::render_event(&mut out, &self.events[ei]);
                ei += 1;
            }
        }
        while ei < self.events.len() {
            Self::render_event(&mut out, &self.events[ei]);
            ei += 1;
        }
        out
    }

    fn render_event(out: &mut String, e: &EngineEvent) {
        let _ = write!(out, "{:>6}  └ {}", e.snap_seq, e.kind);
        if let Some(i) = &e.intermediate {
            let _ = write!(out, " {i}");
        }
        for (k, v) in &e.details {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    fn recorder(io: MemSegmentIo, budget: u64) -> FlightRecorder {
        FlightRecorder::open(Box::new(io), budget)
    }

    #[test]
    fn point_round_trips_through_json() {
        let mut p = TimelinePoint {
            seq: 42,
            t_ms: 1_700_000_000_000,
            reason: "log".into(),
            ..TimelinePoint::default()
        };
        p.counters.insert("store.put.count".into(), 7);
        p.gauges.insert("adaptive.last_gamma".into(), 0.125);
        p.hists.insert(
            "store.put.ns".into(),
            HistPoint {
                count: 3,
                sum: 99,
                min: 10,
                max: 60,
                p50: 29,
                p95: 60,
                p99: 60,
                p999: 60,
            },
        );
        let line = p.to_json_line();
        let parsed = TimelinePoint::from_json(&json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn hist_points_without_p999_fall_back_to_p99() {
        // A journal line written before p99.9 existed must still load.
        let line = "{\"k\":\"pt\",\"seq\":1,\"t_ms\":5,\"reason\":\"log\",\"counters\":{},\
                    \"gauges\":{},\"hists\":{\"h\":{\"count\":2,\"sum\":9,\"min\":1,\
                    \"max\":8,\"p50\":4,\"p95\":8,\"p99\":8}}}";
        let p = TimelinePoint::from_json(&json::parse(line).unwrap()).unwrap();
        assert_eq!(p.hists["h"].p999, 8);
    }

    #[test]
    fn capture_records_only_deltas() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);

        obs.counter("a").add(2);
        obs.gauge("g").set(1.5);
        assert_eq!(rec.capture(&obs.snapshot(), "log"), Some(0));
        // Nothing changed: no point.
        assert_eq!(rec.capture(&obs.snapshot(), "log"), None);
        obs.counter("a").inc();
        obs.counter("b").inc();
        assert_eq!(rec.capture(&obs.snapshot(), "reclaim"), Some(1));

        let tl = Timeline::load(&io).unwrap();
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points[0].counters["a"], 2);
        assert_eq!(tl.points[0].gauges["g"], 1.5);
        assert_eq!(tl.points[1].counters["a"], 3);
        assert_eq!(tl.points[1].counters["b"], 1);
        assert!(
            !tl.points[1].gauges.contains_key("g"),
            "unchanged gauge elided"
        );
        assert_eq!(
            tl.series("a"),
            vec![(0, tl.points[0].t_ms, 2.0), (1, tl.points[1].t_ms, 3.0),]
        );
    }

    #[test]
    fn zero_valued_new_counters_are_elided() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        obs.counter("never_hit"); // registered, still zero
        obs.counter("hit").inc();
        rec.capture(&obs.snapshot(), "log").unwrap();
        let tl = Timeline::load(&io).unwrap();
        assert!(!tl.points[0].counters.contains_key("never_hit"));
        assert!(tl.points[0].counters.contains_key("hit"));
    }

    #[test]
    fn events_are_stamped_with_the_flushing_sequence() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        obs.counter("c").inc();
        rec.capture(&obs.snapshot(), "log");
        rec.record_event(
            "reclaim.demote",
            Some("m1.s3"),
            [("from".to_string(), "FULL".to_string())],
        );
        assert_eq!(rec.pending_events().len(), 1);
        assert_eq!(rec.pending_events()[0].snap_seq, 1);
        obs.counter("c").inc();
        let seq = rec.capture(&obs.snapshot(), "reclaim").unwrap();
        assert_eq!(seq, 1);
        let tl = Timeline::load(&io).unwrap();
        assert_eq!(tl.events.len(), 1);
        assert_eq!(tl.events[0].snap_seq, seq);
        assert_eq!(tl.events_by_kind("reclaim.demote").len(), 1);
        assert_eq!(tl.events_for("m1.s3").len(), 1);
        assert!(rec.pending_events().is_empty());
    }

    #[test]
    fn pending_events_alone_force_a_point() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        rec.record_event("recovery", None, []);
        let seq = rec.capture(&obs.snapshot(), "recovery");
        assert_eq!(seq, Some(0));
        let tl = Timeline::load(&io).unwrap();
        assert_eq!(
            tl.points.len(),
            1,
            "event flush still writes its anchor point"
        );
        assert_eq!(tl.events.len(), 1);
    }

    #[test]
    fn sequence_numbering_continues_across_reopen() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        {
            let mut rec = recorder(io.clone(), 1 << 20);
            obs.counter("c").inc();
            rec.capture(&obs.snapshot(), "log");
            obs.counter("c").inc();
            rec.capture(&obs.snapshot(), "log");
        }
        // "New process": fresh recorder and registry over the same segments.
        let obs2 = Obs::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        assert_eq!(rec.stats().next_seq, 2);
        obs2.counter("c").inc();
        assert_eq!(rec.capture(&obs2.snapshot(), "log"), Some(2));
        let tl = Timeline::load(&io).unwrap();
        let seqs: Vec<u64> = tl.points.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        // Counter reset across restart is visible, like Prometheus.
        assert_eq!(tl.series("c").last().unwrap().2, 1.0);
    }

    #[test]
    fn retention_never_exceeds_the_budget() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 2048);
        rec.set_segment_target(256);
        let c = obs.counter("churn");
        for i in 0..200 {
            c.inc();
            obs.gauge("padding.to.make.lines.longer").set(i as f64);
            rec.capture(&obs.snapshot(), "log");
            let total: u64 = io
                .list()
                .unwrap()
                .iter()
                .map(|n| io.read(n).unwrap().len() as u64)
                .sum();
            assert!(
                total <= 2048,
                "telemetry bytes {total} exceed budget after capture {i}"
            );
        }
        assert!(
            rec.stats().segments_dropped > 0,
            "retention must have kicked in"
        );
        // The survivors are the newest points.
        let tl = Timeline::load(&io).unwrap();
        assert!(!tl.points.is_empty());
        assert_eq!(tl.max_seq(), Some(199));
        for w in tl.points.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1, "surviving points are contiguous");
        }
    }

    #[test]
    fn torn_trailing_line_is_ignored_on_load() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        obs.counter("c").inc();
        rec.capture(&obs.snapshot(), "log");
        obs.counter("c").inc();
        rec.capture(&obs.snapshot(), "log");
        // Tear the segment's second line in half, behind the recorder's back.
        let name = io.list().unwrap()[0].clone();
        let bytes = io.read(&name).unwrap();
        let cut = bytes.len() - 20;
        io.write_atomic(&name, &bytes[..cut]).unwrap();
        let tl = Timeline::load(&io).unwrap();
        assert_eq!(tl.points.len(), 1, "torn tail dropped, valid prefix kept");
        assert_eq!(tl.points[0].seq, 0);
    }

    #[test]
    fn garbage_segments_do_not_poison_the_load() {
        let io = MemSegmentIo::new();
        io.write_atomic("tl_0000000000000000.jsonl", b"not json at all\n")
            .unwrap();
        io.write_atomic("ev_0000000000000000.jsonl", b"\x00\xff\x80 binary")
            .unwrap();
        io.write_atomic("tl_0000000000000005.jsonl.tmp", b"orphan")
            .unwrap();
        io.write_atomic("unrelated.txt", b"ignored").unwrap();
        let tl = Timeline::load(&io).unwrap();
        assert!(tl.points.is_empty());
        assert!(tl.events.is_empty());
    }

    #[test]
    fn window_filters_points_and_events() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        for _ in 0..5 {
            obs.counter("c").inc();
            rec.record_event("tick", None, []);
            rec.capture(&obs.snapshot(), "log");
        }
        let tl = Timeline::load(&io).unwrap();
        let w = tl.window(1, 3);
        assert_eq!(
            w.points.iter().map(|p| p.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(w.events.len(), 3);
    }

    #[test]
    fn timeline_json_and_table_render() {
        let obs = Obs::new();
        let io = MemSegmentIo::new();
        let mut rec = recorder(io.clone(), 1 << 20);
        obs.counter("c").inc();
        obs.histogram("h").record(5);
        rec.record_event(
            "compaction",
            None,
            [("removed".to_string(), "2".to_string())],
        );
        rec.capture(&obs.snapshot(), "reclaim");
        let tl = Timeline::load(&io).unwrap();
        let json_doc = tl.to_json_string();
        let parsed = json::parse(&json_doc).unwrap();
        assert_eq!(parsed.get("points").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(parsed.get("events").unwrap().as_arr().unwrap().len(), 1);
        let table = tl.render_table();
        assert!(table.contains("reclaim"));
        assert!(table.contains("compaction"));
        assert!(table.contains("removed=2"));
        assert_eq!(tl.hist_series("h").len(), 1);
        assert_eq!(tl.hist_series("h")[0].2.count, 1);
        assert!(tl.metric_names().contains("h"));
    }
}
