//! Property tests for the zone-map / max-activation contracts: the top list
//! always reproduces the scan's exact topk prefix (bit patterns included),
//! pruned block sets are a superset of the blocks containing matches, and
//! the persisted form round-trips exactly.

use mistique_index::{reference_topk, IndexBuilder, IntermediateIndex};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -100.0..100.0f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => Just(7.25), // duplicates force tie-breaks
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn top_list_always_matches_reference(
        vals in proptest::collection::vec(arb_value(), 1..80),
        block in 1..16usize,
        m in 0..24usize,
        k in 0..24usize,
    ) {
        let mut b = IndexBuilder::new(m, block);
        for (i, chunk) in vals.chunks(block).enumerate() {
            b.observe_block("c", i, chunk);
        }
        let idx = b.finish("int", "FULL", vals.len(), 1);
        if let Some(served) = idx.topk("c", k) {
            let reference = reference_topk(&vals, k);
            prop_assert_eq!(served.len(), reference.len());
            for (a, b) in served.iter().zip(&reference) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        } else {
            prop_assert!(k > m && vals.len() > m, "refusal only when unprovable");
        }
    }

    #[test]
    fn pruned_blocks_cover_every_match(
        vals in proptest::collection::vec(arb_value(), 1..80),
        block in 1..16usize,
        threshold in arb_value(),
    ) {
        let mut b = IndexBuilder::new(4, block);
        for (i, chunk) in vals.chunks(block).enumerate() {
            b.observe_block("c", i, chunk);
        }
        let idx = b.finish("int", "FULL", vals.len(), 1);
        let (keep, total) = idx.blocks_passing_gt("c", threshold).unwrap();
        prop_assert_eq!(total, vals.len().div_ceil(block));
        for (row, v) in vals.iter().enumerate() {
            if *v > threshold {
                prop_assert!(
                    keep.contains(&(row / block)),
                    "row {} (v={}) matches but its block was pruned", row, v
                );
            }
        }
    }

    #[test]
    fn persisted_form_round_trips_exactly(
        vals in proptest::collection::vec(arb_value(), 1..60),
        block in 1..12usize,
        m in 0..16usize,
        version in 0..1000u64,
    ) {
        let mut b = IndexBuilder::new(m, block);
        for (i, chunk) in vals.chunks(block).enumerate() {
            b.observe_block("c", i, chunk);
        }
        let idx = b.finish("model/int.layer1", "POOL_QT(2)+LP_QT", vals.len(), version);
        let bytes = idx.to_bytes().unwrap();
        let back = IntermediateIndex::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, idx);
    }
}
