//! Secondary indexes over stored intermediates: per-RowBlock **zone maps**
//! (min/max/count per column, so threshold scans skip blocks that cannot
//! match) and per-column **max-activation lists** (the top-m rows by value,
//! DeepEverest-style), built from the *decoded* values a scan would see.
//!
//! The contract is bit-identity with the scan paths in `mistique-core`:
//!
//! * `topk` sorts with `b.total_cmp(&a)` (descending total order, stable, so
//!   ties keep ascending row id) and truncates to `k`. A max-activation list
//!   stores exactly the first `min(m, n)` elements of that sequence, so any
//!   `k ≤ len` is served verbatim.
//! * `select_where_gt` keeps rows with `v > t`, which is `false` for NaN.
//!   A block may therefore be skipped iff its maximum over non-NaN values is
//!   `≤ t` — the zone-map pruning rule. Skipped blocks provably contain no
//!   matches; kept blocks are re-scanned, so the answer is identical.
//!
//! Values are persisted as IEEE-754 bit patterns (`u64`), not decimal
//! floats: text floats cannot represent NaN payloads, and bit patterns
//! round-trip `-0.0` and NaN exactly — which the total-order contract
//! requires. The on-disk format is a dependency-free line-oriented text
//! layout (see [`IntermediateIndex::to_bytes`]); any malformed file is
//! rejected on load and the engine degrades to the scan path.

use std::collections::BTreeMap;

/// Bump when the on-disk layout changes; loaders drop (never trust) files
/// with any other version.
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Default max-activation list length (`top_m`). Queries with `k` beyond the
/// list fall back to a scan, so this bounds index size, not correctness.
pub const DEFAULT_TOP_M: usize = 32;

/// Zone-map entry of one RowBlock of one column: min/max over the block's
/// non-NaN decoded values (`+inf`/`-inf` when the block is all-NaN or
/// empty), plus the row count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockStats {
    /// Bit pattern of the minimum non-NaN value (`+inf` if none).
    pub min_bits: u64,
    /// Bit pattern of the maximum non-NaN value (`-inf` if none).
    pub max_bits: u64,
    /// Rows in the block.
    pub count: u32,
}

impl BlockStats {
    /// Stats of one block's decoded values.
    pub fn from_values(values: &[f64]) -> BlockStats {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            if v.is_nan() {
                continue;
            }
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        BlockStats {
            min_bits: min.to_bits(),
            max_bits: max.to_bits(),
            count: values.len() as u32,
        }
    }

    /// Minimum non-NaN value (`+inf` when the block has none).
    pub fn min(&self) -> f64 {
        f64::from_bits(self.min_bits)
    }

    /// Maximum non-NaN value (`-inf` when the block has none).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits)
    }

    /// Whether the block can contain a row with `v > threshold`. NaN rows
    /// never match `>`, so `max ≤ threshold` (or a NaN threshold) makes the
    /// block safe to skip.
    pub fn may_match_gt(&self, threshold: f64) -> bool {
        self.max() > threshold
    }
}

/// One max-activation entry: a row id and the bit pattern of its value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopEntry {
    /// Global row id.
    pub row: u64,
    /// Bit pattern of the decoded value.
    pub bits: u64,
}

impl TopEntry {
    /// The decoded value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits)
    }
}

/// The exact order `topk` produces: descending `total_cmp` on the value,
/// ties (identical bit patterns) broken by ascending row — which is what a
/// stable descending sort over a row-ordered scan yields.
fn topk_order(a: &TopEntry, b: &TopEntry) -> std::cmp::Ordering {
    b.value()
        .total_cmp(&a.value())
        .then_with(|| a.row.cmp(&b.row))
}

/// Index of one column: zone maps plus the max-activation list.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnIndex {
    /// Per-RowBlock stats, indexed by block number.
    pub zones: Vec<BlockStats>,
    /// The first `min(m, n_rows)` entries of the column's topk sequence.
    pub top: Vec<TopEntry>,
}

impl ColumnIndex {
    /// Block numbers that may contain a `v > threshold` match, ascending,
    /// plus the total block count.
    pub fn blocks_passing_gt(&self, threshold: f64) -> (Vec<usize>, usize) {
        let keep = self
            .zones
            .iter()
            .enumerate()
            .filter(|(_, z)| z.may_match_gt(threshold))
            .map(|(b, _)| b)
            .collect();
        (keep, self.zones.len())
    }
}

/// The persisted index of one intermediate. `scheme`, `row_block_size`, and
/// `n_rows` pin the decoded representation the index was built over; a
/// mismatch with the live metadata means the file is stale and must be
/// ignored (the scan path is always correct).
#[derive(Clone, Debug, PartialEq)]
pub struct IntermediateIndex {
    /// On-disk layout version ([`INDEX_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The intermediate this index covers.
    pub intermediate: String,
    /// Quantization scheme name the values were decoded under (e.g. `FULL`,
    /// `POOL_QT(2)+LP_QT`). Demotion changes decoded values, so a scheme
    /// mismatch invalidates the index.
    pub scheme: String,
    /// RowBlock size the zone maps are aligned to.
    pub row_block_size: usize,
    /// Rows covered.
    pub n_rows: usize,
    /// Monotone rebuild counter; feeds the query-cache key so a drop or
    /// rebuild can never serve a stale cached result as current.
    pub version: u64,
    /// Per-column indexes.
    pub columns: BTreeMap<String, ColumnIndex>,
}

impl IntermediateIndex {
    /// Whether this index still describes the live intermediate.
    pub fn matches(&self, scheme: &str, row_block_size: usize, n_rows: usize) -> bool {
        self.format_version == INDEX_FORMAT_VERSION
            && self.scheme == scheme
            && self.row_block_size == row_block_size
            && self.n_rows == n_rows
    }

    /// Serve `topk(column, k)` from the max-activation list, or `None` when
    /// the list cannot prove it holds the full answer (`k` beyond the list
    /// on a column longer than the list).
    pub fn topk(&self, column: &str, k: usize) -> Option<Vec<(usize, f64)>> {
        let col = self.columns.get(column)?;
        let complete = col.top.len() == self.n_rows;
        if k > col.top.len() && !complete {
            return None;
        }
        Some(
            col.top
                .iter()
                .take(k)
                .map(|e| (e.row as usize, e.value()))
                .collect(),
        )
    }

    /// Zone-map pruning for `select_where_gt(column, threshold)`: the block
    /// numbers that may match, plus the total block count. `None` when the
    /// column is not indexed.
    pub fn blocks_passing_gt(&self, column: &str, threshold: f64) -> Option<(Vec<usize>, usize)> {
        self.columns
            .get(column)
            .map(|c| c.blocks_passing_gt(threshold))
    }

    /// Serialize for `write_atomic`-style persistence. The layout is a
    /// dependency-free line-oriented text format:
    ///
    /// ```text
    /// MISTIQUEIDX <format_version>
    /// version <u64>
    /// row_block_size <usize>
    /// n_rows <usize>
    /// intermediate <rest of line>
    /// scheme <rest of line>
    /// columns <count>
    /// col <n_zones> <n_top> <name…>        (per column)
    /// z <min_bits> <max_bits> <count>      (n_zones lines)
    /// t <row> <bits>                       (n_top lines)
    /// ```
    ///
    /// f64 values travel as `u64` bit patterns, so NaN payloads, ±inf and
    /// `-0.0` round-trip exactly. Names containing newlines cannot be
    /// represented and are an error.
    pub fn to_bytes(&self) -> Result<Vec<u8>, String> {
        use std::fmt::Write;
        let no_newlines = |what: &str, s: &str| -> Result<(), String> {
            if s.contains(['\n', '\r']) {
                Err(format!("index serialize: {what} contains a newline"))
            } else {
                Ok(())
            }
        };
        no_newlines("intermediate id", &self.intermediate)?;
        no_newlines("scheme", &self.scheme)?;
        let mut s = String::new();
        let _ = writeln!(s, "MISTIQUEIDX {}", self.format_version);
        let _ = writeln!(s, "version {}", self.version);
        let _ = writeln!(s, "row_block_size {}", self.row_block_size);
        let _ = writeln!(s, "n_rows {}", self.n_rows);
        let _ = writeln!(s, "intermediate {}", self.intermediate);
        let _ = writeln!(s, "scheme {}", self.scheme);
        let _ = writeln!(s, "columns {}", self.columns.len());
        for (name, col) in &self.columns {
            no_newlines("column name", name)?;
            let _ = writeln!(s, "col {} {} {}", col.zones.len(), col.top.len(), name);
            for z in &col.zones {
                let _ = writeln!(s, "z {} {} {}", z.min_bits, z.max_bits, z.count);
            }
            for t in &col.top {
                let _ = writeln!(s, "t {} {}", t.row, t.bits);
            }
        }
        Ok(s.into_bytes())
    }

    /// Parse a persisted index. Any malformed or version-mismatched file is
    /// an error — callers degrade to the scan path, never guess.
    pub fn from_bytes(bytes: &[u8]) -> Result<IntermediateIndex, String> {
        fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
            s.parse()
                .map_err(|_| format!("index parse: bad {what} {s:?}"))
        }
        fn field<'a>(
            lines: &mut std::str::Lines<'a>,
            key: &'static str,
        ) -> Result<&'a str, String> {
            let line = lines
                .next()
                .ok_or_else(|| format!("index parse: missing {key}"))?;
            line.strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| format!("index parse: expected {key}, got {line:?}"))
        }
        let text = std::str::from_utf8(bytes).map_err(|_| "index parse: not UTF-8".to_string())?;
        // Every line — including the last — is newline-terminated, so a
        // truncated tail (even one that happens to parse as numbers) is
        // always detectable.
        if !text.ends_with('\n') {
            return Err("index parse: truncated file".to_string());
        }
        let mut lines = text.lines();
        let header = lines.next().ok_or("index parse: empty file")?;
        let format_version: u32 = num(
            header
                .strip_prefix("MISTIQUEIDX ")
                .ok_or_else(|| format!("index parse: bad header {header:?}"))?,
            "format version",
        )?;
        if format_version != INDEX_FORMAT_VERSION {
            return Err(format!(
                "index format v{format_version} (supported: v{INDEX_FORMAT_VERSION})"
            ));
        }
        let version: u64 = num(field(&mut lines, "version")?, "version")?;
        let row_block_size: usize = num(field(&mut lines, "row_block_size")?, "row_block_size")?;
        let n_rows: usize = num(field(&mut lines, "n_rows")?, "n_rows")?;
        let intermediate = field(&mut lines, "intermediate")?.to_string();
        let scheme = field(&mut lines, "scheme")?.to_string();
        let n_cols: usize = num(field(&mut lines, "columns")?, "column count")?;
        let mut columns = BTreeMap::new();
        for _ in 0..n_cols {
            let head = field(&mut lines, "col")?;
            let mut parts = head.splitn(3, ' ');
            let n_zones: usize = num(parts.next().unwrap_or(""), "zone count")?;
            let n_top: usize = num(parts.next().unwrap_or(""), "top count")?;
            let name = parts
                .next()
                .ok_or_else(|| format!("index parse: col line missing name: {head:?}"))?
                .to_string();
            let mut zones = Vec::new();
            for _ in 0..n_zones {
                let z = field(&mut lines, "z")?;
                let mut p = z.splitn(3, ' ');
                zones.push(BlockStats {
                    min_bits: num(p.next().unwrap_or(""), "zone min")?,
                    max_bits: num(p.next().unwrap_or(""), "zone max")?,
                    count: num(p.next().unwrap_or(""), "zone count")?,
                });
            }
            let mut top = Vec::new();
            for _ in 0..n_top {
                let t = field(&mut lines, "t")?;
                let mut p = t.splitn(2, ' ');
                top.push(TopEntry {
                    row: num(p.next().unwrap_or(""), "top row")?,
                    bits: num(p.next().unwrap_or(""), "top bits")?,
                });
            }
            if columns
                .insert(name.clone(), ColumnIndex { zones, top })
                .is_some()
            {
                return Err(format!("index parse: duplicate column {name:?}"));
            }
        }
        if lines.next().is_some() {
            return Err("index parse: trailing data".to_string());
        }
        Ok(IntermediateIndex {
            format_version,
            intermediate,
            scheme,
            row_block_size,
            n_rows,
            version,
            columns,
        })
    }
}

/// Per-column accumulator inside [`IndexBuilder`].
#[derive(Clone, Debug, Default)]
struct ColumnBuilder {
    zones: Vec<BlockStats>,
    top: Vec<TopEntry>,
}

/// Incremental index builder: feed each RowBlock's decoded values as it is
/// logged, then [`IndexBuilder::finish`]. Blocks may arrive in any order but
/// each must be observed exactly once.
#[derive(Clone, Debug)]
pub struct IndexBuilder {
    top_m: usize,
    row_block_size: usize,
    columns: BTreeMap<String, ColumnBuilder>,
}

impl IndexBuilder {
    /// A builder keeping `top_m` max-activation entries per column over
    /// RowBlocks of `row_block_size` rows.
    pub fn new(top_m: usize, row_block_size: usize) -> IndexBuilder {
        assert!(row_block_size > 0, "row block size must be positive");
        IndexBuilder {
            top_m,
            row_block_size,
            columns: BTreeMap::new(),
        }
    }

    /// Observe block `block` of `column`: `values` are the *decoded* values
    /// a scan would see, in row order.
    pub fn observe_block(&mut self, column: &str, block: usize, values: &[f64]) {
        let col = self.columns.entry(column.to_string()).or_default();
        if col.zones.len() <= block {
            col.zones.resize(
                block + 1,
                BlockStats {
                    min_bits: f64::INFINITY.to_bits(),
                    max_bits: f64::NEG_INFINITY.to_bits(),
                    count: 0,
                },
            );
        }
        col.zones[block] = BlockStats::from_values(values);
        let base = (block * self.row_block_size) as u64;
        col.top
            .extend(values.iter().enumerate().map(|(i, &v)| TopEntry {
                row: base + i as u64,
                bits: v.to_bits(),
            }));
        col.top.sort_by(topk_order);
        col.top.truncate(self.top_m);
    }

    /// Finalize into a persistable [`IntermediateIndex`].
    pub fn finish(
        self,
        intermediate: &str,
        scheme: &str,
        n_rows: usize,
        version: u64,
    ) -> IntermediateIndex {
        IntermediateIndex {
            format_version: INDEX_FORMAT_VERSION,
            intermediate: intermediate.to_string(),
            scheme: scheme.to_string(),
            row_block_size: self.row_block_size,
            n_rows,
            version,
            columns: self
                .columns
                .into_iter()
                .map(|(name, c)| {
                    (
                        name,
                        ColumnIndex {
                            zones: c.zones,
                            top: c.top,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Reference `topk` (the scan the core executes), for equivalence tests.
pub fn reference_topk(values: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut pairs: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(values: &[f64], block: usize, m: usize) -> IntermediateIndex {
        let mut b = IndexBuilder::new(m, block);
        for (i, chunk) in values.chunks(block).enumerate() {
            b.observe_block("c", i, chunk);
        }
        b.finish("int", "FULL", values.len(), 1)
    }

    #[test]
    fn top_list_matches_reference_order_with_ties_and_specials() {
        let vals = [
            1.0,
            f64::NAN,
            3.5,
            3.5,
            f64::INFINITY,
            -0.0,
            0.0,
            f64::NEG_INFINITY,
            3.5,
            -f64::NAN,
        ];
        let idx = build(&vals, 3, vals.len());
        for k in 0..=vals.len() {
            let served: Vec<(usize, u64)> = idx
                .topk("c", k)
                .unwrap()
                .into_iter()
                .map(|(r, v)| (r, v.to_bits()))
                .collect();
            let reference: Vec<(usize, u64)> = reference_topk(&vals, k)
                .into_iter()
                .map(|(r, v)| (r, v.to_bits()))
                .collect();
            assert_eq!(served, reference, "k={k}");
        }
        // Positive NaN sorts above +inf under descending total_cmp; the
        // negative NaN sorts last. -0.0 sorts below +0.0.
        let top = idx.topk("c", vals.len()).unwrap();
        assert!(top[0].1.is_nan());
        assert_eq!(top[1].1, f64::INFINITY);
        assert!(top[vals.len() - 1].1.is_nan());
    }

    #[test]
    fn short_list_serves_only_provable_k() {
        let vals: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let idx = build(&vals, 4, 3);
        assert_eq!(idx.topk("c", 3).unwrap(), reference_topk(&vals, 3));
        assert_eq!(idx.topk("c", 0).unwrap(), vec![]);
        assert!(idx.topk("c", 4).is_none(), "k beyond m needs a scan");
        assert!(idx.topk("missing", 1).is_none());
        // A complete list (m ≥ n) serves any k, truncating like the scan.
        let idx = build(&vals, 4, 64);
        assert_eq!(idx.topk("c", 99).unwrap(), reference_topk(&vals, 99));
    }

    #[test]
    fn zone_pruning_is_sound_and_effective() {
        let vals = [0.0, 1.0, 2.0, 10.0, 11.0, 12.0, -5.0, f64::NAN, 0.5];
        let idx = build(&vals, 3, 4);
        let (keep, total) = idx.blocks_passing_gt("c", 5.0).unwrap();
        assert_eq!(total, 3);
        assert_eq!(keep, vec![1], "only the middle block can match > 5");
        // Every matching row lives in a kept block.
        for (row, v) in vals.iter().enumerate() {
            if *v > 5.0 {
                assert!(keep.contains(&(row / 3)));
            }
        }
        // NaN threshold matches nothing; every block is skippable.
        let (keep, _) = idx.blocks_passing_gt("c", f64::NAN).unwrap();
        assert!(keep.is_empty());
        // -inf threshold keeps blocks with any non-NaN value above -inf.
        let (keep, _) = idx.blocks_passing_gt("c", f64::NEG_INFINITY).unwrap();
        assert_eq!(keep, vec![0, 1, 2]);
    }

    #[test]
    fn all_nan_block_is_always_skipped() {
        let vals = [f64::NAN, f64::NAN, 1.0, 2.0];
        let idx = build(&vals, 2, 4);
        let (keep, _) = idx.blocks_passing_gt("c", f64::NEG_INFINITY).unwrap();
        assert_eq!(keep, vec![1]);
        let z = &idx.columns["c"].zones[0];
        assert_eq!(z.min(), f64::INFINITY);
        assert_eq!(z.max(), f64::NEG_INFINITY);
        assert_eq!(z.count, 2);
    }

    #[test]
    fn round_trip_is_exact_including_nan_payloads() {
        let vals = [1.0, f64::NAN, -0.0, f64::INFINITY, -3.25];
        let idx = build(&vals, 2, 8);
        let bytes = idx.to_bytes().unwrap();
        let back = IntermediateIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back, idx);
        assert!(back.matches("FULL", 2, vals.len()));
        assert!(!back.matches("LP_QT", 2, vals.len()));
        assert!(!back.matches("FULL", 3, vals.len()));
        assert!(!back.matches("FULL", 2, vals.len() + 1));
    }

    #[test]
    fn garbage_and_version_skew_are_rejected() {
        assert!(IntermediateIndex::from_bytes(b"\xfe\xfegarbage").is_err());
        assert!(IntermediateIndex::from_bytes(b"{}").is_err());
        assert!(IntermediateIndex::from_bytes(b"").is_err());
        let mut idx = build(&[1.0], 1, 1);
        idx.format_version = INDEX_FORMAT_VERSION + 1;
        let bytes = idx.to_bytes().unwrap();
        assert!(IntermediateIndex::from_bytes(&bytes).is_err());
        // Truncation anywhere is rejected, never partially parsed.
        let good = build(&[1.0, 2.0, 3.0], 2, 2).to_bytes().unwrap();
        for cut in 1..good.len() {
            assert!(
                IntermediateIndex::from_bytes(&good[..cut]).is_err(),
                "cut={cut}"
            );
        }
        // Trailing garbage after a complete index is rejected too.
        let mut padded = good.clone();
        padded.extend_from_slice(b"z 0 0 0\n");
        assert!(IntermediateIndex::from_bytes(&padded).is_err());
    }

    #[test]
    fn out_of_order_blocks_build_the_same_index() {
        let vals: Vec<f64> = (0..20).map(|i| (i as f64 * 7.3) % 11.0).collect();
        let in_order = build(&vals, 5, 6);
        let mut b = IndexBuilder::new(6, 5);
        for i in (0..4).rev() {
            b.observe_block("c", i, &vals[i * 5..(i + 1) * 5]);
        }
        assert_eq!(b.finish("int", "FULL", vals.len(), 1), in_order);
    }
}
