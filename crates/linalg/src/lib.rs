//! Dense linear algebra substrate for MISTIQUE.
//!
//! The SVCCA diagnostic technique (Raghu et al., reproduced as Algorithm 2 of the
//! MISTIQUE paper) requires singular value decomposition and canonical correlation
//! analysis over activation matrices. The paper's Python implementation leans on
//! numpy/scipy; this crate provides the equivalent primitives from scratch:
//!
//! - [`Matrix`]: a dense, row-major, f64 matrix with the usual operations,
//! - [`svd::thin_svd`]: one-sided Jacobi SVD,
//! - [`cca::cca`]: canonical correlation analysis built on the SVD,
//! - [`pca::Pca`]: principal component analysis for projection diagnostics,
//! - [`svcca::svcca`]: the full SVCCA procedure (SVD-truncate both sides, then CCA).
//!
//! Everything is deterministic and pure — no external BLAS.

pub mod cca;
pub mod matrix;
pub mod pca;
pub mod stats;
pub mod svcca;
pub mod svd;

pub use cca::{cca, CcaResult};
pub use matrix::Matrix;
pub use pca::Pca;
pub use svcca::{svcca, SvccaResult};
pub use svd::{thin_svd, Svd};
