//! Principal component analysis, built on the thin SVD.
//!
//! Diagnostic front-ends (ActiVis-style tools) project high-dimensional
//! activations to 2-D/3-D for display; PCA is the standard projection and is
//! also the first half of SVCCA (Alg. 2's SVD truncation step).

use crate::matrix::Matrix;
use crate::svd::thin_svd;

/// A fitted PCA: principal directions and explained variance.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Column means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal directions, `p x k` (columns are components).
    pub components: Matrix,
    /// Variance explained by each component, descending.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit a `k`-component PCA on `data` (rows = observations).
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the number of columns, or `data` has no
    /// rows.
    pub fn fit(data: &Matrix, k: usize) -> Pca {
        assert!(data.rows() > 0, "PCA needs observations");
        assert!(k >= 1 && k <= data.cols(), "k must be in 1..=n_cols");
        let mean = data.col_means();
        let centered = data.center_columns();
        let svd = thin_svd(&centered);
        let n = data.rows() as f64;
        let components = svd.v.take_cols(k);
        let explained_variance = svd.s.iter().take(k).map(|s| s * s / n.max(1.0)).collect();
        Pca {
            mean,
            components,
            explained_variance,
        }
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.components.cols()
    }

    /// Fraction of total variance captured by the kept components (computed
    /// against the variance of `data`).
    pub fn explained_fraction(&self, data: &Matrix) -> f64 {
        let centered = data.center_columns();
        let n = data.rows() as f64;
        let total: f64 = centered.data().iter().map(|v| v * v).sum::<f64>() / n.max(1.0);
        if total == 0.0 {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / total
    }

    /// Project observations into component space: `(X - mean) * W`, `n x k`.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "feature count mismatch");
        let mut centered = data.clone();
        for i in 0..centered.rows() {
            for (j, m) in self.mean.iter().enumerate() {
                centered[(i, j)] -= m;
            }
        }
        centered.matmul(&self.components)
    }

    /// Map projected points back to the original space (lossy for `k < p`).
    pub fn inverse_transform(&self, projected: &Matrix) -> Matrix {
        let mut back = projected.matmul(&self.components.transpose());
        for i in 0..back.rows() {
            for (j, m) in self.mean.iter().enumerate() {
                back[(i, j)] += m;
            }
        }
        back
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize) -> Matrix {
        // Points along the direction (1, 2) plus tiny orthogonal noise.
        let mut data = Vec::with_capacity(n * 2);
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..n {
            let t = rnd() * 10.0;
            let eps = rnd() * 0.01;
            data.push(t + 2.0 * eps);
            data.push(2.0 * t - eps);
        }
        Matrix::from_vec(n, 2, data)
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let data = line_data(500);
        let pca = Pca::fit(&data, 1);
        assert!(pca.explained_fraction(&data) > 0.999);
        // Component parallel to (1, 2)/sqrt(5).
        let c = (pca.components[(0, 0)], pca.components[(1, 0)]);
        let dot = (c.0 + 2.0 * c.1).abs() / (5.0f64).sqrt();
        assert!(dot > 0.999, "component {c:?}");
    }

    #[test]
    fn transform_inverse_roundtrip_with_full_rank() {
        let data = line_data(100);
        let pca = Pca::fit(&data, 2);
        let back = pca.inverse_transform(&pca.transform(&data));
        assert!(back.max_abs_diff(&data) < 1e-9);
    }

    #[test]
    fn lossy_reconstruction_error_matches_discarded_variance() {
        let data = line_data(200);
        let pca = Pca::fit(&data, 1);
        let back = pca.inverse_transform(&pca.transform(&data));
        // Only the tiny orthogonal noise is lost.
        assert!(back.max_abs_diff(&data) < 0.05);
    }

    #[test]
    fn explained_variance_descending() {
        let data = line_data(100);
        let pca = Pca::fit(&data, 2);
        assert!(pca.explained_variance[0] >= pca.explained_variance[1]);
        assert_eq!(pca.k(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_components_panics() {
        Pca::fit(&line_data(10), 0);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn transform_wrong_width_panics() {
        let pca = Pca::fit(&line_data(10), 1);
        pca.transform(&Matrix::zeros(3, 5));
    }
}
