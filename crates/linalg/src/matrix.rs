//! Dense row-major f64 matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// Sized for the SVCCA workloads in MISTIQUE: activation matrices with a few
/// thousand rows (examples) and up to a few hundred columns (neurons).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|v| v * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (m, &v) in means.iter_mut().zip(self.row(i)) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Subtract the column mean from every entry (centering, used before CCA/SVD).
    pub fn center_columns(&self) -> Matrix {
        let means = self.col_means();
        let mut out = self.clone();
        for i in 0..self.rows {
            let row = &mut out.data[i * self.cols..(i + 1) * self.cols];
            for (v, m) in row.iter_mut().zip(&means) {
                *v -= m;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute difference between two matrices of equal shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Extract the sub-matrix consisting of columns `[0, k)`.
    pub fn take_cols(&self, k: usize) -> Matrix {
        assert!(k <= self.cols);
        let mut out = Matrix::zeros(self.rows, k);
        for i in 0..self.rows {
            out.data[i * k..(i + 1) * k].copy_from_slice(&self.row(i)[..k]);
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.5, 3.0], &[0.5, 4.0, -1.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn centering_makes_col_means_zero() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 20.0]]);
        let c = a.center_columns();
        for m in c.col_means() {
            assert!(m.abs() < 1e-12);
        }
    }

    #[test]
    fn take_cols_extracts_prefix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let p = a.take_cols(2);
        assert_eq!(p, Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, -1.0], &[2.0, 0.0]]);
        let s = &(&a + &b) - &b;
        assert!(s.max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
