//! Thin singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi SVD is simple, numerically robust, and accurate for the
//! modest matrix sizes SVCCA needs (thousands of rows, hundreds of columns).
//! It orthogonalizes the columns of `A` by repeated plane rotations; on
//! convergence the column norms are the singular values.

use crate::matrix::Matrix;

/// Result of a thin SVD: `A = U * diag(s) * V^T` with `U` being `m x r`,
/// `s` of length `r`, and `V` being `n x r` where `r = min(m, n)`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m x r`, orthonormal columns.
    pub u: Matrix,
    /// Singular values in non-increasing order.
    pub s: Vec<f64>,
    /// Right singular vectors, `n x r`, orthonormal columns.
    pub v: Matrix,
}

impl Svd {
    /// Number of singular values above `tol * s[0]`.
    pub fn numerical_rank(&self, tol: f64) -> usize {
        let cutoff = self.s.first().copied().unwrap_or(0.0) * tol;
        self.s.iter().take_while(|&&x| x > cutoff).count()
    }

    /// Smallest number of singular directions explaining `frac` of total
    /// squared singular mass. This is the truncation rule SVCCA uses
    /// ("directions explaining 99% variance", Alg. 2 line 2-3).
    pub fn rank_for_variance(&self, frac: f64) -> usize {
        let total: f64 = self.s.iter().map(|x| x * x).sum();
        if total == 0.0 {
            return 0;
        }
        let mut acc = 0.0;
        for (i, x) in self.s.iter().enumerate() {
            acc += x * x;
            if acc >= frac * total {
                return i + 1;
            }
        }
        self.s.len()
    }

    /// Reconstruct `U * diag(s) * V^T`.
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for (j, &sv) in self.s.iter().enumerate() {
                us[(i, j)] *= sv;
            }
        }
        us.matmul(&self.v.transpose())
    }
}

/// Compute the thin SVD of `a` using one-sided Jacobi rotations.
///
/// For matrices with more columns than rows, the decomposition is computed on
/// the transpose and swapped back, keeping the working matrix tall.
pub fn thin_svd(a: &Matrix) -> Svd {
    if a.cols() > a.rows() {
        let t = thin_svd(&a.transpose());
        return Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        };
    }
    one_sided_jacobi(a)
}

fn one_sided_jacobi(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    // Work on columns: u starts as a copy of A, v accumulates rotations.
    let mut u = a.clone();
    let mut v = Matrix::identity(n);

    let eps = 1e-12;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the column pair (p, q).
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                let denom = (app * aqq).sqrt();
                if denom > 0.0 {
                    off = off.max(apq.abs() / denom);
                }
                if apq.abs() <= eps * denom {
                    continue;
                }
                // Jacobi rotation that zeroes the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < eps {
            break;
        }
    }

    // Column norms are singular values; normalize U's columns.
    let mut sv: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = (0..m).map(|i| u[(i, j)] * u[(i, j)]).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    sv.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s = Vec::with_capacity(n);
    for (dst, &(norm, src)) in sv.iter().enumerate() {
        s.push(norm);
        if norm > 0.0 {
            for i in 0..m {
                u_sorted[(i, dst)] = u[(i, src)] / norm;
            }
        }
        for i in 0..n {
            v_sorted[(i, dst)] = v[(i, src)];
        }
    }
    Svd {
        u: u_sorted,
        s,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        let svd = thin_svd(&a);
        assert_close(svd.s[0], 3.0, 1e-10);
        assert_close(svd.s[1], 2.0, 1e-10);
    }

    #[test]
    fn svd_reconstructs_input() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0],
            &[7.0, 8.0, 10.0],
            &[0.5, -1.0, 2.0],
        ]);
        let svd = thin_svd(&a);
        let r = svd.reconstruct();
        assert!(r.max_abs_diff(&a) < 1e-8, "diff {}", r.max_abs_diff(&a));
    }

    #[test]
    fn svd_wide_matrix_reconstructs() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0, -1.0], &[3.0, 1.0, 0.0, 0.5]]);
        let svd = thin_svd(&a);
        assert_eq!(svd.u.rows(), 2);
        assert_eq!(svd.v.rows(), 4);
        let r = svd.reconstruct();
        assert!(r.max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn u_columns_orthonormal() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0], &[0.0, 1.0], &[4.0, -2.0]]);
        let svd = thin_svd(&a);
        let gram = svd.u.transpose().matmul(&svd.u);
        assert!(gram.max_abs_diff(&Matrix::identity(2)) < 1e-8);
    }

    #[test]
    fn singular_values_sorted_nonincreasing() {
        let a = Matrix::from_rows(&[
            &[0.1, 5.0, 0.2],
            &[0.3, -4.0, 0.1],
            &[9.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
        ]);
        let svd = thin_svd(&a);
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rank_detection_on_rank_deficient_matrix() {
        // Third column = first + second: rank 2.
        let a = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1.0, 1.0, 2.0],
            &[2.0, 0.0, 2.0],
        ]);
        let svd = thin_svd(&a);
        assert_eq!(svd.numerical_rank(1e-9), 2);
    }

    #[test]
    fn variance_rank_rule() {
        let svd = Svd {
            u: Matrix::identity(3),
            s: vec![10.0, 1.0, 0.1],
            v: Matrix::identity(3),
        };
        // 10^2 = 100 out of 101.01 total => first direction alone explains ~99%.
        assert_eq!(svd.rank_for_variance(0.98), 1);
        assert_eq!(svd.rank_for_variance(0.999), 2);
        assert_eq!(svd.rank_for_variance(1.0), 3);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = thin_svd(&a);
        assert!(svd.s.iter().all(|&x| x == 0.0));
        assert_eq!(svd.rank_for_variance(0.99), 0);
    }
}
