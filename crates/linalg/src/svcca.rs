//! SVCCA: Singular Vector Canonical Correlation Analysis (Alg. 2 of the
//! MISTIQUE paper, after Raghu et al. 2017).
//!
//! Procedure: SVD-truncate both activation matrices to the directions
//! explaining a variance fraction (0.99 in the paper), then run CCA between
//! the projected representations and report the canonical correlations.

use crate::cca::cca;
use crate::matrix::Matrix;
use crate::svd::thin_svd;

/// Result of an SVCCA comparison between two activation matrices.
#[derive(Clone, Debug)]
pub struct SvccaResult {
    /// Canonical correlations between the SVD-truncated representations.
    pub correlations: Vec<f64>,
    /// Directions kept for the first input.
    pub rank_a: usize,
    /// Directions kept for the second input.
    pub rank_b: usize,
}

impl SvccaResult {
    /// Mean canonical correlation — the similarity score reported in the paper.
    pub fn mean_correlation(&self) -> f64 {
        if self.correlations.is_empty() {
            return 0.0;
        }
        self.correlations.iter().sum::<f64>() / self.correlations.len() as f64
    }
}

/// Run SVCCA between activations `a` (n x p) and `b` (n x q), keeping SVD
/// directions that explain `variance_frac` of the variance (paper: 0.99).
///
/// # Panics
/// Panics if the row counts differ or `variance_frac` is outside `(0, 1]`.
pub fn svcca(a: &Matrix, b: &Matrix, variance_frac: f64) -> SvccaResult {
    assert_eq!(a.rows(), b.rows(), "SVCCA requires matched examples");
    assert!(
        variance_frac > 0.0 && variance_frac <= 1.0,
        "variance fraction must be in (0, 1]"
    );

    let proj_a = svd_project(a, variance_frac);
    let proj_b = svd_project(b, variance_frac);
    let (pa, ra) = proj_a;
    let (pb, rb) = proj_b;
    if ra == 0 || rb == 0 {
        return SvccaResult {
            correlations: vec![],
            rank_a: ra,
            rank_b: rb,
        };
    }
    let r = cca(&pa, &pb);
    SvccaResult {
        correlations: r.correlations,
        rank_a: ra,
        rank_b: rb,
    }
}

/// Center, SVD, and project onto the top directions explaining `frac` variance.
/// Returns the projected data (n x r) and the rank r kept.
fn svd_project(m: &Matrix, frac: f64) -> (Matrix, usize) {
    let centered = m.center_columns();
    let svd = thin_svd(&centered);
    let r = svd.rank_for_variance(frac).min(svd.numerical_rank(1e-10));
    if r == 0 {
        return (Matrix::zeros(m.rows(), 0), 0);
    }
    // Project: X * V_r gives the data expressed in the top singular directions.
    let vr = svd.v.take_cols(r);
    (centered.matmul(&vr), r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_matrix(n: usize, c: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let data = (0..n * c).map(|_| next()).collect();
        Matrix::from_vec(n, c, data)
    }

    #[test]
    fn same_representation_scores_one() {
        let a = noise_matrix(100, 8, 7);
        let r = svcca(&a, &a, 0.99);
        assert!(r.mean_correlation() > 0.999, "got {}", r.mean_correlation());
    }

    #[test]
    fn rotated_representation_scores_one() {
        let a = noise_matrix(120, 4, 11);
        // Orthogonal-ish transform (invertible): same subspace, same SVCCA.
        let t = Matrix::from_rows(&[
            &[0.5, 1.0, 0.0, 0.0],
            &[-1.0, 0.5, 0.0, 0.0],
            &[0.0, 0.0, 2.0, 1.0],
            &[0.0, 0.0, -0.5, 1.0],
        ]);
        let b = a.matmul(&t);
        let r = svcca(&a, &b, 0.999);
        assert!(r.mean_correlation() > 0.99, "got {}", r.mean_correlation());
    }

    #[test]
    fn unrelated_representations_score_low() {
        let a = noise_matrix(300, 5, 1);
        let b = noise_matrix(300, 5, 2);
        let r = svcca(&a, &b, 0.99);
        assert!(r.mean_correlation() < 0.4, "got {}", r.mean_correlation());
    }

    #[test]
    fn truncation_reduces_rank_for_low_rank_signal() {
        // One dominant direction plus tiny noise: 0.99 variance keeps ~1 direction.
        let n = 200;
        let mut data = Vec::with_capacity(n * 6);
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..n {
            let t = next() * 10.0;
            for j in 0..6 {
                data.push(t * (j as f64 + 1.0) + next() * 0.01);
            }
        }
        let a = Matrix::from_vec(n, 6, data);
        let r = svcca(&a, &a, 0.99);
        assert!(r.rank_a <= 2, "rank {}", r.rank_a);
    }

    #[test]
    #[should_panic(expected = "matched examples")]
    fn mismatched_rows_panic() {
        let a = Matrix::zeros(10, 2);
        let b = Matrix::zeros(12, 2);
        let _ = svcca(&a, &b, 0.99);
    }

    #[test]
    fn degenerate_constant_input() {
        let a = Matrix::from_vec(50, 3, vec![1.0; 150]);
        let b = noise_matrix(50, 3, 5);
        let r = svcca(&a, &b, 0.99);
        assert_eq!(r.rank_a, 0);
        assert_eq!(r.mean_correlation(), 0.0);
    }
}
