//! Small statistical helpers shared by diagnostics and quantization:
//! percentiles, Pearson correlation, and summary statistics.

/// Summary statistics of a slice of f64 values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub count: usize,
    /// Minimum value (0 for empty input).
    pub min: f64,
    /// Maximum value (0 for empty input).
    pub max: f64,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Population standard deviation (0 for empty input).
    pub std: f64,
}

/// Compute summary statistics over `values` in a single pass.
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            std: 0.0,
        };
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut sumsq = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
        sumsq += v * v;
    }
    let n = values.len() as f64;
    let mean = sum / n;
    let var = (sumsq / n - mean * mean).max(0.0);
    Summary {
        count: values.len(),
        min,
        max,
        mean,
        std: var.sqrt(),
    }
}

/// Percentile of `values` with linear interpolation, `p` in `[0, 1]`.
///
/// Sorts a copy; callers on hot paths should pre-sort and use
/// [`percentile_sorted`].
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    percentile_sorted(&sorted, p)
}

/// Percentile over already-sorted data with linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Equi-depth quantile boundaries: `k` boundaries splitting the data into
/// `k + 1` buckets. Used by KBIT_QT to build the bin edges.
pub fn quantile_boundaries(values: &[f64], k: usize) -> Vec<f64> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (1..=k)
        .map(|i| percentile_sorted(&sorted, i as f64 / (k + 1) as f64))
        .collect()
}

/// Pearson correlation coefficient between two equal-length slices.
/// Returns 0 when either side has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile(&v, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_boundaries_split_uniform_data() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b = quantile_boundaries(&v, 3);
        assert_eq!(b.len(), 3);
        assert!((b[0] - 24.75).abs() < 1.0);
        assert!((b[1] - 49.5).abs() < 1.0);
        assert!((b[2] - 74.25).abs() < 1.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }
}
