//! Canonical correlation analysis built on the SVD.
//!
//! Given centered data matrices `X (n x p)` and `Y (n x q)`, CCA finds
//! directions maximizing correlation between projections. We use the standard
//! SVD-based formulation: with thin SVDs `X = Ux Sx Vx^T`, `Y = Uy Sy Vy^T`,
//! the canonical correlations are the singular values of `Ux^T Uy`.

use crate::matrix::Matrix;
use crate::svd::thin_svd;

/// Result of a canonical correlation analysis.
#[derive(Clone, Debug)]
pub struct CcaResult {
    /// Canonical correlation coefficients in `[0, 1]`, non-increasing.
    pub correlations: Vec<f64>,
}

impl CcaResult {
    /// Mean canonical correlation — the "average cca coefficient" that the
    /// MISTIQUE paper reports in Table 2.
    pub fn mean_correlation(&self) -> f64 {
        if self.correlations.is_empty() {
            return 0.0;
        }
        self.correlations.iter().sum::<f64>() / self.correlations.len() as f64
    }
}

/// Compute CCA between `x` and `y` (same number of rows = observations).
///
/// Inputs are centered internally. Rank-deficient inputs are handled by
/// truncating to the numerical rank before correlating, which keeps the
/// correlations within `[0, 1]`.
///
/// # Panics
/// Panics if the row counts differ.
pub fn cca(x: &Matrix, y: &Matrix) -> CcaResult {
    assert_eq!(x.rows(), y.rows(), "CCA requires matched observations");
    let xc = x.center_columns();
    let yc = y.center_columns();

    let sx = thin_svd(&xc);
    let sy = thin_svd(&yc);
    let rx = sx.numerical_rank(1e-10);
    let ry = sy.numerical_rank(1e-10);
    if rx == 0 || ry == 0 {
        return CcaResult {
            correlations: vec![],
        };
    }
    let ux = sx.u.take_cols(rx);
    let uy = sy.u.take_cols(ry);

    let cross = ux.transpose().matmul(&uy);
    let sc = thin_svd(&cross);
    let k = rx.min(ry);
    let correlations = sc.s.iter().take(k).map(|&v| v.clamp(0.0, 1.0)).collect();
    CcaResult { correlations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_data_has_perfect_correlation() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[2.0, 1.0],
            &[3.0, 5.0],
            &[4.0, 3.0],
            &[0.0, 1.0],
        ]);
        let r = cca(&x, &x);
        assert!(!r.correlations.is_empty());
        for &c in &r.correlations {
            assert!(c > 1.0 - 1e-8, "correlation {c}");
        }
        assert!(r.mean_correlation() > 0.999);
    }

    #[test]
    fn linear_transform_preserves_correlation() {
        let x = Matrix::from_rows(&[
            &[1.0, 0.5],
            &[2.0, -1.0],
            &[3.0, 2.0],
            &[-1.0, 0.0],
            &[0.5, 1.5],
        ]);
        // y = x * A for invertible A: canonical correlations all 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, -1.0]]);
        let y = x.matmul(&a);
        let r = cca(&x, &y);
        for &c in &r.correlations {
            assert!(c > 1.0 - 1e-6, "correlation {c}");
        }
    }

    #[test]
    fn independent_noise_has_low_correlation() {
        // Deterministic pseudo-noise via LCG so the test is reproducible.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 200;
        let mut xd = Vec::with_capacity(n * 2);
        let mut yd = Vec::with_capacity(n * 2);
        for _ in 0..n {
            xd.push(next());
            xd.push(next());
            yd.push(next());
            yd.push(next());
        }
        let x = Matrix::from_vec(n, 2, xd);
        let y = Matrix::from_vec(n, 2, yd);
        let r = cca(&x, &y);
        // With 200 independent samples, canonical correlations stay small.
        assert!(r.mean_correlation() < 0.35, "mean {}", r.mean_correlation());
    }

    #[test]
    fn constant_columns_yield_empty_result() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let y = Matrix::from_rows(&[&[2.0], &[3.0], &[4.0]]);
        let r = cca(&x, &y);
        assert!(r.correlations.is_empty());
        assert_eq!(r.mean_correlation(), 0.0);
    }

    #[test]
    fn correlations_bounded_and_sorted() {
        let x = Matrix::from_rows(&[
            &[1.0, 2.0, 0.0],
            &[0.0, 1.0, 1.0],
            &[2.0, 0.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[3.0, -1.0, 0.5],
            &[0.5, 0.5, 2.0],
        ]);
        let y = Matrix::from_rows(&[
            &[1.1, 1.9],
            &[0.2, 1.2],
            &[2.1, -0.1],
            &[0.9, 1.0],
            &[2.9, -1.2],
            &[0.4, 0.7],
        ]);
        let r = cca(&x, &y);
        for &c in &r.correlations {
            assert!((0.0..=1.0).contains(&c));
        }
        for w in r.correlations.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }
}
