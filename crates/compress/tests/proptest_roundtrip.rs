//! Property tests: every codec must be lossless on arbitrary byte strings.

use mistique_compress::{compress, compress_auto, decompress, Scheme};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lzss_roundtrip(input in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let frame = compress(&input, Scheme::Lzss);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn rle_roundtrip(input in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let frame = compress(&input, Scheme::Rle);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn auto_roundtrip(input in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let frame = compress_auto(&input);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn delta_roundtrip(words in proptest::collection::vec(any::<u32>(), 0..2048)) {
        let input: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let frame = compress(&input, Scheme::Delta4);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    // Runs of repeated blocks stress the overlapping-match path in LZSS.
    #[test]
    fn lzss_repeated_blocks(block in proptest::collection::vec(any::<u8>(), 1..256),
                            reps in 1usize..64) {
        let input: Vec<u8> = block.iter().cycle().take(block.len() * reps).copied().collect();
        let frame = compress(&input, Scheme::Lzss);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn xorf_roundtrip(words in proptest::collection::vec(any::<u32>(), 0..2048)) {
        let input: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let frame = compress(&input, Scheme::XorF32);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn auto_extended_roundtrip(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let frame = mistique_compress::compress_auto_extended(&input);
        prop_assert_eq!(decompress(&frame).unwrap(), input);
    }

    // Decoding must never panic on garbage, only return an error.
    #[test]
    fn decompress_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress(&garbage);
    }
}
