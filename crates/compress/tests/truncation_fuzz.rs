//! Truncation fuzzing: decoding any strict prefix of a valid codec output
//! must fail cleanly or produce a strictly shorter result — never panic,
//! hang, or over-allocate. A torn write is exactly a strict prefix of a
//! valid payload, so these invariants are what the crash-safety recovery
//! path leans on.
//!
//! Deterministic by construction (fixed corpus + LCG), no proptest needed.

use mistique_compress::{
    basedelta, compress, compress_auto, compress_auto_extended, decompress, delta, lzss, rle,
    varint, xorf, CodecError, Scheme,
};

/// Simple LCG so the corpus is identical on every run.
fn lcg_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 56) as u8
        })
        .collect()
}

/// Corpus of byte streams covering the shapes each codec cares about. All
/// lengths are multiples of 8 so the width-sensitive codecs (delta4/8,
/// xorf) accept them too.
fn corpus() -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8; 8],
        vec![0xff; 256],                           // one long run
        (0..=255u8).collect(),                     // ascending bytes
        (0..256).map(|i| (i % 2) as u8).collect(), // alternating
        (0..240).map(|i| (i % 3) as u8).collect(), // short runs
        b"abcabcabcabcabcabcabcabc".to_vec(),      // lzss matches
    ];
    // Sorted u32 ids (delta-friendly).
    let mut ids = Vec::new();
    for i in 0u32..128 {
        ids.extend_from_slice(&(i * 3).to_le_bytes());
    }
    out.push(ids);
    // Smooth f32 stream (xorf-friendly).
    let mut floats = Vec::new();
    for i in 0..128 {
        floats.extend_from_slice(&(1.0f32 + i as f32 * 1e-5).to_le_bytes());
    }
    out.push(floats);
    // Random bytes.
    out.push(lcg_bytes(7, 512));
    out.push(lcg_bytes(99, 64));
    out
}

/// Every strict prefix of `encoded`, including the empty one.
fn strict_prefixes(encoded: &[u8]) -> impl Iterator<Item = &[u8]> {
    (0..encoded.len()).map(move |cut| &encoded[..cut])
}

#[test]
fn rle_prefixes_never_yield_longer_or_torn_output() {
    for input in corpus() {
        let encoded = rle::compress(&input);
        let full = rle::decompress(&encoded).expect("valid stream decodes");
        assert_eq!(full, input);
        for prefix in strict_prefixes(&encoded) {
            // A cut at a (run, byte) pair boundary legally decodes to a
            // strict prefix of the original — but never to all of it.
            if let Some(partial) = rle::decompress(prefix) {
                assert!(partial.len() < input.len());
                assert_eq!(partial[..], input[..partial.len()]);
            }
        }
    }
}

#[test]
fn lzss_prefixes_never_yield_longer_or_torn_output() {
    for input in corpus() {
        let encoded = lzss::compress(&input);
        assert_eq!(lzss::decompress(&encoded), Some(input.clone()));
        for prefix in strict_prefixes(&encoded) {
            if let Some(partial) = lzss::decompress(prefix) {
                // Token groups decode front-to-back, so any successful
                // partial decode is a strict prefix of the original.
                assert!(partial.len() < input.len());
                assert_eq!(partial[..], input[..partial.len()]);
            }
        }
    }
}

#[test]
fn delta_prefixes_always_rejected() {
    for input in corpus() {
        for w in [1usize, 4, 8] {
            let encoded = delta::compress(&input, w).expect("aligned corpus");
            assert_eq!(delta::decompress(&encoded, w), Some(input.clone()));
            // The value-count header makes every truncation detectable.
            for prefix in strict_prefixes(&encoded) {
                assert_eq!(
                    delta::decompress(prefix, w),
                    None,
                    "delta{w} accepted a {}-of-{} byte prefix",
                    prefix.len(),
                    encoded.len()
                );
            }
        }
    }
}

#[test]
fn xorf_prefixes_always_rejected() {
    for input in corpus() {
        let encoded = xorf::compress(&input).expect("4-aligned corpus");
        assert_eq!(xorf::decompress(&encoded), Some(input.clone()));
        // The bitstream carries no padding to hide in: dropping any byte
        // starves the reader of bits for the declared value count.
        for prefix in strict_prefixes(&encoded) {
            if input.is_empty() && !prefix.is_empty() {
                continue; // n = 0 streams have no strict non-empty prefix
            }
            assert_eq!(
                xorf::decompress(prefix),
                None,
                "xorf accepted a {}-of-{} byte prefix",
                prefix.len(),
                encoded.len()
            );
        }
    }
}

#[test]
fn varint_prefixes_always_rejected() {
    for value in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX / 3, u64::MAX] {
        let mut encoded = Vec::new();
        varint::write_u64(&mut encoded, value);
        let mut pos = 0;
        assert_eq!(varint::read_u64(&encoded, &mut pos), Some(value));
        assert_eq!(pos, encoded.len());
        for prefix in strict_prefixes(&encoded) {
            let mut pos = 0;
            assert_eq!(varint::read_u64(prefix, &mut pos), None);
        }
    }
}

#[test]
fn frame_prefixes_always_error() {
    let schemes = [
        Scheme::Raw,
        Scheme::Rle,
        Scheme::Lzss,
        Scheme::Delta4,
        Scheme::Delta1,
        Scheme::Delta8,
        Scheme::XorF32,
    ];
    for input in corpus() {
        let mut frames: Vec<Vec<u8>> = schemes.iter().map(|&s| compress(&input, s)).collect();
        frames.push(compress_auto(&input));
        frames.push(compress_auto_extended(&input));
        for frame in frames {
            assert_eq!(decompress(&frame).unwrap(), input);
            // The raw-length header turns every partial payload into a
            // LengthMismatch and every broken header into BadHeader/Corrupt
            // — a torn frame can never decode to plausible-but-wrong bytes.
            for prefix in strict_prefixes(&frame) {
                assert!(
                    decompress(prefix).is_err(),
                    "frame prefix {}-of-{} decoded",
                    prefix.len(),
                    frame.len()
                );
            }
        }
    }
}

#[test]
fn basedelta_prefixes_always_rejected() {
    // Each corpus entry doubles as its own perturbed twin: flip a few bytes
    // so the XOR residual is sparse but non-trivial.
    for input in corpus() {
        let mut target = input.clone();
        for (i, b) in target.iter_mut().enumerate() {
            if i % 37 == 0 {
                *b ^= 0x55;
            }
        }
        let digest = (0x1234_5678_9abc_def0u64, 0x0fed_cba9_8765_4321u64);
        let frame = basedelta::encode(&target, &input, digest);
        assert!(basedelta::is_delta_frame(&frame));
        assert_eq!(basedelta::decode(&frame, &input, digest).unwrap(), target);
        // The header's triple length record (base/raw/inner) makes every
        // strict prefix detectable — a torn delta frame can never decode.
        for prefix in strict_prefixes(&frame) {
            assert!(
                basedelta::decode(prefix, &input, digest).is_err(),
                "basedelta prefix {}-of-{} decoded",
                prefix.len(),
                frame.len()
            );
        }
    }
}

#[test]
fn basedelta_wrong_base_always_rejected() {
    let base = lcg_bytes(11, 256);
    let mut target = base.clone();
    target[13] ^= 0xff;
    let digest = (42u64, 43u64);
    let frame = basedelta::encode(&target, &base, digest);

    // Wrong digest — a stale or remapped base — must be refused outright.
    assert!(basedelta::decode(&frame, &base, (42, 44)).is_err());
    // Right digest but different base bytes: the base-length check catches a
    // length change; same-length corruption is the digest's job upstream.
    let short_base = &base[..128];
    assert!(basedelta::decode(&frame, short_base, digest).is_err());
    // Untouched frame with the true base still round-trips.
    assert_eq!(basedelta::decode(&frame, &base, digest).unwrap(), target);
}

#[test]
fn absurd_length_headers_fail_without_allocating() {
    // Corrupt headers declaring astronomically large outputs must return an
    // error, not reserve memory first. If any of these tried to allocate,
    // the test process would abort rather than fail.
    let mut huge = Vec::new();
    varint::write_u64(&mut huge, u64::MAX);

    // rle: one run of u64::MAX bytes.
    let mut rle_bomb = huge.clone();
    rle_bomb.push(0x41);
    assert_eq!(rle::decompress(&rle_bomb), None);

    // delta: u64::MAX values declared, one byte of payload.
    let mut delta_bomb = huge.clone();
    delta_bomb.push(0);
    for w in [1usize, 4, 8] {
        assert_eq!(delta::decompress(&delta_bomb, w), None);
    }

    // xorf: u64::MAX floats declared, four bytes of payload.
    let mut xorf_bomb = huge.clone();
    xorf_bomb.extend_from_slice(&[0; 4]);
    assert_eq!(xorf::decompress(&xorf_bomb), None);

    // frame: valid scheme byte, absurd raw length, no payload.
    let mut frame_bomb = vec![Scheme::Raw as u8];
    varint::write_u64(&mut frame_bomb, u64::MAX);
    assert!(decompress(&frame_bomb).is_err());
}

#[test]
fn random_garbage_decodes_are_total() {
    // Feeding arbitrary bytes to every decoder terminates with a clean
    // verdict (Some/None/Err) — no panic, no hang.
    for seed in 0..200u64 {
        let garbage = lcg_bytes(seed, (seed as usize % 96) + 1);
        // RLE expansion is bounded only by the caller's cap (the format has
        // no total-length header) — use the limit API as real callers do.
        let _ = rle::decompress_with_limit(&garbage, 1 << 20);
        let _ = lzss::decompress(&garbage);
        for w in [1usize, 4, 8] {
            let _ = delta::decompress(&garbage, w);
        }
        let _ = xorf::decompress(&garbage);
        let _ = decompress(&garbage);
        let _ = basedelta::decode(&garbage, &garbage, (0, 0));
        let mut pos = 0;
        let _ = varint::read_u64(&garbage, &mut pos);
    }
}

#[test]
fn error_variants_are_reported_not_panicked() {
    // A minimal check that the distinct failure modes surface as the right
    // CodecError variants (the store maps these into StoreError::Codec).
    assert_eq!(decompress(&[]), Err(CodecError::BadHeader));
    assert_eq!(decompress(&[200]), Err(CodecError::BadHeader)); // unknown scheme
    let frame = compress(b"hello world hello world", Scheme::Lzss);
    match decompress(&frame[..frame.len() - 1]) {
        Err(CodecError::Corrupt) | Err(CodecError::LengthMismatch { .. }) => {}
        other => panic!("torn frame gave {other:?}"),
    }
}
