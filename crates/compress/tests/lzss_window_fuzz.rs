//! Multi-window LZSS fuzz: the match-finder's `prev[pos % WINDOW]` ring
//! aliases positions once the input outgrows the 64 KiB window, so these
//! inputs are specifically sized to wrap it several times. Identity must hold
//! on every seed, and (in debug builds) the in-crate `debug_assert` verifies
//! every followed chain link points strictly backwards — a stale alias that
//! slipped past the guard would trip it.

use mistique_compress::lzss::{compress, decompress, decompress_with_hint, WINDOW};

/// Deterministic xorshift-style byte stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn byte(&mut self) -> u8 {
        (self.next() >> 56) as u8
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() >> 33) as usize % (hi - lo)
    }
}

/// Build an input several windows long out of segments chosen to stress the
/// hash chains: literal noise, long runs, and copies of earlier regions at
/// distances both inside and beyond the window.
fn multi_window_input(seed: u64, target_len: usize) -> Vec<u8> {
    let mut rng = Rng(seed);
    let mut out: Vec<u8> = Vec::with_capacity(target_len + 4096);
    while out.len() < target_len {
        match rng.range(0, 4) {
            // Random literals: populate fresh hash chains.
            0 => {
                let n = rng.range(64, 2048);
                out.extend((0..n).map(|_| rng.byte()));
            }
            // Constant run: maximally overlapping self-matches.
            1 => {
                let n = rng.range(64, 4096);
                let b = rng.byte();
                out.resize(out.len() + n, b);
            }
            // Short-period cycle: dense chains on a handful of hashes.
            2 => {
                let period = rng.range(3, 24);
                let n = rng.range(256, 4096);
                let phase = rng.range(0, 251);
                out.extend((0..n).map(|i| ((i % period) + phase) as u8));
            }
            // Replay an earlier region — possibly from a previous window, so
            // the finder walks chains whose heads have lapped the ring.
            _ => {
                if out.is_empty() {
                    out.push(rng.byte());
                    continue;
                }
                let n = rng.range(64, 4096).min(out.len());
                let start = rng.range(0, out.len() - n + 1);
                let copy: Vec<u8> = out[start..start + n].to_vec();
                out.extend_from_slice(&copy);
            }
        }
    }
    out.truncate(target_len);
    out
}

#[test]
fn multi_window_inputs_roundtrip_identically() {
    for seed in 0..12u64 {
        // 2.5 to 4 windows: every position's ring slot is overwritten at
        // least once, so stale aliases are reachable if unguarded.
        let len = WINDOW * 5 / 2 + (seed as usize * 9973) % WINDOW;
        let input = multi_window_input(seed + 1, len);
        let c = compress(&input);
        assert_eq!(
            decompress(&c).as_deref(),
            Some(input.as_slice()),
            "seed {seed} len {len}"
        );
    }
}

#[test]
fn hint_value_never_affects_decoded_bytes() {
    let input = multi_window_input(99, WINDOW * 3);
    let c = compress(&input);
    for hint in [0, 1, input.len(), input.len() * 4] {
        assert_eq!(
            decompress_with_hint(&c, hint).as_deref(),
            Some(input.as_slice()),
            "hint {hint}"
        );
    }
}

#[test]
fn window_boundary_distances_roundtrip() {
    // A block repeated at exactly the window size: matches sit at the
    // maximum representable distance.
    let mut rng = Rng(7);
    let block: Vec<u8> = (0..WINDOW).map(|_| rng.byte()).collect();
    let mut input = block.clone();
    input.extend_from_slice(&block);
    input.extend_from_slice(&block[..WINDOW / 2]);
    let c = compress(&input);
    assert_eq!(decompress(&c), Some(input));
}
