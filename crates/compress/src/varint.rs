//! LEB128 variable-length integer encoding, shared by the other codecs.

/// Append `value` to `out` as an unsigned LEB128 varint.
#[inline]
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint from `input` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncated or oversized input.
#[inline]
pub fn read_u64(input: &[u8], pos: &mut usize) -> Option<u64> {
    // One-byte fast path: values < 128 dominate delta/RLE streams.
    if let Some(&b) = input.get(*pos) {
        if b < 0x80 {
            *pos += 1;
            return Some(b as u64);
        }
    }
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Zig-zag encode a signed value so small magnitudes become small varints.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_encode_in_one_byte() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 42);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn truncated_input_returns_none() {
        let buf = vec![0x80, 0x80]; // continuation bits with no terminator
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn overlong_encoding_rejected() {
        // 11 bytes of continuation would exceed 64 bits.
        let buf = vec![0xff; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&buf, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123456789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }
}
