//! Self-describing compression frames.
//!
//! A frame is `[scheme: u8][varint raw_len][payload]`, so a Partition on disk
//! can always be decoded without external metadata, and `Auto` may pick a
//! different scheme per Partition depending on its content.

use crate::{delta, lzss, rle, varint, xorf};

/// A compression scheme identifier stored in the frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Scheme {
    /// No compression; payload is the raw bytes.
    Raw = 0,
    /// Run-length encoding ([`crate::rle`]).
    Rle = 1,
    /// LZSS sliding-window compression ([`crate::lzss`]).
    Lzss = 2,
    /// Delta varint over 4-byte LE integers ([`crate::delta`]).
    Delta4 = 3,
    /// Delta varint over 1-byte integers.
    Delta1 = 4,
    /// Delta varint over 8-byte LE integers.
    Delta8 = 5,
    /// Gorilla-style XOR compression over 4-byte LE floats ([`crate::xorf`]).
    XorF32 = 6,
}

impl Scheme {
    /// Short lowercase name for reporting (metric labels, stats output).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Raw => "raw",
            Scheme::Rle => "rle",
            Scheme::Lzss => "lzss",
            Scheme::Delta4 => "delta4",
            Scheme::Delta1 => "delta1",
            Scheme::Delta8 => "delta8",
            Scheme::XorF32 => "xorf32",
        }
    }

    fn from_u8(v: u8) -> Option<Scheme> {
        Some(match v {
            0 => Scheme::Raw,
            1 => Scheme::Rle,
            2 => Scheme::Lzss,
            3 => Scheme::Delta4,
            4 => Scheme::Delta1,
            5 => Scheme::Delta8,
            6 => Scheme::XorF32,
            _ => return None,
        })
    }
}

/// Errors produced while decoding a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The frame header is missing or references an unknown scheme.
    BadHeader,
    /// The payload failed to decode.
    Corrupt,
    /// The decoded length does not match the header's raw length.
    LengthMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad or missing frame header"),
            CodecError::Corrupt => write!(f, "corrupt compressed payload"),
            CodecError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, header said {expected}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Compress `input` with a specific scheme into a self-describing frame.
///
/// If the scheme cannot encode the input (e.g. `Delta4` on a misaligned
/// buffer), the frame silently falls back to `Raw` — decoding is always
/// possible via the header.
pub fn compress(input: &[u8], scheme: Scheme) -> Vec<u8> {
    let payload: Option<Vec<u8>> = match scheme {
        Scheme::Raw => None,
        Scheme::Rle => Some(rle::compress(input)),
        Scheme::Lzss => Some(lzss::compress(input)),
        Scheme::Delta4 => delta::compress(input, 4),
        Scheme::Delta1 => delta::compress(input, 1),
        Scheme::Delta8 => delta::compress(input, 8),
        Scheme::XorF32 => xorf::compress(input),
    };
    let (scheme, payload) = match payload {
        Some(p) => (scheme, p),
        None => (Scheme::Raw, input.to_vec()),
    };
    let mut out = Vec::with_capacity(payload.len() + 10);
    out.push(scheme as u8);
    varint::write_u64(&mut out, input.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Compress with the scheme that gives the smallest frame out of
/// `Raw`, `Rle`, and `Lzss` (plus `Delta4` when the input is 4-aligned).
///
/// This models the paper's "variety of off-the-shelf compression schemes":
/// the store does not care which codec wins as long as the frame records it.
pub fn compress_auto(input: &[u8]) -> Vec<u8> {
    compress_auto_from(input, &[Scheme::Rle, Scheme::Lzss, Scheme::Delta4])
}

/// Like [`compress_auto`] but also considers the float-specialized
/// [`Scheme::XorF32`] codec — worthwhile when the payload is known to be a
/// stream of f32 activations.
pub fn compress_auto_extended(input: &[u8]) -> Vec<u8> {
    compress_auto_from(
        input,
        &[Scheme::Rle, Scheme::Lzss, Scheme::Delta4, Scheme::XorF32],
    )
}

fn compress_auto_from(input: &[u8], candidates: &[Scheme]) -> Vec<u8> {
    let mut best = compress(input, Scheme::Raw);
    for &scheme in candidates {
        if matches!(scheme, Scheme::Delta4 | Scheme::XorF32) && !input.len().is_multiple_of(4) {
            continue;
        }
        let candidate = compress(input, scheme);
        if candidate.len() < best.len() {
            best = candidate;
        }
    }
    best
}

/// The scheme recorded in a frame header, without decoding the payload.
/// `None` when the buffer is empty or the scheme byte is unknown.
pub fn scheme_of(frame: &[u8]) -> Option<Scheme> {
    frame.first().and_then(|&b| Scheme::from_u8(b))
}

/// Decode a frame produced by [`compress`] or [`compress_auto`].
pub fn decompress(frame: &[u8]) -> Result<Vec<u8>, CodecError> {
    let scheme = Scheme::from_u8(*frame.first().ok_or(CodecError::BadHeader)?)
        .ok_or(CodecError::BadHeader)?;
    let mut pos = 1;
    let raw_len = varint::read_u64(frame, &mut pos).ok_or(CodecError::BadHeader)? as usize;
    let payload = &frame[pos..];
    let out = match scheme {
        Scheme::Raw => payload.to_vec(),
        // The header's raw length caps RLE expansion: a torn or corrupt
        // stream is rejected before it can zero-fill past the declared size.
        Scheme::Rle => rle::decompress_with_limit(payload, raw_len).ok_or(CodecError::Corrupt)?,
        // The header's raw length doubles as an exact pre-allocation hint,
        // eliminating grow-and-copy churn on the decode hot path.
        Scheme::Lzss => lzss::decompress_with_hint(payload, raw_len).ok_or(CodecError::Corrupt)?,
        Scheme::Delta4 => delta::decompress(payload, 4).ok_or(CodecError::Corrupt)?,
        Scheme::Delta1 => delta::decompress(payload, 1).ok_or(CodecError::Corrupt)?,
        Scheme::Delta8 => delta::decompress(payload, 8).ok_or(CodecError::Corrupt)?,
        Scheme::XorF32 => xorf::decompress(payload).ok_or(CodecError::Corrupt)?,
    };
    if out.len() != raw_len {
        return Err(CodecError::LengthMismatch {
            expected: raw_len,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheme_roundtrips() {
        let input: Vec<u8> = (0..2048u32).flat_map(|i| (i % 97).to_le_bytes()).collect();
        for scheme in [
            Scheme::Raw,
            Scheme::Rle,
            Scheme::Lzss,
            Scheme::Delta4,
            Scheme::Delta1,
            Scheme::Delta8,
            Scheme::XorF32,
        ] {
            let frame = compress(&input, scheme);
            assert_eq!(decompress(&frame).unwrap(), input, "scheme {scheme:?}");
        }
    }

    #[test]
    fn auto_picks_rle_for_constant_data() {
        let input = vec![0u8; 65536];
        let frame = compress_auto(&input);
        assert_eq!(frame[0], Scheme::Rle as u8);
        assert!(frame.len() < 16);
        assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn auto_never_beats_raw_by_more_than_header() {
        let mut state = 3u64;
        let input: Vec<u8> = (0..1024)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let frame = compress_auto(&input);
        assert!(frame.len() <= input.len() + 10);
        assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn misaligned_delta_falls_back_to_raw() {
        let input = vec![1u8, 2, 3]; // not 4-aligned
        let frame = compress(&input, Scheme::Delta4);
        assert_eq!(frame[0], Scheme::Raw as u8);
        assert_eq!(decompress(&frame).unwrap(), input);
    }

    #[test]
    fn unknown_scheme_rejected() {
        assert_eq!(decompress(&[99, 0]), Err(CodecError::BadHeader));
    }

    #[test]
    fn empty_frame_rejected() {
        assert_eq!(decompress(&[]), Err(CodecError::BadHeader));
    }

    #[test]
    fn length_mismatch_detected() {
        let mut frame = compress(b"hello world hello world", Scheme::Lzss);
        // Tamper with the declared raw length.
        frame[1] = frame[1].wrapping_add(1);
        assert!(matches!(
            decompress(&frame),
            Err(CodecError::LengthMismatch { .. }) | Err(CodecError::Corrupt)
        ));
    }
}
