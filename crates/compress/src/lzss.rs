//! LZSS: sliding-window dictionary compression (the LZ77 family used by
//! gzip's DEFLATE stage).
//!
//! The DataStore concatenates similar ColumnChunks into one Partition before
//! compressing; because LZSS match offsets can reach back across chunk
//! boundaries (up to [`WINDOW`] bytes), redundancy *between* chunks is removed
//! — this is the mechanism behind the paper's similarity-based compression and
//! the Fig 14 microbenchmark.
//!
//! Format: groups of up to 8 tokens preceded by a flag byte (bit set = match).
//! A literal token is one raw byte. A match token is `(u16 LE distance-1,
//! u8 length-MIN_MATCH)`.

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
/// Sliding-window size: how far back matches may reach.
pub const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;
const MAX_CHAIN: usize = 48;
const NO_POS: u32 = u32::MAX;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `input[a..]` and `input[b..]`, capped at
/// `limit` — compared 8 bytes at a time, with the mismatch located by the
/// trailing zeros of the XOR (little-endian byte order).
#[inline]
fn match_len(input: &[u8], a: usize, b: usize, limit: usize) -> usize {
    let mut l = 0;
    while l + 8 <= limit {
        let x = u64::from_le_bytes(input[a + l..a + l + 8].try_into().unwrap());
        let y = u64::from_le_bytes(input[b + l..b + l + 8].try_into().unwrap());
        let xor = x ^ y;
        if xor != 0 {
            return l + (xor.trailing_zeros() / 8) as usize;
        }
        l += 8;
    }
    while l < limit && input[a + l] == input[b + l] {
        l += 1;
    }
    l
}

/// Compress `input` with LZSS.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    if input.is_empty() {
        return out;
    }

    // Hash-chain match finder: head[h] is the most recent position with hash h;
    // prev[pos % WINDOW] chains to the previous position with the same hash.
    let mut head = vec![NO_POS; HASH_SIZE];
    let mut prev = vec![NO_POS; WINDOW];

    let mut flags_at = out.len();
    out.push(0);
    let mut ntokens = 0u8;

    let mut i = 0;
    while i < input.len() {
        if ntokens == 8 {
            flags_at = out.len();
            out.push(0);
            ntokens = 0;
        }

        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(input, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != NO_POS && chain < MAX_CHAIN {
                let c = cand as usize;
                if i - c > WINDOW - 1 {
                    break;
                }
                let limit = (input.len() - i).min(MAX_MATCH);
                let l = match_len(input, c, i, limit);
                if l > best_len {
                    best_len = l;
                    best_dist = i - c;
                    if l == limit {
                        break;
                    }
                }
                // Staleness guard: `prev` is indexed by `pos % WINDOW`, so
                // once the input outgrows the window a slot can alias a
                // position from an earlier lap of the ring. A genuine chain
                // link always points strictly backwards; anything else is a
                // stale alias (or a cycle) and must terminate the walk.
                let next = prev[c % WINDOW];
                if next != NO_POS {
                    debug_assert!(
                        (next as usize) < c,
                        "hash chain must be strictly decreasing: {next} after {c}"
                    );
                    if next as usize >= c {
                        break;
                    }
                }
                cand = next;
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            out[flags_at] |= 1 << ntokens;
            let d = (best_dist - 1) as u16;
            out.extend_from_slice(&d.to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Insert hash entries for every position covered by the match so
            // later data can match into it.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash4(input, i);
                    prev[i % WINDOW] = head[h];
                    head[h] = i as u32;
                }
                i += 1;
            }
        } else {
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash4(input, i);
                prev[i % WINDOW] = head[h];
                head[h] = i as u32;
            }
            i += 1;
        }
        ntokens += 1;
    }
    out
}

/// Decompress an LZSS stream produced by [`compress`].
/// Returns `None` on malformed input.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    decompress_with_hint(input, input.len().saturating_mul(2))
}

/// [`decompress`] with a capacity hint for the output buffer. Frame decoders
/// know the exact raw length from the header; passing it avoids every
/// reallocation on the decode hot path.
pub fn decompress_with_hint(input: &[u8], raw_len_hint: usize) -> Option<Vec<u8>> {
    // Cap the pre-allocation so a corrupt hint cannot reserve gigabytes.
    let mut out = Vec::with_capacity(raw_len_hint.min(1 << 26));
    let len_in = input.len();
    let mut pos = 0;
    while pos < len_in {
        let flags = input[pos];
        pos += 1;
        if flags == 0 {
            // Literal-only group: copy up to 8 bytes in one memcpy instead
            // of eight bounds-checked pushes (the hot path of raw/low-
            // redundancy payloads).
            let n = 8.min(len_in - pos);
            out.extend_from_slice(&input[pos..pos + n]);
            pos += n;
            continue;
        }
        for bit in 0..8 {
            if pos >= len_in {
                break;
            }
            if flags & (1 << bit) != 0 {
                if pos + 3 > len_in {
                    return None;
                }
                let dist = u16::from_le_bytes([input[pos], input[pos + 1]]) as usize + 1;
                let len = input[pos + 2] as usize + MIN_MATCH;
                pos += 3;
                if dist > out.len() {
                    return None;
                }
                let start = out.len() - dist;
                // Chunked match copy: each pass copies the whole available
                // run, so a self-overlapping match (dist < len) doubles the
                // run per pass instead of copying byte by byte, and a
                // non-overlapping match is a single memcpy.
                let mut remaining = len;
                while remaining > 0 {
                    let avail = (out.len() - start).min(remaining);
                    out.extend_from_within(start..start + avail);
                    remaining -= avail;
                }
            } else {
                out.push(input[pos]);
                pos += 1;
            }
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decompress(&compress(&[])), Some(vec![]));
    }

    #[test]
    fn short_input_roundtrip() {
        for len in 1..16 {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(decompress(&compress(&input)), Some(input));
        }
    }

    #[test]
    fn repetitive_text_compresses() {
        let input = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(10_000)
            .copied()
            .collect::<Vec<u8>>();
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 5,
            "got {} of {}",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn overlapping_match_roundtrip() {
        // "aaaa..." forces self-overlapping matches.
        let input = vec![b'a'; 1000];
        let c = compress(&input);
        assert!(c.len() < 32);
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn incompressible_data_roundtrips() {
        // Pseudo-random bytes: no matches, slight expansion from flag bytes.
        let mut state = 0x12345678u64;
        let input: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 56) as u8
            })
            .collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + input.len() / 8 + 2);
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn duplicated_block_compresses_to_half() {
        // Two identical 8 KiB blocks back to back: the second should be
        // almost free — the cross-chunk dedup effect inside a Partition.
        let mut state = 7u64;
        let block: Vec<u8> = (0..8192)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 33) as u8
            })
            .collect();
        let mut input = block.clone();
        input.extend_from_slice(&block);
        let c = compress(&input);
        assert!(
            c.len() < block.len() + block.len() / 4,
            "expected second copy nearly free, got {} for {} raw",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn corrupt_distance_rejected() {
        // A match that reaches before the start of output must be rejected.
        let bad = vec![0b0000_0001, 0xff, 0xff, 0x00];
        assert_eq!(decompress(&bad), None);
    }
}
