//! Bit-level reader/writer used by the XOR float codec.

/// Append-only bit writer, MSB-first within each byte.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 = byte boundary).
    used: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Write the lowest `n` bits of `value`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64);
        // Fill the partial final byte, then whole bytes — at most 8 bits per
        // pass instead of one.
        let mut n = n;
        while n > 0 {
            if self.used == 0 {
                self.bytes.push(0);
            }
            let room = 8 - self.used;
            let take = room.min(n);
            let chunk = ((value >> (n - take)) & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.len() - 1;
            self.bytes[last] |= chunk << (room - take);
            self.used = (self.used + take) % 8;
            n -= take;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finish, returning the packed bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader matching [`BitWriter`]'s layout.
///
/// Buffers up to 64 bits in a register (MSB-aligned) so `read_bits` is a
/// shift-and-mask instead of a per-bit loop — the XOR float decoder reads
/// 2–34 bits per value through this.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    byte_pos: usize,
    /// Unconsumed bits, left-aligned (bit 63 is the next bit to read).
    buf: u64,
    buf_bits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from packed bytes.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader {
            bytes,
            byte_pos: 0,
            buf: 0,
            buf_bits: 0,
        }
    }

    /// Top up the bit buffer from the byte stream (to ≥ 57 bits or EOF).
    #[inline]
    fn refill(&mut self) {
        while self.buf_bits <= 56 {
            match self.bytes.get(self.byte_pos) {
                Some(&b) => {
                    self.buf |= (b as u64) << (56 - self.buf_bits);
                    self.byte_pos += 1;
                    self.buf_bits += 8;
                }
                None => break,
            }
        }
    }

    /// Read up to 32 bits from the buffer.
    #[inline]
    fn read_bits_small(&mut self, n: u32) -> Option<u64> {
        if self.buf_bits < n {
            self.refill();
            if self.buf_bits < n {
                return None;
            }
        }
        let v = self.buf >> (64 - n);
        self.buf <<= n;
        self.buf_bits -= n;
        Some(v)
    }

    /// Read one bit; `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits_small(1).map(|b| b == 1)
    }

    /// Read `n` bits as the low bits of a u64, most significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64);
        if n == 0 {
            return Some(0);
        }
        if n > 32 {
            let hi = self.read_bits_small(32)?;
            let lo = self.read_bits_small(n - 32)?;
            return Some((hi << (n - 32)) | lo);
        }
        self.read_bits_small(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0b1011, 4);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(0, 7);
        w.write_bit(false);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(7), Some(0));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(bits, 45);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // Padding bits still readable within the final byte...
        assert!(r.read_bits(5).is_some());
        // ...but not beyond it.
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }
}
