//! Bit-level reader/writer used by the XOR float codec.

/// Append-only bit writer, MSB-first within each byte.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0 = byte boundary).
    used: u32,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Write a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Write the lowest `n` bits of `value`, most significant first.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
            - if self.used == 0 {
                0
            } else {
                (8 - self.used) as usize
            }
    }

    /// Finish, returning the packed bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Sequential bit reader matching [`BitWriter`]'s layout.
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from packed bytes.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Read one bit; `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u32)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits as the low bits of a u64, most significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0b1011, 4);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(0, 7);
        w.write_bit(false);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(7), Some(0));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(bits, 45);
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        // Padding bits still readable within the final byte...
        assert!(r.read_bits(5).is_some());
        // ...but not beyond it.
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn empty_writer() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }
}
