//! Gorilla-style XOR compression for f32 streams (Facebook's time-series
//! codec, adapted to 32-bit values).
//!
//! Neighbouring activations of one neuron usually share sign, exponent, and
//! high mantissa bits; XORing consecutive values concentrates the entropy in
//! a short "meaningful" window that can be coded compactly:
//!
//! - `0`                       — identical to the previous value,
//! - `10` + reuse window       — meaningful bits fit the previous window,
//! - `11` + 5-bit lead + 5-bit len + bits — new window.

use crate::bits::{BitReader, BitWriter};
use crate::varint;

/// Compress a little-endian f32 byte stream. Returns `None` if the input
/// length is not a multiple of 4 (caller falls back to another codec).
pub fn compress(input: &[u8]) -> Option<Vec<u8>> {
    if !input.len().is_multiple_of(4) {
        return None;
    }
    let n = input.len() / 4;
    let mut header = Vec::with_capacity(8);
    varint::write_u64(&mut header, n as u64);
    if n == 0 {
        return Some(header);
    }

    let mut w = BitWriter::new();
    let mut prev = u32::from_le_bytes(input[0..4].try_into().unwrap());
    w.write_bits(prev as u64, 32);
    let mut prev_lead = 32u32;
    let mut prev_len = 0u32;

    for k in 1..n {
        let cur = u32::from_le_bytes(input[k * 4..k * 4 + 4].try_into().unwrap());
        let xor = prev ^ cur;
        if xor == 0 {
            w.write_bit(false);
        } else {
            w.write_bit(true);
            let lead = xor.leading_zeros().min(31);
            let trail = xor.trailing_zeros();
            let len = 32 - lead - trail;
            // Reuse the previous window when the new xor fits inside it.
            if prev_len > 0 && lead >= prev_lead && trail >= 32 - prev_lead - prev_len {
                w.write_bit(false);
                w.write_bits((xor >> (32 - prev_lead - prev_len)) as u64, prev_len);
            } else {
                w.write_bit(true);
                w.write_bits(lead as u64, 5);
                // len in 1..=32; store len-1 in 5 bits.
                w.write_bits((len - 1) as u64, 5);
                w.write_bits((xor >> trail) as u64, len);
                prev_lead = lead;
                prev_len = len;
            }
        }
        prev = cur;
    }

    header.extend_from_slice(&w.into_bytes());
    Some(header)
}

/// Decompress a stream produced by [`compress`] back to f32 LE bytes.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut pos = 0usize;
    let n = varint::read_u64(input, &mut pos)? as usize;
    // Sanity bound: each value needs at least one bit.
    if n > input
        .len()
        .saturating_sub(pos)
        .saturating_mul(8)
        .saturating_add(32)
    {
        return None;
    }
    let mut out = Vec::with_capacity(n * 4);
    if n == 0 {
        return Some(out);
    }
    let mut r = BitReader::new(&input[pos..]);
    let mut prev = r.read_bits(32)? as u32;
    out.extend_from_slice(&prev.to_le_bytes());
    let mut prev_lead = 32u32;
    let mut prev_len = 0u32;

    for _ in 1..n {
        let cur = if !r.read_bit()? {
            prev
        } else if !r.read_bit()? {
            // Previous window.
            if prev_len == 0 {
                return None; // window reuse before any window was defined
            }
            let bits = r.read_bits(prev_len)? as u32;
            prev ^ (bits << (32 - prev_lead - prev_len))
        } else {
            let lead = r.read_bits(5)? as u32;
            let len = r.read_bits(5)? as u32 + 1;
            if lead + len > 32 {
                return None;
            }
            let trail = 32 - lead - len;
            let bits = r.read_bits(len)? as u32;
            prev_lead = lead;
            prev_len = len;
            prev ^ (bits << trail)
        };
        out.extend_from_slice(&cur.to_le_bytes());
        prev = cur;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f32]) -> (usize, usize) {
        let input: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let c = compress(&input).unwrap();
        assert_eq!(decompress(&c).unwrap(), input);
        (input.len(), c.len())
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[std::f32::consts::PI]);
        roundtrip(&[f32::NAN]); // bit patterns roundtrip exactly
    }

    #[test]
    fn constant_stream_compresses_to_bits() {
        let (raw, c) = roundtrip(&[1.5f32; 10_000]);
        // 1 bit per repeated value.
        assert!(c < raw / 20, "constant stream {c} of {raw}");
    }

    #[test]
    fn smooth_stream_compresses_well() {
        // Slowly varying activations: neighbours share exponent + high bits.
        let values: Vec<f32> = (0..10_000).map(|i| 1.0 + (i as f32) * 1e-6).collect();
        let (raw, c) = roundtrip(&values);
        assert!(c < raw / 2, "smooth stream {c} of {raw}");
    }

    #[test]
    fn random_stream_roundtrips_with_bounded_expansion() {
        let mut state = 9u64;
        let values: Vec<f32> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                f32::from_bits((state >> 32) as u32 & 0x7f7f_ffff)
            })
            .collect();
        let (raw, c) = roundtrip(&values);
        // Worst case ~ (2 + 10 + 32)/32 bits per value overhead.
        assert!(c < raw + raw / 2, "random stream {c} of {raw}");
    }

    #[test]
    fn negatives_and_extremes() {
        roundtrip(&[
            0.0,
            -0.0,
            f32::MIN,
            f32::MAX,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -1e-40, // subnormal
        ]);
    }

    #[test]
    fn misaligned_input_rejected() {
        assert!(compress(&[1, 2, 3]).is_none());
    }

    #[test]
    fn garbage_decompress_never_panics() {
        for seed in 0..50u64 {
            let mut state = seed;
            let garbage: Vec<u8> = (0..64)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            let _ = decompress(&garbage);
        }
    }
}
