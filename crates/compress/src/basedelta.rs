//! Base+delta frames: a chunk stored as the XOR difference against another
//! stored chunk (the **base**).
//!
//! Near-duplicate chunks — checkpoints of the same DNN layer across epochs,
//! Zillow pipeline variants that only touch a few rows — differ in a small
//! fraction of their bytes. XORing the target against its base turns the
//! unchanged bytes into zero runs that [`crate::compress_auto`] collapses;
//! the frame records everything decode needs to be self-describing and
//! *strict*:
//!
//! ```text
//! [0xDE][base digest: 2 × u64 LE][varint base_len][varint raw_len]
//!       [varint inner_len][inner frame: compress_auto(target XOR base)]
//! ```
//!
//! The magic byte `0xDE` can never collide with a serialized
//! [`mistique-dataframe`] ColumnChunk (whose first byte is a dtype tag
//! `0..=6`), so the store can tell a delta frame from a plain chunk by its
//! first byte. Decode rejects a wrong base (digest or length mismatch),
//! truncation, and trailing garbage — a strict prefix of a valid frame never
//! decodes (see `crates/compress/tests/truncation_fuzz.rs`).
//!
//! The XOR rule for unequal lengths: positions past the end of the base
//! carry the target's bytes verbatim (XOR against an implicit zero pad), so
//! any target can be expressed against any base — the encoder only wins when
//! the streams actually overlap.

use crate::frame::{self, CodecError, Scheme};
use crate::varint;

/// First byte of every base+delta frame. Disjoint from the ColumnChunk dtype
/// tags (`0..=6`) the store otherwise keeps in partitions.
pub const DELTA_MAGIC: u8 = 0xDE;

/// Bytes of fixed header before the varint fields: magic + two u64 digests.
const FIXED_HEADER: usize = 1 + 16;

/// Does this buffer carry a base+delta frame? (Header check only — the
/// frame may still fail to decode.)
pub fn is_delta_frame(bytes: &[u8]) -> bool {
    bytes.first() == Some(&DELTA_MAGIC)
}

/// Encode `target` as a delta frame against `base`, stamped with the base's
/// content digest. Always succeeds; callers compare the frame length against
/// the raw target to decide whether the delta representation actually wins.
pub fn encode(target: &[u8], base: &[u8], base_digest: (u64, u64)) -> Vec<u8> {
    let xored = xor_against(target, base);
    let inner = frame::compress_auto(&xored);
    let mut out = Vec::with_capacity(FIXED_HEADER + 15 + inner.len());
    out.push(DELTA_MAGIC);
    out.extend_from_slice(&base_digest.0.to_le_bytes());
    out.extend_from_slice(&base_digest.1.to_le_bytes());
    varint::write_u64(&mut out, base.len() as u64);
    varint::write_u64(&mut out, target.len() as u64);
    varint::write_u64(&mut out, inner.len() as u64);
    out.extend_from_slice(&inner);
    out
}

/// Decode a delta frame back to the target bytes, verifying the caller
/// supplied the exact base the frame was encoded against (digest *and*
/// length). Strict: truncated frames, trailing garbage, and inner-frame
/// corruption are all rejected.
pub fn decode(
    frame_bytes: &[u8],
    base: &[u8],
    base_digest: (u64, u64),
) -> Result<Vec<u8>, CodecError> {
    let header = parse_header(frame_bytes).ok_or(CodecError::BadHeader)?;
    if header.base_digest != base_digest {
        return Err(CodecError::Corrupt);
    }
    if header.base_len != base.len() {
        return Err(CodecError::LengthMismatch {
            expected: header.base_len,
            actual: base.len(),
        });
    }
    let xored = frame::decompress(header.inner)?;
    if xored.len() != header.raw_len {
        return Err(CodecError::LengthMismatch {
            expected: header.raw_len,
            actual: xored.len(),
        });
    }
    Ok(xor_against(&xored, base))
}

/// The base digest a delta frame was encoded against, without decoding it.
pub fn base_digest_of(frame_bytes: &[u8]) -> Option<(u64, u64)> {
    parse_header(frame_bytes).map(|h| h.base_digest)
}

/// The scheme of the inner XOR-stream frame — what EXPLAIN attributes the
/// delta-resolved bytes to (rendered as `delta:<scheme>`).
pub fn inner_scheme(frame_bytes: &[u8]) -> Option<Scheme> {
    parse_header(frame_bytes).and_then(|h| frame::scheme_of(h.inner))
}

struct Header<'a> {
    base_digest: (u64, u64),
    base_len: usize,
    raw_len: usize,
    inner: &'a [u8],
}

/// Parse and validate the outer frame layout. `None` unless the buffer is
/// exactly one well-formed frame (no truncation, no trailing bytes).
fn parse_header(bytes: &[u8]) -> Option<Header<'_>> {
    if bytes.len() < FIXED_HEADER || bytes[0] != DELTA_MAGIC {
        return None;
    }
    let d0 = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
    let d1 = u64::from_le_bytes(bytes[9..17].try_into().ok()?);
    let mut pos = FIXED_HEADER;
    let base_len = varint::read_u64(bytes, &mut pos)? as usize;
    let raw_len = varint::read_u64(bytes, &mut pos)? as usize;
    let inner_len = varint::read_u64(bytes, &mut pos)? as usize;
    // Strictness: the inner frame must consume the rest of the buffer
    // exactly — a strict prefix or appended garbage never parses.
    if inner_len != bytes.len().checked_sub(pos)? {
        return None;
    }
    Some(Header {
        base_digest: (d0, d1),
        base_len,
        raw_len,
        inner: &bytes[pos..],
    })
}

/// `a XOR b`, output the length of `a`; positions past `b`'s end pass
/// through verbatim. Involution: `xor_against(xor_against(t, b), b) == t`.
fn xor_against(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = a.to_vec();
    for (o, &bb) in out.iter_mut().zip(b.iter()) {
        *o ^= bb;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest() -> (u64, u64) {
        (0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321)
    }

    #[test]
    fn near_duplicate_roundtrips_and_shrinks() {
        let base: Vec<u8> = (0..8192u32).flat_map(|i| (i % 251).to_le_bytes()).collect();
        let mut target = base.clone();
        // Perturb ~1% of positions.
        for i in (0..target.len()).step_by(128) {
            target[i] ^= 0x5a;
        }
        let f = encode(&target, &base, digest());
        assert!(
            f.len() < target.len() / 4,
            "delta frame should collapse the zero runs: {} vs {}",
            f.len(),
            target.len()
        );
        assert!(is_delta_frame(&f));
        assert_eq!(base_digest_of(&f), Some(digest()));
        assert!(inner_scheme(&f).is_some());
        assert_eq!(decode(&f, &base, digest()).unwrap(), target);
    }

    #[test]
    fn unequal_lengths_roundtrip_both_ways() {
        let base = vec![7u8; 1000];
        let longer = vec![7u8; 1500];
        let shorter = vec![7u8; 300];
        for target in [&longer, &shorter] {
            let f = encode(target, &base, digest());
            assert_eq!(&decode(&f, &base, digest()).unwrap(), target);
        }
    }

    #[test]
    fn empty_target_and_empty_base_roundtrip() {
        let f = encode(&[], &[], digest());
        assert_eq!(decode(&f, &[], digest()).unwrap(), Vec::<u8>::new());
        let base = vec![1u8, 2, 3];
        let f = encode(&[], &base, digest());
        assert_eq!(decode(&f, &base, digest()).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wrong_base_digest_rejected() {
        let base = vec![9u8; 64];
        let f = encode(&[8u8; 64], &base, digest());
        let wrong = (digest().0 ^ 1, digest().1);
        assert_eq!(decode(&f, &base, wrong), Err(CodecError::Corrupt));
    }

    #[test]
    fn wrong_base_length_rejected() {
        let base = vec![9u8; 64];
        let f = encode(&[8u8; 64], &base, digest());
        assert!(matches!(
            decode(&f, &base[..63], digest()),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn strict_prefixes_and_trailing_garbage_rejected() {
        let base: Vec<u8> = (0u16..512).flat_map(|i| i.to_le_bytes()).collect();
        let mut target = base.clone();
        target[100] ^= 0xff;
        let f = encode(&target, &base, digest());
        for cut in 0..f.len() {
            assert!(
                decode(&f[..cut], &base, digest()).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut longer = f.clone();
        longer.push(0);
        assert!(decode(&longer, &base, digest()).is_err());
    }

    #[test]
    fn non_delta_bytes_rejected() {
        // A serialized chunk's first byte is a dtype tag 0..=6 — never the
        // magic — and must not parse as a delta frame.
        assert!(!is_delta_frame(&[0, 1, 2, 3]));
        assert!(decode(&[0, 1, 2, 3], &[], digest()).is_err());
        assert_eq!(base_digest_of(&[]), None);
    }

    #[test]
    fn absurd_inner_length_rejected_without_allocation() {
        let mut f = vec![DELTA_MAGIC];
        f.extend_from_slice(&[0u8; 16]);
        // base_len, raw_len tiny; inner_len absurdly large.
        f.push(0);
        f.push(0);
        varint::write_u64(&mut f, u64::MAX);
        assert!(decode(&f, &[], (0, 0)).is_err());
    }
}
