//! Delta + zig-zag + varint coding for integer-like byte streams.
//!
//! Interprets the input as little-endian integers of a fixed width (1, 2, 4,
//! or 8 bytes), stores the first value and then zig-zag varint deltas.
//! Effective on sorted ids (`row_id` columns) and slowly-varying quantized
//! activations.

use crate::varint;

/// Encode `input` as width-`w` LE integer deltas. `input.len()` must be a
/// multiple of `w` and `w` one of 1/2/4/8; returns `None` otherwise (caller
/// falls back to raw).
pub fn compress(input: &[u8], w: usize) -> Option<Vec<u8>> {
    if !matches!(w, 1 | 2 | 4 | 8) {
        return None;
    }
    if !input.len().is_multiple_of(w) {
        return None;
    }
    let n = input.len() / w;
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    varint::write_u64(&mut out, n as u64);
    let mut prev = 0i64;
    for k in 0..n {
        let v = read_le(&input[k * w..], w);
        varint::write_u64(&mut out, varint::zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    Some(out)
}

/// Decode a delta stream produced by [`compress`] with the same width.
pub fn decompress(input: &[u8], w: usize) -> Option<Vec<u8>> {
    if !matches!(w, 1 | 2 | 4 | 8) {
        return None;
    }
    let mut pos = 0;
    let n = varint::read_u64(input, &mut pos)? as usize;
    // Guard against absurd lengths from corrupt headers: a huge reservation
    // would abort the process instead of returning a decode error. The
    // remaining input has at least one byte per value, so `n` can never
    // legitimately exceed what is left to parse.
    if n > input.len().saturating_sub(pos) {
        return None;
    }
    let mut out = Vec::with_capacity(n * w);
    let mut prev = 0i64;
    for _ in 0..n {
        let delta = varint::unzigzag(varint::read_u64(input, &mut pos)?);
        let v = prev.wrapping_add(delta);
        write_le(&mut out, v, w);
        prev = v;
    }
    if pos != input.len() {
        return None;
    }
    Some(out)
}

#[inline]
fn read_le(bytes: &[u8], w: usize) -> i64 {
    let mut v = 0u64;
    for (i, &b) in bytes[..w].iter().enumerate() {
        v |= u64::from(b) << (8 * i);
    }
    v as i64
}

#[inline]
fn write_le(out: &mut Vec<u8>, v: i64, w: usize) {
    let u = v as u64;
    for i in 0..w {
        out.push((u >> (8 * i)) as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_u32_ids_compress_well() {
        let mut input = Vec::new();
        for i in 0u32..10_000 {
            input.extend_from_slice(&i.to_le_bytes());
        }
        let c = compress(&input, 4).unwrap();
        // Each delta is 1 => ~1 byte each + length header vs 4 bytes raw.
        assert!(c.len() < input.len() / 3);
        assert_eq!(decompress(&c, 4), Some(input));
    }

    #[test]
    fn u8_stream_roundtrip() {
        let input: Vec<u8> = (0..=255).chain((0..=255).rev()).collect();
        let c = compress(&input, 1).unwrap();
        assert_eq!(decompress(&c, 1), Some(input));
    }

    #[test]
    fn u64_extremes_roundtrip() {
        let vals = [0u64, u64::MAX, 1, u64::MAX / 2, 42];
        let mut input = Vec::new();
        for v in vals {
            input.extend_from_slice(&v.to_le_bytes());
        }
        let c = compress(&input, 8).unwrap();
        assert_eq!(decompress(&c, 8), Some(input));
    }

    #[test]
    fn misaligned_input_returns_none() {
        assert_eq!(compress(&[1, 2, 3], 2), None);
    }

    #[test]
    fn unsupported_width_returns_none() {
        // The documented contract: bad widths fall back to raw, they must
        // not panic.
        for w in [0usize, 3, 5, 6, 7, 16] {
            assert_eq!(compress(&[0u8; 48], w), None, "compress width {w}");
            assert_eq!(decompress(&[0u8; 48], w), None, "decompress width {w}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let input: Vec<u8> = (0u8..16).collect();
        let mut c = compress(&input, 4).unwrap();
        c.push(0);
        assert_eq!(decompress(&c, 4), None);
    }

    #[test]
    fn empty_roundtrip() {
        let c = compress(&[], 4).unwrap();
        assert_eq!(decompress(&c, 4), Some(vec![]));
    }
}
