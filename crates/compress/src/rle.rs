//! Byte-level run-length encoding.
//!
//! Encodes as a sequence of `(varint run_length, byte)` pairs. Hugely effective
//! on THRESHOLD_QT binarized data and constant columns; harmless elsewhere
//! because the `Auto` frame only keeps it when it wins.

use crate::varint;

/// Run-length encode `input`.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 8);
    let mut i = 0;
    while i < input.len() {
        let byte = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == byte {
            run += 1;
        }
        varint::write_u64(&mut out, run as u64);
        out.push(byte);
        i += run;
    }
    out
}

/// Upper bound on decoded output, guarding against corrupt headers that
/// declare absurd run lengths (a huge `Vec` reservation would abort the
/// process via `handle_alloc_error` instead of returning an error).
const MAX_DECODED: usize = 1 << 31;

/// Decode a run-length stream produced by [`compress`].
/// Returns `None` on malformed input.
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    decompress_with_limit(input, MAX_DECODED)
}

/// [`decompress`] with an explicit output-size cap: decoding fails as soon
/// as the output would exceed `limit` bytes. Unlike the other codecs, RLE
/// carries no total-length header, so a corrupt stream can declare runs
/// whose expansion is bounded only by this cap — callers that know the
/// expected raw size (the frame decoder does) should pass it so corruption
/// is rejected *before* gigabytes are zero-filled, not after.
pub fn decompress_with_limit(input: &[u8], limit: usize) -> Option<Vec<u8>> {
    // Reserve up front when the caller knows the raw size (the frame decoder
    // always does); cap the guess so an absurd limit cannot reserve memory.
    let mut out = Vec::with_capacity(limit.min(1 << 26));
    let len_in = input.len();
    let mut pos = 0;
    while pos < len_in {
        // Runs shorter than 128 encode as a single varint byte — the
        // overwhelmingly common case — so decode it without the full
        // multi-byte loop.
        let b0 = input[pos];
        let run = if b0 < 0x80 {
            pos += 1;
            b0 as usize
        } else {
            varint::read_u64(input, &mut pos)? as usize
        };
        let byte = *input.get(pos)?;
        pos += 1;
        if run == 0 || out.len().checked_add(run)? > limit {
            return None; // zero runs never produced; oversized = corrupt
        }
        out.resize(out.len() + run, byte);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decompress(&compress(&[])), Some(vec![]));
    }

    #[test]
    fn constant_data_compresses_massively() {
        let input = vec![7u8; 100_000];
        let c = compress(&input);
        assert!(
            c.len() < 8,
            "constant run should be a few bytes, got {}",
            c.len()
        );
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn alternating_data_roundtrips() {
        let input: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        let c = compress(&input);
        assert_eq!(decompress(&c), Some(input));
    }

    #[test]
    fn arbitrary_bytes_roundtrip() {
        let input: Vec<u8> = (0..=255).cycle().take(5000).collect();
        assert_eq!(decompress(&compress(&input)), Some(input));
    }

    #[test]
    fn malformed_truncated_input_rejected() {
        let mut c = compress(&[1, 1, 1, 2]);
        c.pop(); // drop final byte
        assert_eq!(decompress(&c), None);
    }

    #[test]
    fn limit_rejects_runs_past_the_cap() {
        let input = vec![3u8; 1000];
        let c = compress(&input);
        assert_eq!(decompress_with_limit(&c, 1000), Some(input));
        assert_eq!(decompress_with_limit(&c, 999), None);
    }
}
