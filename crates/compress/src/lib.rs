//! Byte-oriented compression codecs for the MISTIQUE data store.
//!
//! The paper compresses Partitions "with a variety of off-the-shelf compression
//! schemes including gzip, HDF5, and Parquet" (Sec 4.2.1). None of those are
//! available here, so this crate implements the relevant algorithm families from
//! scratch:
//!
//! - [`rle`]: run-length encoding — wins on constant/binarized data (THRESHOLD_QT),
//! - [`lzss`]: an LZ77-family sliding-window compressor (the engine inside gzip's
//!   DEFLATE) — wins on repeated byte patterns, and crucially its shared window is
//!   what makes *co-locating similar ColumnChunks in one Partition* pay off,
//! - [`delta`]: delta + zig-zag + varint for integer-like streams,
//! - [`basedelta`]: base+delta frames — a chunk stored as the XOR difference
//!   against a similar, already-stored chunk (cross-checkpoint dedup),
//! - [`xorf`]: Gorilla-style XOR compression for f32 activation streams,
//! - [`varint`]: LEB128 variable-length integers used by the other codecs,
//! - [`frame`]: a self-describing container that records the scheme and original
//!   length, with an `Auto` mode that tries candidates and keeps the smallest.
//!
//! All codecs are lossless: `decompress(compress(x)) == x` for arbitrary bytes,
//! enforced by the property tests.

pub mod basedelta;
pub mod bits;
pub mod delta;
pub mod frame;
pub mod lzss;
pub mod rle;
pub mod varint;
pub mod xorf;

pub use frame::{
    compress, compress_auto, compress_auto_extended, decompress, scheme_of, CodecError, Scheme,
};

/// Compression statistics for reporting (used by the Fig 14 microbenchmark).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressionStats {
    /// Input size in bytes.
    pub raw_bytes: usize,
    /// Output (compressed) size in bytes.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// Ratio raw/compressed; 1.0 when nothing was saved, >1 when compression helped.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 0.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}
