//! Exact and approximate de-duplication (MISTIQUE Sec 4.2).
//!
//! - [`hash`]: a from-scratch xxHash64 implementation used to fingerprint
//!   ColumnChunk bytes. Exact dedup is a hash-map lookup on these digests.
//! - [`minhash`]: MinHash signatures over discretized value sets, estimating
//!   Jaccard similarity between ColumnChunks.
//! - [`lsh`]: a banded locality-sensitive-hash index that, given a new
//!   chunk's signature, returns previously seen chunks with estimated
//!   Jaccard similarity above a threshold τ — the paper uses this to route
//!   similar chunks into the same Partition so they compress together.

pub mod hash;
pub mod lsh;
pub mod minhash;

pub use hash::{content_digest, xxhash64, ContentDigest};
pub use lsh::LshIndex;
pub use minhash::{discretize, MinHasher, Signature};
