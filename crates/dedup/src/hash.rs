//! xxHash64, implemented from scratch.
//!
//! Chunk fingerprints do not need cryptographic strength (the store is not
//! adversarial), they need speed and good dispersion — exactly the xxHash
//! design point. The implementation follows the reference specification and
//! is validated against its published test vectors.

const PRIME1: u64 = 0x9E3779B185EBCA87;
const PRIME2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME3: u64 = 0x165667B19E3779F9;
const PRIME4: u64 = 0x85EBCA77C2B2AE63;
const PRIME5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME2))
        .rotate_left(31)
        .wrapping_mul(PRIME1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME1)
        .wrapping_add(PRIME4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// Compute the xxHash64 digest of `input` with the given `seed`.
pub fn xxhash64(input: &[u8], seed: u64) -> u64 {
    let len = input.len();
    let mut h: u64;
    let mut rest = input;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME1).wrapping_add(PRIME2);
        let mut v2 = seed.wrapping_add(PRIME2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(rest));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME1)
            .wrapping_add(PRIME4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ u64::from(read_u32(rest)).wrapping_mul(PRIME1))
            .rotate_left(23)
            .wrapping_mul(PRIME2)
            .wrapping_add(PRIME3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h = (h ^ u64::from(byte).wrapping_mul(PRIME5))
            .rotate_left(11)
            .wrapping_mul(PRIME1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME3);
    h ^= h >> 32;
    h
}

/// A 128-bit content fingerprint (two independent xxhash64 seeds), small
/// enough to key a hash map and collision-safe at ColumnChunk counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentDigest(pub u64, pub u64);

/// Fingerprint a byte buffer for exact de-duplication.
pub fn content_digest(bytes: &[u8]) -> ContentDigest {
    ContentDigest(xxhash64(bytes, 0), xxhash64(bytes, 0x9747b28c))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash specification repository.
    #[test]
    fn reference_vectors_seed0() {
        assert_eq!(xxhash64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxhash64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxhash64(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            xxhash64(b"abcdefghijklmnopqrstuvwxyz0123456789", 0),
            0x64F23ECF1609B766
        );
    }

    #[test]
    fn reference_vector_with_seed() {
        assert_eq!(xxhash64(b"", 1), 0xD5AFBA1336A3BE4B);
        assert_eq!(xxhash64(b"abc", 1), 0xBEA9CA8199328908);
    }

    #[test]
    fn long_input_spanning_stripes() {
        // 100 bytes crosses the 32-byte stripe loop plus all tail paths.
        let data: Vec<u8> = (0..100u8).collect();
        let h = xxhash64(&data, 0);
        // Self-consistency: stable across calls and sensitive to any change.
        assert_eq!(h, xxhash64(&data, 0));
        let mut tweaked = data.clone();
        tweaked[57] ^= 1;
        assert_ne!(h, xxhash64(&tweaked, 0));
    }

    #[test]
    fn digest_equality_iff_content_equality() {
        let a = content_digest(b"column chunk bytes");
        let b = content_digest(b"column chunk bytes");
        let c = content_digest(b"column chunk bytez");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seeds_are_independent() {
        let d = content_digest(b"x");
        assert_ne!(d.0, d.1);
    }

    #[test]
    fn dispersion_sanity() {
        // Hash 10k near-identical inputs; all 64-bit digests must be distinct.
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let h = xxhash64(&i.to_le_bytes(), 0);
            assert!(seen.insert(h), "collision at {i}");
        }
    }
}
