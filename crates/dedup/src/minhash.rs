//! MinHash signatures estimating Jaccard similarity between ColumnChunks.
//!
//! The paper detects *similar* (not identical) columns by MinHashing the
//! chunk "after discretizing the values" (Sec 4.2.1). [`discretize`] does the
//! discretization; [`MinHasher`] produces fixed-length signatures whose
//! per-position agreement rate is an unbiased estimator of the Jaccard
//! similarity of the underlying sets.

use crate::hash::xxhash64;

/// A MinHash signature: one minimum per hash function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature(pub Vec<u64>);

impl Signature {
    /// Estimate Jaccard similarity as the fraction of agreeing positions.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths.
    pub fn jaccard_estimate(&self, other: &Signature) -> f64 {
        assert_eq!(self.0.len(), other.0.len(), "signature length mismatch");
        if self.0.is_empty() {
            return 0.0;
        }
        let agree = self.0.iter().zip(&other.0).filter(|(a, b)| a == b).count();
        agree as f64 / self.0.len() as f64
    }
}

/// Produces MinHash signatures of a fixed length.
///
/// Instead of `k` independent hash passes, each element is hashed once with
/// xxhash64 and then remixed per-position with a cheap multiply-xor — the
/// standard "one permutation at a time" trade-off that keeps signature
/// computation O(elements + k).
#[derive(Clone, Debug)]
pub struct MinHasher {
    num_hashes: usize,
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Create a MinHasher with `num_hashes` signature positions
    /// (128 is the conventional default; the estimator's standard error is
    /// about `1/sqrt(num_hashes)`).
    pub fn new(num_hashes: usize) -> MinHasher {
        assert!(num_hashes > 0, "need at least one hash");
        // Derive per-position odd multipliers deterministically.
        let seeds = (0..num_hashes)
            .map(|i| xxhash64(&(i as u64).to_le_bytes(), 0x5eed) | 1)
            .collect();
        MinHasher { num_hashes, seeds }
    }

    /// Signature length.
    pub fn num_hashes(&self) -> usize {
        self.num_hashes
    }

    /// Compute the signature of a set of discretized elements.
    /// An empty set yields a signature of `u64::MAX` everywhere.
    pub fn signature(&self, elements: &[u64]) -> Signature {
        let mut mins = vec![u64::MAX; self.num_hashes];
        for &e in elements {
            let base = xxhash64(&e.to_le_bytes(), 0);
            for (m, &seed) in mins.iter_mut().zip(&self.seeds) {
                // Per-position remix: multiply by an odd constant and xor-fold.
                let h = base.wrapping_mul(seed);
                let h = h ^ (h >> 31);
                if h < *m {
                    *m = h;
                }
            }
        }
        Signature(mins)
    }
}

/// Discretize float values into set elements for MinHashing: each value maps
/// to `round(v / bin_width)` encoded as a u64. Chunks whose values mostly
/// fall in the same bins share elements and thus have high Jaccard.
pub fn discretize(values: &[f64], bin_width: f64) -> Vec<u64> {
    assert!(bin_width > 0.0, "bin width must be positive");
    let mut set: Vec<u64> = values
        .iter()
        .map(|&v| {
            let bin = (v / bin_width).round();
            // Shift to keep negatives distinct from positives.
            (bin as i64 as u64) ^ (1u64 << 63)
        })
        .collect();
    set.sort_unstable();
    set.dedup();
    set
}

/// Exact Jaccard similarity between two sorted, deduplicated element sets
/// (used in tests and calibration).
pub fn jaccard_exact(a: &[u64], b: &[u64]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_estimate_one() {
        let h = MinHasher::new(64);
        let set: Vec<u64> = (0..100).collect();
        let s1 = h.signature(&set);
        let s2 = h.signature(&set);
        assert_eq!(s1.jaccard_estimate(&s2), 1.0);
    }

    #[test]
    fn disjoint_sets_estimate_near_zero() {
        let h = MinHasher::new(128);
        let a: Vec<u64> = (0..500).collect();
        let b: Vec<u64> = (10_000..10_500).collect();
        let est = h.signature(&a).jaccard_estimate(&h.signature(&b));
        assert!(est < 0.1, "estimate {est}");
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        let h = MinHasher::new(256);
        // 50% overlap: J = 1000 / 3000 ≈ 0.333...
        let a: Vec<u64> = (0..2000).collect();
        let b: Vec<u64> = (1000..3000).collect();
        let truth = jaccard_exact(&a, &b);
        let est = h.signature(&a).jaccard_estimate(&h.signature(&b));
        assert!((est - truth).abs() < 0.12, "est {est} vs true {truth}");
    }

    #[test]
    fn discretize_dedups_and_bins() {
        let set = discretize(&[0.01, 0.02, 0.99, 1.01, -0.5], 0.5);
        // bins: 0, 0, 2, 2, -1 -> {-1, 0, 2}
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn discretized_similar_columns_have_high_jaccard() {
        let a: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        // b equals a with small perturbation well under the bin width.
        let b: Vec<f64> = a.iter().map(|v| v + 0.01).collect();
        let da = discretize(&a, 1.0);
        let db = discretize(&b, 1.0);
        assert!(jaccard_exact(&da, &db) > 0.95);
    }

    #[test]
    fn empty_set_signature() {
        let h = MinHasher::new(16);
        let s = h.signature(&[]);
        assert!(s.0.iter().all(|&v| v == u64::MAX));
        // Two empty sets agree everywhere.
        assert_eq!(s.jaccard_estimate(&h.signature(&[])), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_signatures_panic() {
        let a = Signature(vec![1, 2]);
        let b = Signature(vec![1]);
        let _ = a.jaccard_estimate(&b);
    }

    #[test]
    fn jaccard_exact_basics() {
        assert_eq!(jaccard_exact(&[], &[]), 1.0);
        assert_eq!(jaccard_exact(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(jaccard_exact(&[1, 2, 3], &[2, 3, 4]), 0.5);
    }
}
