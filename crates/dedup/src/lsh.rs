//! Banded LSH index over MinHash signatures.
//!
//! Signatures are split into `b` bands of `r` rows; two items land in the
//! same bucket of a band iff their signature rows agree exactly there. The
//! probability a pair with Jaccard `s` collides in at least one band is
//! `1 - (1 - s^r)^b` — an S-curve with threshold near `(1/b)^(1/r)`.
//!
//! The DataStore queries the index with a new ColumnChunk's signature to find
//! the Partition holding its most similar prior chunk (Sec 4.2.1).

use std::collections::HashMap;

use crate::hash::xxhash64;
use crate::minhash::Signature;

/// A banded LSH index mapping signatures to caller-chosen item ids.
#[derive(Clone, Debug)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket map per band: band-hash -> item ids.
    buckets: Vec<HashMap<u64, Vec<u64>>>,
    /// Stored signatures for candidate verification.
    signatures: HashMap<u64, Signature>,
}

impl LshIndex {
    /// Create an index for signatures of length `bands * rows`.
    pub fn new(bands: usize, rows: usize) -> LshIndex {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        LshIndex {
            bands,
            rows,
            buckets: vec![HashMap::new(); bands],
            signatures: HashMap::new(),
        }
    }

    /// Signature length this index expects.
    pub fn signature_len(&self) -> usize {
        self.bands * self.rows
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    fn band_hash(&self, sig: &Signature, band: usize) -> u64 {
        let start = band * self.rows;
        let slice = &sig.0[start..start + self.rows];
        let mut bytes = Vec::with_capacity(self.rows * 8);
        for v in slice {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        xxhash64(&bytes, band as u64)
    }

    /// Insert an item with its signature.
    ///
    /// # Panics
    /// Panics if the signature length does not match the index layout.
    pub fn insert(&mut self, id: u64, sig: Signature) {
        assert_eq!(
            sig.0.len(),
            self.signature_len(),
            "signature length mismatch"
        );
        for band in 0..self.bands {
            let h = self.band_hash(&sig, band);
            self.buckets[band].entry(h).or_default().push(id);
        }
        self.signatures.insert(id, sig);
    }

    /// Candidate ids sharing at least one band bucket with `sig`
    /// (deduplicated, unverified).
    pub fn candidates(&self, sig: &Signature) -> Vec<u64> {
        assert_eq!(
            sig.0.len(),
            self.signature_len(),
            "signature length mismatch"
        );
        let mut out: Vec<u64> = Vec::new();
        for band in 0..self.bands {
            if let Some(ids) = self.buckets[band].get(&self.band_hash(sig, band)) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The most similar indexed item with estimated Jaccard >= `tau`,
    /// verified against the stored signatures. Returns `(id, estimate)`.
    pub fn query_best(&self, sig: &Signature, tau: f64) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for id in self.candidates(sig) {
            let est = self.signatures[&id].jaccard_estimate(sig);
            if est >= tau && best.is_none_or(|(_, b)| est > b) {
                best = Some((id, est));
            }
        }
        best
    }

    /// Every candidate with estimated Jaccard >= `tau`, most similar first
    /// (ties broken by ascending id, so the ranking is deterministic).
    /// Callers that must reject some matches — e.g. the DataStore skipping
    /// sealed partitions or delta bases whose chunks are gone — walk this
    /// list instead of settling for [`LshIndex::query_best`]'s single answer.
    pub fn query_ranked(&self, sig: &Signature, tau: f64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .candidates(sig)
            .into_iter()
            .map(|id| (id, self.signatures[&id].jaccard_estimate(sig)))
            .filter(|&(_, est)| est >= tau)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Every indexed item with its stored signature rows — what the
    /// DataStore persists in its catalog so similarity clustering survives
    /// a reopen. Unordered; callers sort by id for determinism.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u64])> + '_ {
        self.signatures
            .iter()
            .map(|(&id, sig)| (id, sig.0.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn sig_of(h: &MinHasher, elems: &[u64]) -> Signature {
        h.signature(elems)
    }

    #[test]
    fn identical_items_always_collide() {
        let h = MinHasher::new(32);
        let mut idx = LshIndex::new(8, 4);
        let set: Vec<u64> = (0..200).collect();
        idx.insert(1, sig_of(&h, &set));
        let (id, est) = idx.query_best(&sig_of(&h, &set), 0.9).unwrap();
        assert_eq!(id, 1);
        assert_eq!(est, 1.0);
    }

    #[test]
    fn dissimilar_items_not_returned() {
        let h = MinHasher::new(32);
        let mut idx = LshIndex::new(8, 4);
        let a: Vec<u64> = (0..200).collect();
        let b: Vec<u64> = (5_000..5_200).collect();
        idx.insert(1, sig_of(&h, &a));
        assert!(idx.query_best(&sig_of(&h, &b), 0.5).is_none());
    }

    #[test]
    fn similar_items_found_above_threshold() {
        let h = MinHasher::new(128);
        let mut idx = LshIndex::new(32, 4);
        // 90% overlap.
        let a: Vec<u64> = (0..1000).collect();
        let b: Vec<u64> = (100..1100).collect();
        idx.insert(7, sig_of(&h, &a));
        let hit = idx.query_best(&sig_of(&h, &b), 0.6);
        assert!(hit.is_some(), "expected a hit for ~0.82 Jaccard");
        assert_eq!(hit.unwrap().0, 7);
    }

    #[test]
    fn best_match_wins_among_several() {
        let h = MinHasher::new(128);
        let mut idx = LshIndex::new(32, 4);
        let base: Vec<u64> = (0..1000).collect();
        let near: Vec<u64> = (10..1010).collect(); // ~0.98 overlap
        let far: Vec<u64> = (400..1400).collect(); // ~0.43 overlap
        idx.insert(1, sig_of(&h, &near));
        idx.insert(2, sig_of(&h, &far));
        let (id, _) = idx.query_best(&sig_of(&h, &base), 0.2).unwrap();
        assert_eq!(id, 1);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h = MinHasher::new(32);
        let idx = LshIndex::new(8, 4);
        assert!(idx.is_empty());
        assert!(idx.query_best(&sig_of(&h, &[1, 2, 3]), 0.0).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_signature_length_panics() {
        let mut idx = LshIndex::new(8, 4);
        idx.insert(1, Signature(vec![0; 16]));
    }

    #[test]
    fn ranked_query_orders_by_similarity() {
        let h = MinHasher::new(128);
        let mut idx = LshIndex::new(32, 4);
        let base: Vec<u64> = (0..1000).collect();
        let near: Vec<u64> = (10..1010).collect();
        let mid: Vec<u64> = (150..1150).collect();
        idx.insert(1, sig_of(&h, &near));
        idx.insert(2, sig_of(&h, &mid));
        let ranked = idx.query_ranked(&sig_of(&h, &base), 0.2);
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].0, 1, "closest item first");
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "descending similarity");
        }
        let items: Vec<u64> = idx.iter().map(|(id, _)| id).collect();
        assert_eq!(items.len(), 2);
        for (_, sig) in idx.iter() {
            assert_eq!(sig.len(), idx.signature_len());
        }
    }

    #[test]
    fn candidate_list_is_deduplicated() {
        let h = MinHasher::new(32);
        let mut idx = LshIndex::new(8, 4);
        let set: Vec<u64> = (0..100).collect();
        idx.insert(9, sig_of(&h, &set));
        // Identical signature collides in all 8 bands but appears once.
        let cands = idx.candidates(&sig_of(&h, &set));
        assert_eq!(cands, vec![9]);
    }
}
