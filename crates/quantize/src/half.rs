//! IEEE-754 binary16 ("half precision") conversion, from scratch.
//!
//! LP_QT stores activations as half-precision floats. Rust has no stable
//! native `f16`, so this module implements round-to-nearest-even conversion
//! between `f32` and the 16-bit interchange format, including subnormals,
//! infinities, and NaN.

/// A 16-bit IEEE-754 binary16 value stored as its bit pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[allow(non_camel_case_types)]
pub struct f16(pub u16);

impl f16 {
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7c00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xfc00);
    /// Largest finite value (65504).
    pub const MAX: f16 = f16(0x7bff);

    /// Convert from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> f16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let frac = bits & 0x007f_ffff;

        if exp == 0xff {
            // Inf or NaN; preserve a NaN payload bit so NaN stays NaN.
            let nan_bit = if frac != 0 { 0x0200 } else { 0 };
            return f16(sign | 0x7c00 | nan_bit | ((frac >> 13) as u16 & 0x3ff));
        }

        // Unbiased exponent, re-biased for binary16 (bias 15 vs 127).
        let unbiased = exp - 127;
        if unbiased > 15 {
            return f16(sign | 0x7c00); // overflow -> infinity
        }
        if unbiased >= -14 {
            // Normal range: keep 10 fraction bits, round to nearest even.
            let half_exp = ((unbiased + 15) as u32) << 10;
            let mantissa = frac >> 13;
            let round_bit = (frac >> 12) & 1;
            let sticky = frac & 0x0fff;
            let mut h = (half_exp | mantissa) as u16;
            if round_bit == 1 && (sticky != 0 || mantissa & 1 == 1) {
                h += 1; // may carry into exponent, which is correct behavior
            }
            return f16(sign | h);
        }
        if unbiased >= -25 {
            // Subnormal range.
            let full = frac | 0x0080_0000; // implicit leading 1
            let shift = (-unbiased - 14 + 13) as u32;
            let mantissa = full >> shift;
            let round_bit = (full >> (shift - 1)) & 1;
            let sticky = full & ((1 << (shift - 1)) - 1);
            let mut h = mantissa as u16;
            if round_bit == 1 && (sticky != 0 || mantissa & 1 == 1) {
                h += 1;
            }
            return f16(sign | h);
        }
        f16(sign) // underflow to signed zero
    }

    /// Convert to `f32` exactly (every binary16 value is representable).
    ///
    /// Backed by a 65536-entry lookup table (256 KiB, built once on first
    /// use from [`f16::to_f32_compute`]) — the LP_QT dequantize hot path is
    /// a single indexed load per value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        decode_table()[self.0 as usize]
    }

    /// Computational binary16 → f32 conversion (the reference the lookup
    /// table is built from).
    fn to_f32_compute(self) -> f32 {
        let h = self.0 as u32;
        let sign = (h & 0x8000) << 16;
        let exp = (h >> 10) & 0x1f;
        let frac = h & 0x3ff;

        let bits = if exp == 0x1f {
            // Inf / NaN
            sign | 0x7f80_0000 | (frac << 13)
        } else if exp == 0 {
            if frac == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = frac * 2^-24. Normalize so the leading
                // 1 sits at bit 10; if it started at position p the loop sets
                // e = p - 10 and the value is 2^(p-24), i.e. a biased f32
                // exponent of p + 103 = e + 113.
                let mut e = 0i32;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                f &= 0x3ff;
                sign | (((e + 113) as u32) << 23) | (f << 13)
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }

    /// True if this is a NaN bit pattern.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x3ff) != 0
    }
}

/// The bits → f32 table behind [`f16::to_f32`]: one entry per 16-bit pattern.
fn decode_table() -> &'static [f32; 1 << 16] {
    static TABLE: std::sync::OnceLock<Box<[f32; 1 << 16]>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0f32; 1 << 16].into_boxed_slice();
        for (bits, slot) in t.iter_mut().enumerate() {
            *slot = f16(bits as u16).to_f32_compute();
        }
        t.try_into().expect("table has 2^16 entries")
    })
}

/// Encode an f32 slice as packed little-endian binary16 bytes (LP_QT storage).
pub fn encode_f16(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&f16::from_f32(v).0.to_le_bytes());
    }
    out
}

/// Decode packed binary16 bytes back to f32 (with the precision loss already
/// baked in at encode time). Returns `None` if the length is odd.
pub fn decode_f16(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    let table = decode_table();
    Some(
        bytes
            .chunks_exact(2)
            .map(|c| table[u16::from_le_bytes([c[0], c[1]]) as usize])
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 0.25, -0.75, 1024.0] {
            assert_eq!(f16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn relative_error_bounded_in_normal_range() {
        // binary16 has 11 significand bits: relative error <= 2^-11.
        let mut state = 42u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = ((state >> 33) as f32 / (1u64 << 30) as f32 - 2.0) * 100.0;
            if v == 0.0 {
                continue;
            }
            let r = f16::from_f32(v).to_f32();
            let rel = ((r - v) / v).abs();
            assert!(rel <= 4.9e-4, "value {v} decoded {r} rel {rel}");
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f16::from_f32(1e6), f16::INFINITY);
        assert_eq!(f16::from_f32(-1e6), f16::NEG_INFINITY);
        assert_eq!(f16::from_f32(65504.0), f16::MAX);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn underflow_to_zero_and_subnormals() {
        assert_eq!(f16::from_f32(1e-10).to_f32(), 0.0);
        // Smallest positive subnormal: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16::from_f32(tiny).0, 1);
        assert_eq!(f16(1).to_f32(), tiny);
        // Smallest normal: 2^-14.
        let sn = 2.0f32.powi(-14);
        assert_eq!(f16::from_f32(sn).to_f32(), sn);
    }

    #[test]
    fn nan_preserved() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f16::from_f32(-0.0).0, 0x8000);
        assert!(f16(0x8000).to_f32().is_sign_negative());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties to even -> 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-16);
        assert_eq!(f16::from_f32(above).to_f32(), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn encode_decode_roundtrip_idempotent() {
        let values = vec![0.1f32, -3.7, 42.0, 0.0, 1e-3];
        let bytes = encode_f16(&values);
        assert_eq!(bytes.len(), values.len() * 2);
        let decoded = decode_f16(&bytes).unwrap();
        // Re-encoding decoded values is lossless (f16 values are f32-exact).
        assert_eq!(encode_f16(&decoded), bytes);
    }

    #[test]
    fn odd_length_rejected() {
        assert_eq!(decode_f16(&[1, 2, 3]), None);
    }

    #[test]
    fn lookup_table_matches_computed_conversion_for_all_patterns() {
        // The table-backed to_f32 must be bit-identical to the computational
        // conversion for every 16-bit pattern, NaNs included.
        for bits in 0..=0xffffu16 {
            let h = f16(bits);
            assert_eq!(
                h.to_f32().to_bits(),
                h.to_f32_compute().to_bits(),
                "bits {bits:#06x}"
            );
        }
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip_through_f32() {
        // Every finite f16 converts to f32 and back to the identical bits.
        for bits in 0..=0xffffu16 {
            let h = f16(bits);
            if h.is_nan() {
                continue;
            }
            let back = f16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }
}
