//! THRESHOLD_QT: percentile-threshold binarization (Sec 4.1).
//!
//! NetDissect-style techniques only ask whether an activation exceeds a high
//! percentile threshold `T_k` with `p(A_k(x) > T_k) = α`. Storing the
//! binarized map reduces storage by the full original width (32× for f32)
//! but is irreversible: "once a threshold has been picked, we cannot
//! binarize the data with respect to another threshold."

use mistique_linalg::stats::percentile;

/// A fitted threshold quantizer.
#[derive(Clone, Debug, PartialEq)]
pub struct ThresholdQuantizer {
    threshold: f32,
    /// The percentile the threshold was fitted at (e.g. 0.995), kept for metadata.
    percentile: f64,
}

impl ThresholdQuantizer {
    /// Fit by computing the `pct` percentile of a sample
    /// (NetDissect uses `1 - α` with `α = 0.005`, i.e. `pct = 0.995`).
    ///
    /// # Panics
    /// Panics if the sample is empty or `pct` is outside `[0, 1]`.
    pub fn fit(sample: &[f32], pct: f64) -> ThresholdQuantizer {
        assert!(
            !sample.is_empty(),
            "cannot fit a threshold on an empty sample"
        );
        assert!((0.0..=1.0).contains(&pct), "percentile must be in [0, 1]");
        let doubles: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        let threshold = percentile(&doubles, pct) as f32;
        ThresholdQuantizer {
            threshold,
            percentile: pct,
        }
    }

    /// Build directly from an explicit threshold value.
    pub fn with_threshold(threshold: f32) -> ThresholdQuantizer {
        ThresholdQuantizer {
            threshold,
            percentile: f64::NAN,
        }
    }

    /// The fitted threshold value.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Binarize: `v > threshold`.
    pub fn encode(&self, values: &[f32]) -> Vec<bool> {
        values.iter().map(|&v| v > self.threshold).collect()
    }

    /// Binarize and pack into a bit stream (one bit per value).
    pub fn encode_packed(&self, values: &[f32]) -> Vec<u8> {
        let codes: Vec<u8> = values.iter().map(|&v| (v > self.threshold) as u8).collect();
        crate::bitpack::pack(&codes, 1)
    }

    /// Unpack a bit stream into booleans. Returns `None` on truncation.
    pub fn decode_packed(packed: &[u8], count: usize) -> Option<Vec<bool>> {
        if packed.len() * 8 < count {
            return None;
        }
        // One byte is exactly eight booleans; the tail handles count % 8.
        let mut out = Vec::with_capacity(count);
        for &b in &packed[..count / 8] {
            for j in 0..8 {
                out.push((b >> j) & 1 != 0);
            }
        }
        for i in (count / 8) * 8..count {
            out.push((packed[i / 8] >> (i % 8)) & 1 != 0);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_at_high_percentile_marks_top_fraction() {
        let sample: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let q = ThresholdQuantizer::fit(&sample, 0.995);
        let bits = q.encode(&sample);
        let ones = bits.iter().filter(|&&b| b).count();
        // ~0.5% of values exceed the 99.5th percentile.
        assert!((40..=60).contains(&ones), "got {ones}");
    }

    #[test]
    fn explicit_threshold() {
        let q = ThresholdQuantizer::with_threshold(0.5);
        assert_eq!(q.encode(&[0.0, 0.5, 0.6]), vec![false, false, true]);
    }

    #[test]
    fn packed_roundtrip_and_size() {
        let sample: Vec<f32> = (0..1000).map(|i| (i % 10) as f32).collect();
        let q = ThresholdQuantizer::fit(&sample, 0.9);
        let packed = q.encode_packed(&sample);
        assert_eq!(packed.len(), 125); // 1000 bits = 32x smaller than f32
        let bits = ThresholdQuantizer::decode_packed(&packed, 1000).unwrap();
        assert_eq!(bits, q.encode(&sample));
    }

    #[test]
    fn truncated_packed_rejected() {
        assert_eq!(ThresholdQuantizer::decode_packed(&[0xff], 9), None);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        ThresholdQuantizer::fit(&[], 0.995);
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn bad_percentile_panics() {
        ThresholdQuantizer::fit(&[1.0], 1.5);
    }
}
