//! Activation quantization and summarization (MISTIQUE Sec 4.1).
//!
//! Diagnostic techniques care about *relative* activation values, so MISTIQUE
//! quantizes aggressively before storing:
//!
//! - [`half`]: IEEE-754 binary16 conversion, built from scratch — the engine
//!   behind **LP_QT** (lower-precision float storage, 2× reduction from f32).
//! - [`kbit`]: **KBIT_QT** — equi-depth quantile binning into `2^k` codes
//!   (k = 8 by default, 256 bins), plus reconstruction back to representative
//!   values. Sub-byte codes are bit-packed ([`bitpack`]).
//! - [`threshold`]: **THRESHOLD_QT** — binarize at a percentile threshold
//!   (e.g. NetDissect's top-0.5% rule), 32× reduction.
//! - [`pool`]: **POOL_QT** — σ×σ average or max pooling of 2-D activation
//!   maps; σ=2 is the paper's default, σ=S collapses each map to one value.
//! - [`scheme`]: the [`scheme::QuantScheme`] enum tying them together with a
//!   uniform encode/decode surface used by the DataStore.

pub mod bitpack;
pub mod half;
pub mod kbit;
pub mod pool;
pub mod scheme;
pub mod threshold;

pub use half::f16;
pub use kbit::KbitQuantizer;
pub use pool::{avg_pool2d, max_pool2d, PoolKind};
pub use scheme::{QuantScheme, QuantizedColumn};
pub use threshold::ThresholdQuantizer;
