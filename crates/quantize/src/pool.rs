//! POOL_QT: summarization of 2-D activation maps by pooling (Sec 4.1).
//!
//! Quantization shrinks each value; pooling shrinks the *number* of values.
//! POOL_QT applies an aggregation (average by default, or max) over σ×σ
//! windows of each activation map, reducing storage by S²/σ². σ=2 is the
//! paper's default; σ=S collapses a whole map to one value (pool(32) for
//! 32×32 CIFAR-scale maps).

/// The pooling aggregation to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Average pooling (the paper's default).
    Avg,
    /// Max pooling.
    Max,
}

/// Output dimensions of pooling an `h x w` map with window `sigma`
/// (ceiling division: partial edge windows are aggregated over fewer cells).
pub fn pooled_dims(h: usize, w: usize, sigma: usize) -> (usize, usize) {
    (h.div_ceil(sigma), w.div_ceil(sigma))
}

/// Average-pool a row-major `h x w` map with a σ×σ window.
///
/// # Panics
/// Panics if `map.len() != h * w` or `sigma == 0`.
pub fn avg_pool2d(map: &[f32], h: usize, w: usize, sigma: usize) -> Vec<f32> {
    pool2d(map, h, w, sigma, PoolKind::Avg)
}

/// Max-pool a row-major `h x w` map with a σ×σ window.
pub fn max_pool2d(map: &[f32], h: usize, w: usize, sigma: usize) -> Vec<f32> {
    pool2d(map, h, w, sigma, PoolKind::Max)
}

/// Pool a row-major `h x w` map with a σ×σ window and the given aggregation.
pub fn pool2d(map: &[f32], h: usize, w: usize, sigma: usize, kind: PoolKind) -> Vec<f32> {
    assert!(sigma > 0, "pool window must be positive");
    assert_eq!(map.len(), h * w, "map length does not match dimensions");
    let (oh, ow) = pooled_dims(h, w, sigma);
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            let y0 = oy * sigma;
            let x0 = ox * sigma;
            let y1 = (y0 + sigma).min(h);
            let x1 = (x0 + sigma).min(w);
            match kind {
                PoolKind::Avg => {
                    let mut sum = 0.0f32;
                    for y in y0..y1 {
                        for x in x0..x1 {
                            sum += map[y * w + x];
                        }
                    }
                    out.push(sum / ((y1 - y0) * (x1 - x0)) as f32);
                }
                PoolKind::Max => {
                    let mut m = f32::NEG_INFINITY;
                    for y in y0..y1 {
                        for x in x0..x1 {
                            m = m.max(map[y * w + x]);
                        }
                    }
                    out.push(m);
                }
            }
        }
    }
    out
}

/// Pool every channel of a flattened multi-channel activation tensor laid out
/// as `channels` consecutive row-major `h x w` maps (the per-example layout
/// DNN intermediates use). Returns the pooled tensor and per-channel dims.
pub fn pool_channels(
    data: &[f32],
    channels: usize,
    h: usize,
    w: usize,
    sigma: usize,
    kind: PoolKind,
) -> (Vec<f32>, (usize, usize)) {
    assert_eq!(data.len(), channels * h * w, "tensor length mismatch");
    let (oh, ow) = pooled_dims(h, w, sigma);
    let mut out = Vec::with_capacity(channels * oh * ow);
    for c in 0..channels {
        let map = &data[c * h * w..(c + 1) * h * w];
        out.extend(pool2d(map, h, w, sigma, kind));
    }
    (out, (oh, ow))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_2x2_on_4x4() {
        #[rustfmt::skip]
        let map = vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 10.0, 11.0, 12.0,
            13.0, 14.0, 15.0, 16.0,
        ];
        let pooled = avg_pool2d(&map, 4, 4, 2);
        assert_eq!(pooled, vec![3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn max_pool_2x2_on_4x4() {
        #[rustfmt::skip]
        let map = vec![
            1.0, 2.0, 3.0, 4.0,
            5.0, 6.0, 7.0, 8.0,
            9.0, 10.0, 11.0, 12.0,
            13.0, 14.0, 15.0, 16.0,
        ];
        let pooled = max_pool2d(&map, 4, 4, 2);
        assert_eq!(pooled, vec![6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn full_pool_collapses_to_mean() {
        let map: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let pooled = avg_pool2d(&map, 3, 3, 3);
        assert_eq!(pooled, vec![5.0]); // mean of 1..9
    }

    #[test]
    fn ragged_edges_use_partial_windows() {
        // 3x3 with sigma=2: windows are 2x2, 2x1, 1x2, 1x1.
        #[rustfmt::skip]
        let map = vec![
            1.0, 2.0, 3.0,
            4.0, 5.0, 6.0,
            7.0, 8.0, 9.0,
        ];
        let pooled = avg_pool2d(&map, 3, 3, 2);
        assert_eq!(pooled, vec![3.0, 4.5, 7.5, 9.0]);
        assert_eq!(pooled_dims(3, 3, 2), (2, 2));
    }

    #[test]
    fn storage_reduction_is_sigma_squared() {
        let map = vec![0.5f32; 32 * 32];
        assert_eq!(avg_pool2d(&map, 32, 32, 2).len(), 256); // 4x fewer
        assert_eq!(avg_pool2d(&map, 32, 32, 32).len(), 1); // 1024x fewer
    }

    #[test]
    fn sigma_one_is_identity() {
        let map = vec![1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(avg_pool2d(&map, 2, 2, 1), map);
        assert_eq!(max_pool2d(&map, 2, 2, 1), map);
    }

    #[test]
    fn multi_channel_pooling() {
        let data: Vec<f32> = (0..2 * 4).map(|i| i as f32).collect(); // 2 channels of 2x2
        let (pooled, dims) = pool_channels(&data, 2, 2, 2, 2, PoolKind::Avg);
        assert_eq!(dims, (1, 1));
        assert_eq!(pooled, vec![1.5, 5.5]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_dims_panic() {
        avg_pool2d(&[1.0, 2.0], 2, 2, 2);
    }
}
