//! KBIT_QT: k-bit quantile quantization of activations (Sec 4.1).
//!
//! Given a sample of activation values, compute `2^k` equi-depth bins from
//! quantiles; each activation is stored as its bin code. Reconstruction maps a
//! code back to the bin's representative value (the bin median of the sample),
//! which is the "reconstruction cost" the paper notes when reading 8BIT_QT
//! intermediates.

use mistique_linalg::stats::percentile_sorted;

use crate::bitpack;

/// A fitted k-bit quantizer: bin boundaries plus representative values.
#[derive(Clone, Debug, PartialEq)]
pub struct KbitQuantizer {
    bits: u32,
    /// `2^k - 1` ascending bin boundaries.
    boundaries: Vec<f32>,
    /// `2^k` representative values, one per bin.
    representatives: Vec<f32>,
}

impl KbitQuantizer {
    /// Fit a quantizer with `2^bits` bins on a sample of activations.
    ///
    /// The paper's default is `bits = 8` (256 quantiles).
    ///
    /// # Panics
    /// Panics if `bits` is 0 or > 8, or the sample is empty.
    pub fn fit(sample: &[f32], bits: u32) -> KbitQuantizer {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        assert!(
            !sample.is_empty(),
            "cannot fit a quantizer on an empty sample"
        );
        let mut sorted: Vec<f64> = sample.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n_bins = 1usize << bits;

        let boundaries: Vec<f32> = (1..n_bins)
            .map(|i| percentile_sorted(&sorted, i as f64 / n_bins as f64) as f32)
            .collect();
        // Representative = midpoint quantile of each bin.
        let representatives: Vec<f32> = (0..n_bins)
            .map(|i| percentile_sorted(&sorted, (i as f64 + 0.5) / n_bins as f64) as f32)
            .collect();
        KbitQuantizer {
            bits,
            boundaries,
            representatives,
        }
    }

    /// Number of bits per stored code.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The bin code for one value (binary search over boundaries).
    #[inline]
    pub fn code_of(&self, v: f32) -> u8 {
        // partition_point: first boundary >= v gives the bin index.
        self.boundaries.partition_point(|&b| b < v) as u8
    }

    /// The representative value for a code.
    #[inline]
    pub fn value_of(&self, code: u8) -> f32 {
        self.representatives[code as usize]
    }

    /// Quantize values to raw (unpacked) codes.
    pub fn encode_codes(&self, values: &[f32]) -> Vec<u8> {
        values.iter().map(|&v| self.code_of(v)).collect()
    }

    /// Quantize and bit-pack values into the storage representation.
    pub fn encode(&self, values: &[f32]) -> Vec<u8> {
        bitpack::pack(&self.encode_codes(values), self.bits)
    }

    /// Reconstruct `count` values from a bit-packed code stream.
    /// Returns `None` on truncated input.
    pub fn decode(&self, packed: &[u8], count: usize) -> Option<Vec<f32>> {
        let codes = bitpack::unpack(packed, self.bits, count)?;
        let reps = self.representatives.as_slice();
        Some(codes.into_iter().map(|c| reps[c as usize]).collect())
    }

    /// Serialize the fitted quantizer (needed to decode chunks later).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.representatives.len() * 8);
        out.push(self.bits as u8);
        for b in &self.boundaries {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for r in &self.representatives {
            out.extend_from_slice(&r.to_le_bytes());
        }
        out
    }

    /// Inverse of [`KbitQuantizer::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<KbitQuantizer> {
        let bits = *bytes.first()? as u32;
        if !(1..=8).contains(&bits) {
            return None;
        }
        let n_bins = 1usize << bits;
        let need = 1 + (n_bins - 1) * 4 + n_bins * 4;
        if bytes.len() != need {
            return None;
        }
        let mut pos = 1;
        let mut read = |n: usize| {
            let vals: Vec<f32> = bytes[pos..pos + n * 4]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            pos += n * 4;
            vals
        };
        let boundaries = read(n_bins - 1);
        let representatives = read(n_bins);
        Some(KbitQuantizer {
            bits,
            boundaries,
            representatives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sample(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 / n as f32).collect()
    }

    #[test]
    fn eight_bit_error_bounded_on_uniform_data() {
        let sample = uniform_sample(100_000);
        let q = KbitQuantizer::fit(&sample, 8);
        let packed = q.encode(&sample);
        let decoded = q.decode(&packed, sample.len()).unwrap();
        // 256 equi-depth bins on uniform [0,1): max error about 1/512.
        for (orig, dec) in sample.iter().zip(&decoded) {
            assert!((orig - dec).abs() < 1.0 / 256.0, "{orig} vs {dec}");
        }
    }

    #[test]
    fn codes_monotone_in_value() {
        let sample = uniform_sample(1000);
        let q = KbitQuantizer::fit(&sample, 4);
        assert!(q.code_of(0.1) <= q.code_of(0.5));
        assert!(q.code_of(0.5) <= q.code_of(0.9));
        assert_eq!(q.code_of(f32::NEG_INFINITY), 0);
        assert_eq!(q.code_of(f32::INFINITY), 15);
    }

    #[test]
    fn skewed_distribution_gets_equi_depth_bins() {
        // 90% zeros (ReLU-style sparsity), 10% spread: most bins cover the tail.
        let mut sample = vec![0.0f32; 9000];
        sample.extend((0..1000).map(|i| 1.0 + i as f32 / 100.0));
        let q = KbitQuantizer::fit(&sample, 8);
        // Zeros all land in one code; the decoded value for zero is ~0.
        let code0 = q.code_of(0.0);
        assert!((q.value_of(code0) - 0.0).abs() < 1e-6);
        // Tail values get fine resolution.
        let v = 5.37f32;
        let dec = q.value_of(q.code_of(v));
        assert!((dec - v).abs() < 0.5, "decoded {dec}");
    }

    #[test]
    fn one_bit_quantizer_is_a_median_split() {
        let sample = uniform_sample(10_000);
        let q = KbitQuantizer::fit(&sample, 1);
        assert_eq!(q.code_of(0.1), 0);
        assert_eq!(q.code_of(0.9), 1);
        let packed = q.encode(&sample);
        // 10_000 one-bit codes = 1250 bytes: a 32x reduction vs f32.
        assert_eq!(packed.len(), 1250);
    }

    #[test]
    fn storage_reduction_factors() {
        let sample = uniform_sample(4096);
        let raw = sample.len() * 4;
        let q8 = KbitQuantizer::fit(&sample, 8);
        assert_eq!(q8.encode(&sample).len() * 4, raw); // 4x vs f32
        let q3 = KbitQuantizer::fit(&sample, 3);
        let packed3 = q3.encode(&sample).len();
        assert!(packed3 <= raw / 10, "3-bit packed {packed3} of raw {raw}");
    }

    #[test]
    fn serialization_roundtrip() {
        let sample = uniform_sample(5000);
        let q = KbitQuantizer::fit(&sample, 5);
        let back = KbitQuantizer::from_bytes(&q.to_bytes()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert_eq!(KbitQuantizer::from_bytes(&[]), None);
        assert_eq!(KbitQuantizer::from_bytes(&[0]), None);
        assert_eq!(KbitQuantizer::from_bytes(&[9, 1, 2, 3]), None);
        assert_eq!(KbitQuantizer::from_bytes(&[2, 0, 0]), None); // wrong length
    }

    #[test]
    fn quantize_idempotent_on_representatives() {
        let sample = uniform_sample(1000);
        let q = KbitQuantizer::fit(&sample, 6);
        for code in 0..64u8 {
            let v = q.value_of(code);
            // Re-encoding a representative lands in a bin whose representative
            // is the same value (quantization is a projection).
            assert_eq!(q.value_of(q.code_of(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        KbitQuantizer::fit(&[], 8);
    }
}
