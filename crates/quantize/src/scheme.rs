//! A uniform encode/decode surface over the quantization schemes, used by the
//! DataStore when materializing DNN intermediates.

use crate::half::{decode_f16, encode_f16};
use crate::kbit::KbitQuantizer;
use crate::threshold::ThresholdQuantizer;

/// Which value quantization to apply when storing a column of activations.
///
/// Pooling (POOL_QT) is a *summarization* — it changes the number of values
/// and is applied when the intermediate is captured (see `mistique_quantize::pool`);
/// the schemes here change only the per-value representation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantScheme {
    /// Full precision f32 (no quantization).
    Full,
    /// LP_QT: lower-precision half floats (2x reduction vs f32).
    Lp,
    /// KBIT_QT: `2^bits` quantile bins fitted on the data (paper default: 8).
    Kbit {
        /// Bits per code, 1..=8.
        bits: u32,
    },
    /// THRESHOLD_QT: binarize at the given percentile of the data (e.g. 0.995).
    Threshold {
        /// Percentile in [0, 1] at which to place the threshold.
        pct: f64,
    },
}

impl QuantScheme {
    /// Short scheme name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            QuantScheme::Full => "FULL".to_string(),
            QuantScheme::Lp => "LP_QT".to_string(),
            QuantScheme::Kbit { bits } => format!("{bits}BIT_QT"),
            QuantScheme::Threshold { .. } => "THRESHOLD_QT".to_string(),
        }
    }

    /// Encode a column of activations under this scheme. Data-dependent
    /// schemes (KBIT, THRESHOLD) fit their parameters on `values` itself,
    /// mirroring the paper's "first collect samples of activations to build
    /// a distribution" implementation note.
    pub fn encode(&self, values: &[f32]) -> QuantizedColumn {
        let count = values.len();
        match *self {
            QuantScheme::Full => {
                let mut bytes = Vec::with_capacity(count * 4);
                for v in values {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                QuantizedColumn {
                    payload: Payload::Full(bytes),
                    count,
                }
            }
            QuantScheme::Lp => QuantizedColumn {
                payload: Payload::Lp(encode_f16(values)),
                count,
            },
            QuantScheme::Kbit { bits } => {
                let q = if values.is_empty() {
                    KbitQuantizer::fit(&[0.0], bits)
                } else {
                    KbitQuantizer::fit(values, bits)
                };
                let packed = q.encode(values);
                QuantizedColumn {
                    payload: Payload::Kbit {
                        quantizer: q,
                        packed,
                    },
                    count,
                }
            }
            QuantScheme::Threshold { pct } => {
                let q = if values.is_empty() {
                    ThresholdQuantizer::with_threshold(0.0)
                } else {
                    ThresholdQuantizer::fit(values, pct)
                };
                let packed = q.encode_packed(values);
                QuantizedColumn {
                    payload: Payload::Threshold {
                        threshold: q.threshold(),
                        packed,
                    },
                    count,
                }
            }
        }
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Payload {
    Full(Vec<u8>),
    Lp(Vec<u8>),
    Kbit {
        quantizer: KbitQuantizer,
        packed: Vec<u8>,
    },
    Threshold {
        threshold: f32,
        packed: Vec<u8>,
    },
}

/// An encoded column: the storage bytes plus whatever metadata decoding needs.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedColumn {
    payload: Payload,
    count: usize,
}

impl QuantizedColumn {
    /// Number of values.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no values are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes this column occupies in storage (data + scheme metadata).
    pub fn storage_bytes(&self) -> usize {
        match &self.payload {
            Payload::Full(b) | Payload::Lp(b) => b.len(),
            Payload::Kbit { quantizer, packed } => packed.len() + quantizer.to_bytes().len(),
            Payload::Threshold { packed, .. } => packed.len() + 4,
        }
    }

    /// Reconstruct f32 values. This is where KBIT_QT pays its
    /// "reconstruction cost" (code → representative lookup); THRESHOLD_QT
    /// reconstructs 0.0/1.0 indicator values.
    pub fn decode(&self) -> Vec<f32> {
        match &self.payload {
            Payload::Full(bytes) => bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
            Payload::Lp(bytes) => decode_f16(bytes).expect("valid f16 payload"),
            Payload::Kbit { quantizer, packed } => quantizer
                .decode(packed, self.count)
                .expect("valid kbit payload"),
            Payload::Threshold { packed, .. } => {
                ThresholdQuantizer::decode_packed(packed, self.count)
                    .expect("valid threshold payload")
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<f32> {
        (0..5000)
            .map(|i| ((i * 37) % 1000) as f32 / 100.0)
            .collect()
    }

    #[test]
    fn full_scheme_is_lossless() {
        let v = sample();
        let q = QuantScheme::Full.encode(&v);
        assert_eq!(q.decode(), v);
        assert_eq!(q.storage_bytes(), v.len() * 4);
    }

    #[test]
    fn lp_scheme_halves_storage() {
        let v = sample();
        let q = QuantScheme::Lp.encode(&v);
        assert_eq!(q.storage_bytes(), v.len() * 2);
        for (a, b) in v.iter().zip(q.decode()) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-3);
        }
    }

    #[test]
    fn kbit8_quarters_storage() {
        let v = sample();
        let q = QuantScheme::Kbit { bits: 8 }.encode(&v);
        // codes = n bytes, plus quantizer table overhead (amortized, fixed).
        assert!(q.storage_bytes() < v.len() + 3000);
        let dec = q.decode();
        // Equi-depth 256 bins on ~uniform data: small error.
        for (a, b) in v.iter().zip(&dec) {
            assert!((a - b).abs() < 0.1, "{a} vs {b}");
        }
    }

    #[test]
    fn threshold_scheme_binarizes() {
        let v = sample();
        let q = QuantScheme::Threshold { pct: 0.9 }.encode(&v);
        let dec = q.decode();
        assert!(dec.iter().all(|&x| x == 0.0 || x == 1.0));
        let ones = dec.iter().filter(|&&x| x == 1.0).count();
        assert!((ones as f64 / v.len() as f64) < 0.15);
    }

    #[test]
    fn empty_input_all_schemes() {
        for scheme in [
            QuantScheme::Full,
            QuantScheme::Lp,
            QuantScheme::Kbit { bits: 8 },
            QuantScheme::Threshold { pct: 0.995 },
        ] {
            let q = scheme.encode(&[]);
            assert!(q.is_empty());
            assert!(q.decode().is_empty());
        }
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(QuantScheme::Lp.name(), "LP_QT");
        assert_eq!(QuantScheme::Kbit { bits: 8 }.name(), "8BIT_QT");
        assert_eq!(QuantScheme::Kbit { bits: 3 }.name(), "3BIT_QT");
        assert_eq!(QuantScheme::Threshold { pct: 0.995 }.name(), "THRESHOLD_QT");
    }
}
