//! Bit-packing for sub-byte quantization codes.
//!
//! KBIT_QT with k < 8 produces codes in `[0, 2^k)`; packing them `8/k` to a
//! byte realizes the full `o/k` storage reduction the paper claims
//! (e.g. k=3 on f32 input: 32/3 ≈ 10.7×).

/// Pack `codes` (each `< 2^bits`) into a dense little-endian bit stream.
///
/// # Panics
/// Panics if `bits` is 0 or > 8, or a code does not fit.
pub fn pack(codes: &[u8], bits: u32) -> Vec<u8> {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let mask = if bits == 8 {
        0xff
    } else {
        (1u16 << bits) as u8 - 1
    };
    let mut out = vec![0u8; (codes.len() * bits as usize).div_ceil(8)];
    for (i, &c) in codes.iter().enumerate() {
        assert!(c <= mask, "code {c} does not fit in {bits} bits");
        let bitpos = i * bits as usize;
        let byte = bitpos / 8;
        let off = (bitpos % 8) as u32;
        out[byte] |= c << off;
        if off + bits > 8 {
            out[byte + 1] |= c >> (8 - off);
        }
    }
    out
}

/// Unpack `count` codes of width `bits` from a stream produced by [`pack`].
/// Returns `None` if the buffer is too short.
///
/// Eight codes of any width occupy exactly `bits` bytes starting on a byte
/// boundary, so the hot loop loads one little-endian u64 window per group of
/// eight and extracts all eight codes by shift-and-mask — no per-code byte
/// addressing or straddle branch.
pub fn unpack(packed: &[u8], bits: u32, count: usize) -> Option<Vec<u8>> {
    assert!((1..=8).contains(&bits), "bits must be in 1..=8");
    let width = bits as usize;
    if packed.len() * 8 < count * width {
        return None;
    }
    let mask = if bits == 8 { 0xff } else { (1u64 << bits) - 1 };
    let mut out = Vec::with_capacity(count);
    let groups = count / 8;
    for g in 0..groups {
        let base = g * width;
        let w = if base + 8 <= packed.len() {
            u64::from_le_bytes(packed[base..base + 8].try_into().unwrap())
        } else {
            // Final group of a tight buffer: widen the `width` live bytes.
            let mut buf = [0u8; 8];
            buf[..width].copy_from_slice(&packed[base..base + width]);
            u64::from_le_bytes(buf)
        };
        for j in 0..8 {
            out.push(((w >> (j * width)) & mask) as u8);
        }
    }
    for i in groups * 8..count {
        let bitpos = i * width;
        let byte = bitpos / 8;
        let off = (bitpos % 8) as u32;
        let mut v = (packed[byte] >> off) as u16;
        if off + bits > 8 {
            v |= (packed[byte + 1] as u16) << (8 - off);
        }
        out.push((v as u64 & mask) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        for bits in 1..=8u32 {
            let max = if bits == 8 { 255 } else { (1 << bits) - 1 };
            let codes: Vec<u8> = (0..1000).map(|i| (i % (max as usize + 1)) as u8).collect();
            let packed = pack(&codes, bits);
            assert_eq!(unpack(&packed, bits, codes.len()), Some(codes));
        }
    }

    #[test]
    fn packed_size_is_minimal() {
        let codes = vec![1u8; 100];
        assert_eq!(pack(&codes, 1).len(), 13); // 100 bits -> 13 bytes
        assert_eq!(pack(&codes, 3).len(), 38); // 300 bits -> 38 bytes
        assert_eq!(pack(&codes, 8).len(), 100);
    }

    #[test]
    fn empty_input() {
        assert!(pack(&[], 4).is_empty());
        assert_eq!(unpack(&[], 4, 0), Some(vec![]));
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(unpack(&[0xff], 8, 2), None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_panics() {
        pack(&[8], 3);
    }

    #[test]
    fn cross_byte_boundary_codes() {
        // 3-bit codes straddle byte boundaries at positions 2, 5, ...
        let codes = vec![0b101, 0b011, 0b110, 0b001, 0b111];
        let packed = pack(&codes, 3);
        assert_eq!(unpack(&packed, 3, 5), Some(codes));
    }
}
