//! Model tests for the slab-backed LRU primitives.
//!
//! [`LruList`] and [`LruCache`] are checked against naive `VecDeque`
//! reference models under long randomized op sequences: contents, recency
//! order, `used_bytes`, and the exact evicted-entry lists must all agree.
//! The slab + free-list node reuse in `LruList` is precisely the kind of
//! code where a stale index corrupts order silently — the model catches it.
//!
//! Deterministic by construction (fixed LCG seeds), no proptest needed.

use std::collections::VecDeque;

use mistique_store::{LruCache, LruList};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Reference recency order: front = LRU, back = MRU. Every op is O(n) —
/// obviously correct, nothing shared with the slab implementation.
#[derive(Default)]
struct ListModel {
    order: VecDeque<u32>,
}

impl ListModel {
    fn touch(&mut self, k: u32) {
        self.order.retain(|&x| x != k);
        self.order.push_back(k);
    }

    fn remove(&mut self, k: u32) -> bool {
        let before = self.order.len();
        self.order.retain(|&x| x != k);
        before != self.order.len()
    }

    fn pop_lru(&mut self) -> Option<u32> {
        self.order.pop_front()
    }

    fn peek_lru_excluding(&self, keep: Option<u32>) -> Option<u32> {
        self.order.iter().copied().find(|&k| Some(k) != keep)
    }

    fn contains(&self, k: u32) -> bool {
        self.order.contains(&k)
    }
}

#[test]
fn lru_list_matches_vecdeque_model() {
    for seed in [1u64, 42, 1234, 987_654_321] {
        let mut real: LruList<u32> = LruList::new();
        let mut model = ListModel::default();
        let mut rng = Lcg(seed);
        for step in 0..5000 {
            // A small key space forces constant re-touching, slab slot
            // reuse, and empty/singleton edge states.
            let key = rng.below(24) as u32;
            match rng.below(100) {
                0..=44 => {
                    real.touch(key);
                    model.touch(key);
                }
                45..=64 => {
                    assert_eq!(
                        real.remove(&key),
                        model.remove(key),
                        "seed {seed} step {step}: remove({key}) presence"
                    );
                }
                65..=84 => {
                    assert_eq!(
                        real.pop_lru(),
                        model.pop_lru(),
                        "seed {seed} step {step}: pop_lru order"
                    );
                }
                85..=97 => {
                    let keep = if rng.below(2) == 0 { Some(key) } else { None };
                    assert_eq!(
                        real.peek_lru_excluding(keep.as_ref()).copied(),
                        model.peek_lru_excluding(keep),
                        "seed {seed} step {step}: peek_lru_excluding({keep:?})"
                    );
                }
                _ => {
                    real.clear();
                    model.order.clear();
                }
            }
            assert_eq!(real.len(), model.order.len(), "seed {seed} step {step}");
            assert_eq!(real.contains(&key), model.contains(key));
            assert_eq!(real.is_empty(), model.order.is_empty());
        }
        // Drain both: the full recency order must match element-for-element.
        while let Some(expected) = model.pop_lru() {
            assert_eq!(real.pop_lru(), Some(expected), "seed {seed}: drain order");
        }
        assert_eq!(real.pop_lru(), None);
        assert!(real.is_empty());
    }
}

/// Reference cache: front = LRU. Mirrors the documented `LruCache`
/// contract, including the oversized-entry and replace-existing rules.
struct CacheModel {
    order: VecDeque<(u32, u64, usize)>,
    capacity: usize,
}

impl CacheModel {
    fn used_bytes(&self) -> usize {
        self.order.iter().map(|e| e.2).sum()
    }

    fn insert(&mut self, k: u32, v: u64, bytes: usize) -> Vec<(u32, u64)> {
        // Oversized entries are rejected — and still displace any stale
        // value cached under the same key.
        self.remove(k);
        if bytes > self.capacity {
            return Vec::new();
        }
        let mut evicted = Vec::new();
        while self.used_bytes() + bytes > self.capacity {
            match self.order.pop_front() {
                Some((vk, vv, _)) => evicted.push((vk, vv)),
                None => break,
            }
        }
        self.order.push_back((k, v, bytes));
        evicted
    }

    fn get(&mut self, k: u32) -> Option<u64> {
        let pos = self.order.iter().position(|e| e.0 == k)?;
        let entry = self.order.remove(pos).expect("position just found");
        self.order.push_back(entry);
        Some(entry.1)
    }

    fn peek(&self, k: u32) -> Option<u64> {
        self.order.iter().find(|e| e.0 == k).map(|e| e.1)
    }

    fn remove(&mut self, k: u32) -> Option<u64> {
        let pos = self.order.iter().position(|e| e.0 == k)?;
        self.order.remove(pos).map(|e| e.1)
    }
}

#[test]
fn lru_cache_matches_vecdeque_model() {
    const CAP: usize = 256;
    for seed in [7u64, 99, 4242, 31337] {
        let mut real: LruCache<u32, u64> = LruCache::new(CAP);
        let mut model = CacheModel {
            order: VecDeque::new(),
            capacity: CAP,
        };
        let mut rng = Lcg(seed);
        for step in 0..4000 {
            let key = rng.below(16) as u32;
            match rng.below(100) {
                0..=49 => {
                    // Mostly fitting sizes (including zero), occasionally an
                    // oversized entry that must be rejected.
                    let bytes = if rng.below(12) == 0 {
                        CAP + 1 + rng.below(64) as usize
                    } else {
                        rng.below(CAP as u64 / 3 + 1) as usize
                    };
                    let value = rng.next();
                    assert_eq!(
                        real.insert(key, value, bytes),
                        model.insert(key, value, bytes),
                        "seed {seed} step {step}: evicted list for insert({key}, {bytes}B)"
                    );
                }
                50..=69 => {
                    assert_eq!(
                        real.get(&key).copied(),
                        model.get(key),
                        "seed {seed} step {step}: get({key})"
                    );
                }
                70..=84 => {
                    assert_eq!(
                        real.peek(&key).copied(),
                        model.peek(key),
                        "seed {seed} step {step}: peek({key})"
                    );
                }
                85..=97 => {
                    assert_eq!(
                        real.remove(&key),
                        model.remove(key),
                        "seed {seed} step {step}: remove({key})"
                    );
                }
                _ => {
                    real.clear();
                    model.order.clear();
                }
            }
            assert_eq!(real.len(), model.order.len(), "seed {seed} step {step}");
            assert_eq!(
                real.used_bytes(),
                model.used_bytes(),
                "seed {seed} step {step}: used_bytes"
            );
            assert!(
                real.used_bytes() <= real.capacity_bytes(),
                "seed {seed} step {step}: budget exceeded"
            );
            assert_eq!(real.is_empty(), model.order.is_empty());
        }
        // A full-budget insert flushes every other entry one victim at a
        // time — the evicted list is the complete recency order, LRU first.
        assert_eq!(
            real.insert(999, 0, CAP),
            model.insert(999, 0, CAP),
            "seed {seed}: final flush order"
        );
        assert_eq!(real.len(), 1);
        assert_eq!(real.used_bytes(), CAP);
    }
}

/// Overwrite-heavy accounting: re-inserting a key must charge the new size
/// and refund the old one exactly — `used_bytes` is always the sum of the
/// *current* entry sizes, never a running total of historical inserts.
#[test]
fn overwrites_replace_accounting_exactly() {
    const CAP: usize = 1 << 16;
    let mut real: LruCache<u32, u64> = LruCache::new(CAP);
    let mut rng = Lcg(555);
    let mut sizes = [0usize; 8];
    let mut present = [false; 8];

    // Phase 1: churn 8 keys through growing and shrinking sizes without
    // ever approaching capacity, so no eviction can mask a leak.
    for step in 0..2000 {
        let key = rng.below(8) as u32;
        let bytes = rng.below(1000) as usize;
        let evicted = real.insert(key, rng.next(), bytes);
        assert!(evicted.is_empty(), "step {step}: spurious eviction");
        sizes[key as usize] = bytes;
        present[key as usize] = true;
        let expected: usize = sizes
            .iter()
            .zip(&present)
            .filter(|(_, &p)| p)
            .map(|(s, _)| s)
            .sum();
        assert_eq!(real.used_bytes(), expected, "step {step}: accounting drift");
    }

    // Phase 2: shrink every entry to one byte. A correct refund leaves
    // room for a capacity-minus-eight insert with zero evictions; a
    // leaked charge forces spurious victims.
    for k in 0..8u32 {
        real.insert(k, 0, 1);
        sizes[k as usize] = 1;
    }
    assert_eq!(real.used_bytes(), 8);
    let evicted = real.insert(100, 0, CAP - 8);
    assert!(
        evicted.is_empty(),
        "shrinking overwrites must refund their old bytes"
    );
    assert_eq!(real.used_bytes(), CAP);

    // Phase 3: growing one entry past the remaining budget evicts in
    // recency order, and the books still balance afterwards.
    let evicted = real.insert(0, 0, 9);
    assert!(!evicted.is_empty(), "growth past budget must evict");
    let survivors: usize = (0..8u32)
        .filter(|k| real.contains(k))
        .map(|k| if k == 0 { 9 } else { 1 })
        .sum::<usize>()
        + if real.contains(&100) { CAP - 8 } else { 0 };
    assert_eq!(real.used_bytes(), survivors);
    assert!(real.used_bytes() <= real.capacity_bytes());
}

#[test]
fn oversized_insert_also_drops_the_existing_entry() {
    let mut c: LruCache<u32, ()> = LruCache::new(100);
    c.insert(1, (), 40);
    c.insert(2, (), 40);
    let evicted = c.insert(1, (), 1000);
    assert!(evicted.is_empty(), "rejection evicts nothing");
    assert!(
        !c.contains(&1),
        "stale value must not survive an oversized replace"
    );
    assert!(c.contains(&2), "unrelated entries survive");
    assert_eq!(c.used_bytes(), 40);
}
