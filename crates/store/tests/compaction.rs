//! Compaction crash-safety: enumerate a simulated power cut at **every**
//! backend syscall of a compaction pass and assert each partition file is
//! always left in exactly its pre- or post-compaction state — a live chunk
//! is never lost, a file is never torn.
//!
//! The workload mirrors the reclaim path's discipline: chunk references are
//! retracted *and the catalog exported* before compaction runs, so the
//! catalog used after the simulated restart never references a chunk that
//! compaction may have dropped.

use std::sync::Arc;

use mistique_dataframe::{ColumnChunk, ColumnData};
use mistique_store::datastore::StoreCatalog;
use mistique_store::{
    ChunkKey, DataStore, DataStoreConfig, FaultyFs, PlacementPolicy, StoreError, TornWrite,
};

const POLICIES: [TornWrite; 3] = [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll];

fn store_config() -> DataStoreConfig {
    DataStoreConfig {
        policy: PlacementPolicy::ByIntermediate,
        mem_capacity: 1 << 20,
        // Large enough that each intermediate's four chunks share one
        // partition (sealed by flush, not by the size trigger).
        partition_target_bytes: 8192,
        // Keep chunks raw so retracting `m.i0` makes its partition fully
        // dead: a delta put would pin one of its chunks as a base and turn
        // the remove path into a rewrite. Crash points with delta frames and
        // pinned bases in play are enumerated in `tests/delta_crash.rs` of
        // the core crate.
        delta_enabled: false,
        ..DataStoreConfig::default()
    }
}

fn chunk(seed: u64) -> ColumnChunk {
    let vals: Vec<f64> = (0..40)
        .map(|i| ((seed.wrapping_mul(131).wrapping_add(i)) % 251) as f64 * 0.25)
        .collect();
    ColumnChunk::new(ColumnData::F64(vals))
}

/// Build the pre-compaction state on `ds`:
/// - `m.i0`..`m.i2`, four blocks each, one partition per intermediate;
/// - `m.i0` fully retracted (its partition becomes 100% dead);
/// - `m.i1` block 0 overwritten (its old partition becomes 75% live).
///
/// Returns the catalog exported *after* retraction (what a crash-safe
/// reclaim persists before compacting) and the expected live reads.
fn build_pre_compaction_state(
    ds: &mut DataStore,
) -> Result<(StoreCatalog, Vec<(ChunkKey, ColumnChunk)>), StoreError> {
    for interm in 0..3u64 {
        for block in 0..4u32 {
            ds.put_chunk(
                ChunkKey::new(format!("m.i{interm}"), "c", block),
                &chunk(interm * 10 + block as u64),
            )?;
        }
    }
    ds.flush()?;
    ds.retract_intermediate("m.i0");
    let replacement = chunk(777);
    ds.put_chunk(ChunkKey::new("m.i1", "c", 0), &replacement)?;
    ds.flush()?;

    let mut live = vec![(ChunkKey::new("m.i1", "c", 0), replacement)];
    for block in 1..4u32 {
        live.push((ChunkKey::new("m.i1", "c", block), chunk(10 + block as u64)));
    }
    for block in 0..4u32 {
        live.push((ChunkKey::new("m.i2", "c", block), chunk(20 + block as u64)));
    }
    Ok((ds.export_catalog(), live))
}

#[test]
fn every_compaction_crash_point_leaves_pre_or_post_state() {
    // Golden run: how many syscalls the pre-compaction workload and the
    // compaction pass each take (placement is deterministic).
    let (golden_catalog, golden_live, pre_ops, total_ops) = {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let (catalog, live) = build_pre_compaction_state(&mut ds).unwrap();
        let pre_ops = fs.op_count();
        let report = ds.compact(1.0).unwrap();
        assert_eq!(report.partitions_removed, 1, "m.i0's partition deleted");
        assert_eq!(report.partitions_rewritten, 1, "m.i1's partition rewritten");
        assert!(report.bytes_reclaimed > 0);
        (catalog, live, pre_ops, fs.op_count())
    };
    assert!(total_ops > pre_ops + 2, "compaction must exercise the disk");

    for k in (pre_ops + 1)..=total_ops {
        for policy in POLICIES {
            let fs = FaultyFs::new();
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            let (_, _) = build_pre_compaction_state(&mut ds).unwrap();
            fs.crash_after(k);
            let r = ds.compact(1.0);
            assert!(r.is_err(), "crash at op {k} must surface as an error");
            assert!(fs.has_crashed());
            drop(ds);
            fs.power_cut(policy);

            // "Restart": fresh store over the same disk, the post-retraction
            // catalog restored (stands in for the persisted manifest).
            let mut ds =
                DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
            ds.import_catalog(golden_catalog.clone());
            let report = ds.recover().unwrap();
            assert_eq!(
                report.quarantined, 0,
                "crash at op {k} ({policy:?}) left a torn partition"
            );
            assert!(
                !fs.visible_files()
                    .iter()
                    .any(|p| p.to_string_lossy().ends_with(".tmp")),
                "recovery must remove every orphan (crash at {k}, {policy:?})"
            );

            // The invariant: live chunks survive every crash point. Each
            // partition file is pre- or post-compaction — both states hold
            // every live chunk — so reads must succeed bit-identically.
            for (key, expected) in &golden_live {
                let got = ds.get_chunk(key).unwrap_or_else(|e| {
                    panic!("crash at {k} ({policy:?}): live chunk {key:?} lost: {e}")
                });
                assert_eq!(&got, expected, "crash at {k} ({policy:?}): torn read");
            }
            // Retracted chunks are gone from the catalog: clean NotFound.
            for block in 0..4u32 {
                assert!(matches!(
                    ds.get_chunk(&ChunkKey::new("m.i0", "c", block)),
                    Err(StoreError::NotFound)
                ));
            }

            // Re-running compaction from the recovered state finishes the
            // job: no dead bytes remain and live chunks still read.
            ds.compact(1.0).unwrap();
            assert_eq!(ds.dead_bytes(), 0, "crash at {k} ({policy:?})");
            ds.clear_read_cache();
            for (key, expected) in &golden_live {
                assert_eq!(&ds.get_chunk(key).unwrap(), expected);
            }
        }
    }
}

#[test]
fn completed_compaction_is_durable_under_power_cut() {
    for policy in POLICIES {
        let fs = FaultyFs::new();
        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        let (_, live) = build_pre_compaction_state(&mut ds).unwrap();
        ds.compact(1.0).unwrap();
        let catalog = ds.export_catalog();
        drop(ds);
        fs.power_cut(policy);

        let mut ds =
            DataStore::open_with_backend("/vfs", store_config(), Arc::new(fs.clone())).unwrap();
        ds.import_catalog(catalog);
        let report = ds.recover().unwrap();
        assert_eq!(report.quarantined, 0, "{policy:?}");
        assert_eq!(report.missing, 0, "completed compaction is durable");
        assert_eq!(ds.dead_bytes(), 0, "{policy:?}");
        for (key, expected) in &live {
            assert_eq!(&ds.get_chunk(key).unwrap(), expected, "{policy:?}");
        }
    }
}
