//! Storage-backend adapter for the secondary-index files.
//!
//! `mistique-index` structures (zone maps + max-activation lists) persist
//! through this adapter so every byte goes through the same
//! [`StorageBackend`] — and therefore the same fault-injection harness — as
//! partition data. Index files live in their own `index/` subdirectory
//! under the store directory; `list_dir` only reports direct-children
//! files, so the data store's sweep, quarantine, and budget accounting
//! never see them. A torn or garbage index file can therefore never
//! quarantine a data partition: the worst outcome is a scan.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::StorageBackend;

/// Subdirectory of the store directory that holds index files.
pub const INDEX_SUBDIR: &str = "index";

/// Index-file I/O over a [`StorageBackend`], rooted at `<store dir>/index/`.
#[derive(Debug, Clone)]
pub struct IndexDir {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
}

impl IndexDir {
    /// Create the adapter (and the `index/` subdirectory) under `store_dir`,
    /// and sweep any `.tmp` orphans a crash mid-`write_atomic` left behind.
    pub fn create(backend: Arc<dyn StorageBackend>, store_dir: &Path) -> io::Result<IndexDir> {
        let dir = store_dir.join(INDEX_SUBDIR);
        backend.create_dir_all(&dir)?;
        let io = IndexDir { backend, dir };
        for name in io.list()? {
            if name.ends_with(".tmp") {
                io.remove(&name)?;
            }
        }
        Ok(io)
    }

    /// The adapter without creating the directory — for read-only access to
    /// an index tree that may not exist (listing a missing directory
    /// reports no files).
    pub fn open_readonly(backend: Arc<dyn StorageBackend>, store_dir: &Path) -> IndexDir {
        IndexDir {
            backend,
            dir: store_dir.join(INDEX_SUBDIR),
        }
    }

    /// The directory index files are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File names (not paths) present in the index directory.
    pub fn list(&self) -> io::Result<Vec<String>> {
        if !self.backend.exists(&self.dir) {
            return Ok(Vec::new());
        }
        Ok(self
            .backend
            .list_dir(&self.dir)?
            .into_iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect())
    }

    /// Read one index file.
    pub fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.backend.read_file(&self.dir.join(name))
    }

    /// Whether an index file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.backend.exists(&self.dir.join(name))
    }

    /// Crash-safe whole-file write (tmp + fsync + rename + dir fsync).
    pub fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.backend.write_atomic(&self.dir.join(name), bytes)
    }

    /// Remove one index file and make the removal durable.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        self.backend.remove_file(&self.dir.join(name))?;
        self.backend.sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RealFs;

    #[test]
    fn round_trips_index_files_under_the_store_dir() {
        let tmp = tempfile::tempdir().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(RealFs);
        let io = IndexDir::create(Arc::clone(&backend), tmp.path()).unwrap();
        assert!(io.list().unwrap().is_empty());
        io.write_atomic("idx_a.json", b"{}").unwrap();
        io.write_atomic("idx_b.json", b"{}").unwrap();
        assert_eq!(io.list().unwrap().len(), 2);
        assert!(io.exists("idx_a.json"));
        assert_eq!(io.read("idx_a.json").unwrap(), b"{}");
        io.remove("idx_b.json").unwrap();
        assert_eq!(io.list().unwrap().len(), 1);
        // Index files are invisible to a listing of the store dir itself.
        assert!(backend.list_dir(tmp.path()).unwrap().is_empty());
    }

    #[test]
    fn create_sweeps_tmp_orphans() {
        let tmp = tempfile::tempdir().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(RealFs);
        let io = IndexDir::create(Arc::clone(&backend), tmp.path()).unwrap();
        io.write_atomic("idx_live.json", b"{}").unwrap();
        backend
            .write_file(&io.dir().join("idx_dead.json.tmp"), b"to")
            .unwrap();
        let io = IndexDir::create(backend, tmp.path()).unwrap();
        assert_eq!(io.list().unwrap(), vec!["idx_live.json".to_string()]);
    }

    #[test]
    fn readonly_open_of_missing_dir_lists_nothing() {
        let tmp = tempfile::tempdir().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(RealFs);
        let io = IndexDir::open_readonly(backend, &tmp.path().join("nope"));
        assert!(io.list().unwrap().is_empty());
        assert!(!io.exists("idx_a.json"));
    }
}
