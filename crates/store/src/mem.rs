//! The InMemoryStore: a byte-budgeted buffer pool of open Partitions with
//! LRU eviction (Fig 3; Alg. 4's `bufferpool.add` / eviction step).

use std::collections::HashMap;

use crate::lru::LruList;
use crate::partition::{Partition, PartitionId};

/// Buffer pool holding open partitions up to a byte budget; inserting past
/// the budget evicts least-recently-used partitions, which the caller must
/// then seal and persist.
#[derive(Debug)]
pub struct InMemoryStore {
    capacity_bytes: usize,
    used_bytes: usize,
    partitions: HashMap<PartitionId, Partition>,
    /// O(1) recency order: front = least recently used.
    lru: LruList<PartitionId>,
}

impl InMemoryStore {
    /// Create a pool with the given byte budget.
    pub fn new(capacity_bytes: usize) -> InMemoryStore {
        InMemoryStore {
            capacity_bytes,
            used_bytes: 0,
            partitions: HashMap::new(),
            lru: LruList::new(),
        }
    }

    /// Bytes currently buffered.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of resident partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when no partitions are resident.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Whether a partition is resident.
    pub fn contains(&self, id: PartitionId) -> bool {
        self.partitions.contains_key(&id)
    }

    fn touch(&mut self, id: PartitionId) {
        self.lru.touch(id);
    }

    /// Get a resident partition, marking it most-recently-used.
    pub fn get(&mut self, id: PartitionId) -> Option<&Partition> {
        if self.partitions.contains_key(&id) {
            self.touch(id);
        }
        self.partitions.get(&id)
    }

    /// Mutably get a resident partition; the caller reports the byte delta
    /// afterwards via [`InMemoryStore::grow`].
    pub fn get_mut(&mut self, id: PartitionId) -> Option<&mut Partition> {
        if self.partitions.contains_key(&id) {
            self.touch(id);
        }
        self.partitions.get_mut(&id)
    }

    /// Record that a resident partition grew by `delta` bytes and evict LRU
    /// partitions if the budget is now exceeded. Returns the evicted
    /// partitions (never the one just grown).
    pub fn grow(&mut self, id: PartitionId, delta: usize) -> Vec<Partition> {
        self.used_bytes += delta;
        self.evict_over_budget(Some(id))
    }

    /// Insert a partition, evicting others if needed. Returns evicted
    /// partitions (never the one just inserted).
    pub fn insert(&mut self, partition: Partition) -> Vec<Partition> {
        let id = partition.id();
        self.used_bytes += partition.raw_bytes();
        self.partitions.insert(id, partition);
        self.touch(id);
        self.evict_over_budget(Some(id))
    }

    /// Remove a partition (e.g. after explicitly sealing it).
    pub fn remove(&mut self, id: PartitionId) -> Option<Partition> {
        let p = self.partitions.remove(&id)?;
        self.used_bytes -= p.raw_bytes();
        self.lru.remove(&id);
        Some(p)
    }

    /// Drain every resident partition (flush at shutdown).
    pub fn drain(&mut self) -> Vec<Partition> {
        self.lru.clear();
        self.used_bytes = 0;
        self.partitions.drain().map(|(_, p)| p).collect()
    }

    fn evict_over_budget(&mut self, keep: Option<PartitionId>) -> Vec<Partition> {
        let mut evicted = Vec::new();
        while self.used_bytes > self.capacity_bytes {
            // Find the least-recently-used partition that is not `keep`.
            let victim = self.lru.peek_lru_excluding(keep.as_ref()).copied();
            match victim {
                Some(id) => {
                    if let Some(p) = self.remove(id) {
                        evicted.push(p);
                    }
                }
                None => break, // only `keep` is resident; let it exceed budget
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mistique_dedup::content_digest;

    fn partition_with_bytes(id: PartitionId, n: usize) -> Partition {
        let mut p = Partition::new(id);
        let bytes = vec![id as u8; n];
        p.add(content_digest(&bytes), bytes);
        p
    }

    #[test]
    fn insert_within_budget_no_eviction() {
        let mut pool = InMemoryStore::new(1000);
        assert!(pool.insert(partition_with_bytes(1, 400)).is_empty());
        assert!(pool.insert(partition_with_bytes(2, 400)).is_empty());
        assert_eq!(pool.used_bytes(), 800);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = InMemoryStore::new(1000);
        pool.insert(partition_with_bytes(1, 400));
        pool.insert(partition_with_bytes(2, 400));
        // Touch 1 so 2 becomes LRU.
        assert!(pool.get(1).is_some());
        let evicted = pool.insert(partition_with_bytes(3, 400));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id(), 2);
        assert!(pool.contains(1));
        assert!(pool.contains(3));
    }

    #[test]
    fn oversized_single_partition_stays_resident() {
        let mut pool = InMemoryStore::new(100);
        let evicted = pool.insert(partition_with_bytes(1, 500));
        // Nothing else to evict; the newly inserted partition must not be
        // evicted by its own insertion.
        assert!(evicted.is_empty());
        assert!(pool.contains(1));
    }

    #[test]
    fn grow_triggers_eviction() {
        let mut pool = InMemoryStore::new(1000);
        pool.insert(partition_with_bytes(1, 400));
        pool.insert(partition_with_bytes(2, 400));
        // Grow partition 2 past the budget; 1 is LRU and gets evicted.
        let bytes = vec![9u8; 300];
        let digest = content_digest(&bytes);
        pool.get_mut(2).unwrap().add(digest, bytes);
        let evicted = pool.grow(2, 300);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id(), 1);
    }

    #[test]
    fn remove_and_drain() {
        let mut pool = InMemoryStore::new(1000);
        pool.insert(partition_with_bytes(1, 100));
        pool.insert(partition_with_bytes(2, 100));
        let removed = pool.remove(1).unwrap();
        assert_eq!(removed.id(), 1);
        assert_eq!(pool.used_bytes(), 100);
        let drained = pool.drain();
        assert_eq!(drained.len(), 1);
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
    }
}
