//! The MISTIQUE DataStore (Sec 3, 4).
//!
//! The DataStore persists ColumnChunks grouped into **Partitions**. A chunk
//! arrives with a logical key (`intermediate / column / row-block`); the
//! store:
//!
//! 1. **Exact-dedups** it: if a chunk with identical bytes was stored before,
//!    only a reference is recorded (Sec 4.2 — identical columns across
//!    pipeline variants are the common case for TRAD models).
//! 2. **Places** it in a Partition. TRAD chunks are routed by MinHash/LSH
//!    similarity so near-identical chunks compress together; DNN chunks are
//!    co-located by intermediate (Sec 4.2.1's two DNN simplifications).
//! 3. Keeps the Partition in the [`mem::InMemoryStore`] buffer pool; full or
//!    evicted Partitions are compressed and written to the
//!    [`disk::DiskStore`] (Fig 3's write path).
//!
//! Reads go through the same facade: chunk key → digest → partition →
//! (memory | disk) → deserialized [`mistique_dataframe::ColumnChunk`].

pub mod audit_io;
pub mod backend;
pub mod datastore;
pub mod disk;
pub mod index_io;
pub mod lru;
pub mod mem;
pub mod partition;
pub mod telemetry_io;

pub use audit_io::{AuditDir, AUDIT_SUBDIR};
pub use backend::{FaultyFs, RealFs, StorageBackend, TornWrite};
pub use datastore::{
    CatalogExtra, ChunkKey, CompactionReport, DataStore, DataStoreConfig, DeltaRecord,
    LshItemRecord, PlacementPolicy, ReadAttribution, RecoveryReport, RetractOutcome, StoreStats,
};
pub use disk::DiskStore;
pub use index_io::{IndexDir, INDEX_SUBDIR};
pub use lru::{LruCache, LruList};
pub use mem::InMemoryStore;
pub use partition::{Partition, PartitionId};
pub use telemetry_io::{TelemetryDir, TELEMETRY_SUBDIR};

/// Errors surfaced by store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A compressed partition failed to decode.
    Codec(mistique_compress::CodecError),
    /// A serialized chunk failed to decode.
    Chunk(mistique_dataframe::ChunkError),
    /// The requested chunk key has never been stored.
    NotFound,
    /// Partition bytes did not parse.
    CorruptPartition(&'static str),
    /// The partition holding the chunk failed its integrity check at
    /// recovery and was set aside; other partitions remain readable.
    Quarantined {
        /// The quarantined partition.
        partition: crate::partition::PartitionId,
        /// Why recovery rejected it (e.g. "checksum mismatch").
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Chunk(e) => write!(f, "chunk decode error: {e}"),
            StoreError::NotFound => write!(f, "chunk not found"),
            StoreError::CorruptPartition(m) => write!(f, "corrupt partition: {m}"),
            StoreError::Quarantined { partition, reason } => {
                write!(
                    f,
                    "corrupt partition {partition:08x} quarantined at recovery: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<mistique_compress::CodecError> for StoreError {
    fn from(e: mistique_compress::CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<mistique_dataframe::ChunkError> for StoreError {
    fn from(e: mistique_dataframe::ChunkError) -> Self {
        StoreError::Chunk(e)
    }
}
