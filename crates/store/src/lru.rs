//! O(1) LRU primitives shared by the store's caches.
//!
//! [`LruList`] is a recency order over keys — a doubly-linked list threaded
//! through a slab, indexed by a `HashMap` — so `touch` / `remove` /
//! `pop_lru` are all O(1) amortized. It replaces the `Vec::position` +
//! `Vec::remove` scans the buffer pool and query cache used to do on every
//! access. [`LruCache`] combines the list with a value map and a byte
//! budget, evicting exactly one least-recently-used victim at a time —
//! never a clear-all.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// O(1) recency order over keys: front = least recently used, back = most
/// recently used.
#[derive(Debug)]
pub struct LruList<K> {
    map: HashMap<K, usize>,
    nodes: Vec<Option<Node<K>>>,
    free: Vec<usize>,
    /// LRU end.
    head: usize,
    /// MRU end.
    tail: usize,
}

impl<K: Hash + Eq + Clone> Default for LruList<K> {
    fn default() -> Self {
        LruList::new()
    }
}

impl<K: Hash + Eq + Clone> LruList<K> {
    /// Create an empty list.
    pub fn new() -> LruList<K> {
        LruList {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a key is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = {
            let n = self.nodes[idx].as_ref().expect("linked node");
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].as_mut().expect("prev node").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].as_mut().expect("next node").prev = prev,
        }
    }

    fn push_back(&mut self, idx: usize) {
        {
            let n = self.nodes[idx].as_mut().expect("node to link");
            n.prev = self.tail;
            n.next = NIL;
        }
        match self.tail {
            NIL => self.head = idx,
            t => self.nodes[t].as_mut().expect("tail node").next = idx,
        }
        self.tail = idx;
    }

    /// Mark a key most-recently-used, inserting it if absent.
    pub fn touch(&mut self, key: K) {
        if let Some(&idx) = self.map.get(&key) {
            if idx == self.tail {
                return; // already MRU
            }
            self.unlink(idx);
            self.push_back(idx);
            return;
        }
        let node = Node {
            key: key.clone(),
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Some(node);
                i
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_back(idx);
    }

    /// Stop tracking a key. Returns whether it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.nodes[idx] = None;
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Remove and return the least-recently-used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.head == NIL {
            return None;
        }
        let idx = self.head;
        self.unlink(idx);
        let node = self.nodes[idx].take().expect("head node");
        self.free.push(idx);
        self.map.remove(&node.key);
        Some(node.key)
    }

    /// The least-recently-used key that is not `keep` (the buffer pool must
    /// never evict the partition it is currently growing).
    pub fn peek_lru_excluding(&self, keep: Option<&K>) -> Option<&K> {
        let mut idx = self.head;
        while idx != NIL {
            let node = self.nodes[idx].as_ref().expect("linked node");
            if Some(&node.key) != keep {
                return Some(&node.key);
            }
            idx = node.next;
        }
        None
    }

    /// Forget every key.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A byte-budgeted LRU cache. Inserting past the budget evicts one
/// least-recently-used victim at a time; an entry larger than the whole
/// budget is rejected rather than flushing everything else out.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (V, usize)>,
    order: LruList<K>,
    capacity_bytes: usize,
    used_bytes: usize,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Create a cache with a byte budget.
    pub fn new(capacity_bytes: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            order: LruList::new(),
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether a key is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Get an entry, marking it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.map.contains_key(key) {
            self.order.touch(key.clone());
        }
        self.map.get(key).map(|(v, _)| v)
    }

    /// Get an entry without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(v, _)| v)
    }

    /// Insert an entry accounted at `bytes`, evicting LRU victims one at a
    /// time until it fits. Returns the evicted entries. Entries larger than
    /// the whole budget are not cached (and evict nothing).
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        if bytes > self.capacity_bytes {
            // Would displace the entire cache for one entry; skip it.
            self.remove(&key);
            return Vec::new();
        }
        if let Some((_, old_bytes)) = self.map.remove(&key) {
            self.used_bytes -= old_bytes;
            self.order.remove(&key);
        }
        let mut evicted = Vec::new();
        while self.used_bytes + bytes > self.capacity_bytes {
            match self.order.pop_lru() {
                Some(victim) => {
                    if let Some((v, b)) = self.map.remove(&victim) {
                        self.used_bytes -= b;
                        evicted.push((victim, v));
                    }
                }
                None => break,
            }
        }
        self.used_bytes += bytes;
        self.map.insert(key.clone(), (value, bytes));
        self.order.touch(key);
        evicted
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (v, bytes) = self.map.remove(key)?;
        self.used_bytes -= bytes;
        self.order.remove(key);
        Some(v)
    }

    /// Drop every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.used_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_orders_by_recency() {
        let mut l = LruList::new();
        l.touch(1);
        l.touch(2);
        l.touch(3);
        l.touch(1); // 1 becomes MRU; order is now 2, 3, 1
        assert_eq!(l.pop_lru(), Some(2));
        assert_eq!(l.pop_lru(), Some(3));
        assert_eq!(l.pop_lru(), Some(1));
        assert_eq!(l.pop_lru(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn list_remove_and_reuse_slots() {
        let mut l = LruList::new();
        for i in 0..10 {
            l.touch(i);
        }
        assert!(l.remove(&5));
        assert!(!l.remove(&5));
        assert_eq!(l.len(), 9);
        // Freed slot is reused without disturbing order.
        l.touch(99);
        assert_eq!(l.pop_lru(), Some(0));
        assert!(l.contains(&99));
    }

    #[test]
    fn list_peek_excluding_skips_keep() {
        let mut l = LruList::new();
        l.touch("a".to_string());
        l.touch("b".to_string());
        assert_eq!(
            l.peek_lru_excluding(Some(&"a".to_string())),
            Some(&"b".to_string())
        );
        assert_eq!(l.peek_lru_excluding(None), Some(&"a".to_string()));
        l.remove(&"b".to_string());
        assert_eq!(l.peek_lru_excluding(Some(&"a".to_string())), None);
    }

    #[test]
    fn cache_evicts_one_victim_at_a_time() {
        let mut c: LruCache<u32, Vec<u8>> = LruCache::new(1000);
        assert!(c.insert(1, vec![0; 400], 400).is_empty());
        assert!(c.insert(2, vec![0; 400], 400).is_empty());
        // Touch 1 so 2 is the LRU victim.
        assert!(c.get(&1).is_some());
        let evicted = c.insert(3, vec![0; 400], 400);
        assert_eq!(evicted.len(), 1, "exactly one victim");
        assert_eq!(evicted[0].0, 2);
        assert!(c.contains(&1) && c.contains(&3));
        assert_eq!(c.used_bytes(), 800);
    }

    #[test]
    fn cache_rejects_oversized_entries() {
        let mut c: LruCache<u32, ()> = LruCache::new(100);
        c.insert(1, (), 60);
        let evicted = c.insert(2, (), 500);
        assert!(evicted.is_empty());
        assert!(!c.contains(&2));
        assert!(c.contains(&1), "existing entries survive");
        assert_eq!(c.used_bytes(), 60);
    }

    #[test]
    fn cache_replacing_entry_adjusts_bytes() {
        let mut c: LruCache<u32, ()> = LruCache::new(100);
        c.insert(1, (), 80);
        c.insert(1, (), 30);
        assert_eq!(c.used_bytes(), 30);
        assert_eq!(c.len(), 1);
        assert!(c.remove(&1).is_some());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn cache_clear_resets() {
        let mut c: LruCache<u32, ()> = LruCache::new(100);
        c.insert(1, (), 10);
        c.insert(2, (), 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert!(c.get(&1).is_none());
    }
}
