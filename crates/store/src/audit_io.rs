//! Storage-backend adapter for the workload audit journal's segment ring.
//!
//! The audit journal (see `mistique_obs::AuditLog`) persists its segments
//! through this adapter so every byte goes through the same
//! [`StorageBackend`] — and therefore the same fault-injection harness — as
//! partition data. Segments live in their own `audit/` subdirectory under
//! the store directory; `list_dir` only reports direct-children files, so
//! the data store's sweep, quarantine, and budget accounting never see
//! them, and the flight recorder's `telemetry/` ring never mixes with them.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mistique_obs::SegmentIo;

use crate::backend::StorageBackend;

/// Subdirectory of the store directory that holds audit segments.
pub const AUDIT_SUBDIR: &str = "audit";

/// [`SegmentIo`] over a [`StorageBackend`], rooted at `<store dir>/audit/`.
#[derive(Debug, Clone)]
pub struct AuditDir {
    backend: Arc<dyn StorageBackend>,
    dir: PathBuf,
}

impl AuditDir {
    /// Create the adapter (and the `audit/` subdirectory) under `store_dir`.
    pub fn create(backend: Arc<dyn StorageBackend>, store_dir: &Path) -> io::Result<AuditDir> {
        let dir = store_dir.join(AUDIT_SUBDIR);
        backend.create_dir_all(&dir)?;
        Ok(AuditDir { backend, dir })
    }

    /// The adapter without creating the directory — for read-only loads of
    /// a journal that may not exist ([`SegmentIo::list`] of a missing
    /// directory reports no segments).
    pub fn open_readonly(backend: Arc<dyn StorageBackend>, store_dir: &Path) -> AuditDir {
        AuditDir {
            backend,
            dir: store_dir.join(AUDIT_SUBDIR),
        }
    }

    /// The directory segments are stored in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl SegmentIo for AuditDir {
    fn list(&self) -> io::Result<Vec<String>> {
        if !self.backend.exists(&self.dir) {
            return Ok(Vec::new());
        }
        Ok(self
            .backend
            .list_dir(&self.dir)?
            .into_iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.backend.read_file(&self.dir.join(name))
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.backend.write_atomic(&self.dir.join(name), bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.backend.remove_file(&self.dir.join(name))?;
        self.backend.sync_dir(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RealFs;

    #[test]
    fn round_trips_segments_under_the_store_dir() {
        let tmp = tempfile::tempdir().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(RealFs);
        let io = AuditDir::create(Arc::clone(&backend), tmp.path()).unwrap();
        assert!(io.list().unwrap().is_empty());
        io.write_atomic("au_0000000000000000.jsonl", b"{}\n")
            .unwrap();
        assert_eq!(io.list().unwrap().len(), 1);
        assert_eq!(io.read("au_0000000000000000.jsonl").unwrap(), b"{}\n");
        io.remove("au_0000000000000000.jsonl").unwrap();
        assert!(io.list().unwrap().is_empty());
        // Segments are invisible to a listing of the store dir itself.
        assert!(backend.list_dir(tmp.path()).unwrap().is_empty());
    }

    #[test]
    fn readonly_open_of_missing_dir_lists_nothing() {
        let tmp = tempfile::tempdir().unwrap();
        let backend: Arc<dyn StorageBackend> = Arc::new(RealFs);
        let io = AuditDir::open_readonly(backend, &tmp.path().join("nope"));
        assert!(io.list().unwrap().is_empty());
    }
}
