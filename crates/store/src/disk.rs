//! On-disk partition storage: one file per sealed Partition.
//!
//! All mutations go through the [`StorageBackend`] with the atomic
//! tmp+fsync+rename+dirsync discipline, so a partition file is either absent
//! or complete — a crash can orphan a `*.tmp` file but never tear a
//! `part_*.bin`. The [`DiskStore::sweep`] recovery pass removes orphans and
//! quarantines any partition whose integrity trailer fails (bitrot, or torn
//! writes from a pre-atomic store).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::{RealFs, StorageBackend};
use crate::partition::{Partition, PartitionId};
use crate::StoreError;

/// Suffix appended to a quarantined partition file.
const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Persistent store writing sealed partitions to a directory.
///
/// Reads take `&self` (byte accounting is atomic) so concurrent partition
/// fetches can run from scoped threads without locking the whole store.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    backend: Arc<dyn StorageBackend>,
    bytes_written: u64,
    bytes_read: AtomicU64,
}

/// What a [`DiskStore::sweep`] recovery pass found in the directory.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Partitions whose integrity trailer verified.
    pub ok: Vec<PartitionId>,
    /// Partitions that failed verification, with the reason; their files
    /// were renamed aside with a `.quarantined` suffix.
    pub quarantined: Vec<(PartitionId, String)>,
    /// Orphaned `*.tmp` files removed.
    pub orphans_removed: u64,
}

impl DiskStore {
    /// Open (creating if needed) a disk store rooted at `dir` on the real
    /// filesystem.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskStore, StoreError> {
        Self::open_with_backend(dir, Arc::new(RealFs))
    }

    /// Open a disk store over an explicit [`StorageBackend`].
    pub fn open_with_backend(
        dir: impl AsRef<Path>,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<DiskStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        backend.create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            backend,
            bytes_written: 0,
            bytes_read: AtomicU64::new(0),
        })
    }

    /// The backend this store writes through.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    fn path_of(&self, id: PartitionId) -> PathBuf {
        self.dir.join(format!("part_{id:08x}.bin"))
    }

    /// Parse a partition id out of a `part_XXXXXXXX.bin` file name.
    fn partition_id_of(name: &str) -> Option<PartitionId> {
        let hex = name.strip_prefix("part_")?.strip_suffix(".bin")?;
        PartitionId::from_str_radix(hex, 16).ok()
    }

    /// Write a sealed partition (overwrites any previous version). The write
    /// is atomic and durable: tmp file + fsync + rename + directory fsync.
    pub fn write(&mut self, id: PartitionId, sealed: &[u8]) -> Result<(), StoreError> {
        self.backend.write_atomic(&self.path_of(id), sealed)?;
        self.bytes_written += sealed.len() as u64;
        Ok(())
    }

    /// Read a sealed partition's bytes. Safe to call from several threads at
    /// once (partition files are immutable once sealed, modulo overwrite).
    pub fn read(&self, id: PartitionId) -> Result<Vec<u8>, StoreError> {
        let buf = self.backend.read_file(&self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound
            } else {
                StoreError::Io(e)
            }
        })?;
        self.bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Whether a partition file exists.
    pub fn contains(&self, id: PartitionId) -> bool {
        self.backend.exists(&self.path_of(id))
    }

    /// Remove a partition file (compaction of a fully-dead partition). The
    /// removal is made durable with a directory fsync; removing a partition
    /// that does not exist is not an error (idempotent, like the sweep).
    pub fn remove(&mut self, id: PartitionId) -> Result<(), StoreError> {
        let path = self.path_of(id);
        if !self.backend.exists(&path) {
            return Ok(());
        }
        self.backend.remove_file(&path)?;
        self.backend.sync_dir(&self.dir)?;
        Ok(())
    }

    /// Recovery sweep over the directory: remove orphaned `*.tmp` files left
    /// by a crash mid-write, verify every `part_*.bin` integrity trailer,
    /// and rename failing partitions aside (`.quarantined`) so one bad file
    /// cannot poison the rest of the store. Other files (e.g. the manifest)
    /// are ignored.
    pub fn sweep(&mut self) -> Result<SweepOutcome, StoreError> {
        let mut out = SweepOutcome::default();
        for path in self.backend.list_dir(&self.dir)? {
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                self.backend.remove_file(&path)?;
                out.orphans_removed += 1;
            } else if let Some(id) = Self::partition_id_of(&name) {
                let bytes = self.backend.read_file(&path)?;
                match Partition::verify_checksum(&bytes) {
                    Ok(()) => out.ok.push(id),
                    Err(e) => {
                        let mut quarantine = path.as_os_str().to_os_string();
                        quarantine.push(QUARANTINE_SUFFIX);
                        self.backend.rename(&path, &PathBuf::from(quarantine))?;
                        self.backend.sync_dir(&self.dir)?;
                        out.quarantined.push((id, e.to_string()));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Total compressed bytes currently on disk.
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for path in self.backend.list_dir(&self.dir)? {
            total += self.backend.file_len(&path)?;
        }
        Ok(total)
    }

    /// Cumulative bytes written (I/O volume, for the logging-overhead
    /// experiment of Fig 11).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative bytes read from disk.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{FaultyFs, TornWrite};

    #[test]
    fn write_read_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DiskStore::open(dir.path()).unwrap();
        store.write(3, b"sealed bytes").unwrap();
        assert!(store.contains(3));
        assert_eq!(store.read(3).unwrap(), b"sealed bytes");
        assert_eq!(store.bytes_written(), 12);
        assert_eq!(store.bytes_read(), 12);
    }

    #[test]
    fn missing_partition_is_not_found() {
        let dir = tempfile::tempdir().unwrap();
        let store = DiskStore::open(dir.path()).unwrap();
        assert!(!store.contains(9));
        assert!(matches!(store.read(9), Err(StoreError::NotFound)));
    }

    #[test]
    fn disk_bytes_sums_files() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DiskStore::open(dir.path()).unwrap();
        store.write(1, &[0u8; 100]).unwrap();
        store.write(2, &[0u8; 50]).unwrap();
        assert_eq!(store.disk_bytes().unwrap(), 150);
        // Overwrite shrinks the file.
        store.write(1, &[0u8; 10]).unwrap();
        assert_eq!(store.disk_bytes().unwrap(), 60);
    }

    #[test]
    fn remove_deletes_file_and_is_idempotent() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DiskStore::open(dir.path()).unwrap();
        store.write(4, &[1u8; 32]).unwrap();
        assert!(store.contains(4));
        store.remove(4).unwrap();
        assert!(!store.contains(4));
        assert!(matches!(store.read(4), Err(StoreError::NotFound)));
        store.remove(4).unwrap(); // second removal is a no-op
        assert_eq!(store.disk_bytes().unwrap(), 0);
    }

    #[test]
    fn crash_mid_write_never_tears_a_partition() {
        // Enumerate a crash at every syscall of a two-partition write run:
        // afterwards each partition file is either absent or byte-complete.
        let (open_ops, total) = {
            let fs = FaultyFs::new();
            let mut store = DiskStore::open_with_backend("/vfs", Arc::new(fs.clone())).unwrap();
            let open_ops = fs.op_count();
            store.write(1, &[0xa5; 64]).unwrap();
            store.write(2, &[0x5a; 48]).unwrap();
            (open_ops, fs.op_count())
        };
        for k in (open_ops + 1)..=total {
            for policy in [TornWrite::DropAll, TornWrite::TornHalf, TornWrite::KeepAll] {
                let fs = FaultyFs::new();
                let mut store = DiskStore::open_with_backend("/vfs", Arc::new(fs.clone())).unwrap();
                fs.crash_after(k);
                let r = store
                    .write(1, &[0xa5; 64])
                    .and_then(|_| store.write(2, &[0x5a; 48]));
                assert!(r.is_err(), "crash at op {k} must surface");
                fs.power_cut(policy);
                let store = DiskStore::open_with_backend("/vfs", Arc::new(fs.clone())).unwrap();
                for (id, byte, len) in [(1u64, 0xa5u8, 64usize), (2, 0x5a, 48)] {
                    match store.read(id) {
                        Ok(bytes) => {
                            assert_eq!(bytes, vec![byte; len], "crash at {k} ({policy:?})")
                        }
                        Err(StoreError::NotFound) => {}
                        Err(e) => panic!("crash at {k} ({policy:?}): unexpected {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn sweep_removes_orphans_and_quarantines_torn_partitions() {
        let fs = FaultyFs::new();
        let backend: Arc<dyn StorageBackend> = Arc::new(fs.clone());
        let mut store = DiskStore::open_with_backend("/vfs", Arc::clone(&backend)).unwrap();
        // A good partition: sealed bytes carry a valid trailer.
        let mut part = Partition::new(7);
        part.add(mistique_dedup::content_digest(b"x"), b"x".to_vec());
        store.write(7, &part.seal()).unwrap();
        // A torn partition written behind the store's back, and an orphan.
        backend
            .write_file(&PathBuf::from("/vfs/part_00000009.bin"), b"torn")
            .unwrap();
        backend
            .write_file(&PathBuf::from("/vfs/part_00000003.bin.tmp"), b"junk")
            .unwrap();

        let outcome = store.sweep().unwrap();
        assert_eq!(outcome.ok, vec![7]);
        assert_eq!(outcome.orphans_removed, 1);
        assert_eq!(outcome.quarantined.len(), 1);
        assert_eq!(outcome.quarantined[0].0, 9);
        // The torn file was set aside, not deleted; the good one still reads.
        assert!(!store.contains(9));
        assert!(backend.exists(&PathBuf::from("/vfs/part_00000009.bin.quarantined")));
        assert!(store.read(7).is_ok());
        // A second sweep finds a clean directory.
        let again = store.sweep().unwrap();
        assert_eq!(again.ok, vec![7]);
        assert_eq!(again.orphans_removed, 0);
        assert!(again.quarantined.is_empty());
    }
}
