//! On-disk partition storage: one file per sealed Partition.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::partition::PartitionId;
use crate::StoreError;

/// Persistent store writing sealed partitions to a directory.
///
/// Reads take `&self` (byte accounting is atomic) so concurrent partition
/// fetches can run from scoped threads without locking the whole store.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    bytes_written: u64,
    bytes_read: AtomicU64,
}

impl DiskStore {
    /// Open (creating if needed) a disk store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DiskStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            bytes_written: 0,
            bytes_read: AtomicU64::new(0),
        })
    }

    fn path_of(&self, id: PartitionId) -> PathBuf {
        self.dir.join(format!("part_{id:08x}.bin"))
    }

    /// Write a sealed partition (overwrites any previous version).
    pub fn write(&mut self, id: PartitionId, sealed: &[u8]) -> Result<(), StoreError> {
        let mut f = fs::File::create(self.path_of(id))?;
        f.write_all(sealed)?;
        self.bytes_written += sealed.len() as u64;
        Ok(())
    }

    /// Read a sealed partition's bytes. Safe to call from several threads at
    /// once (partition files are immutable once sealed, modulo overwrite).
    pub fn read(&self, id: PartitionId) -> Result<Vec<u8>, StoreError> {
        let mut f = fs::File::open(self.path_of(id)).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound
            } else {
                StoreError::Io(e)
            }
        })?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        self.bytes_read
            .fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Whether a partition file exists.
    pub fn contains(&self, id: PartitionId) -> bool {
        self.path_of(id).exists()
    }

    /// Total compressed bytes currently on disk.
    pub fn disk_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0;
        for entry in fs::read_dir(&self.dir)? {
            total += entry?.metadata()?.len();
        }
        Ok(total)
    }

    /// Cumulative bytes written (I/O volume, for the logging-overhead
    /// experiment of Fig 11).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Cumulative bytes read from disk.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DiskStore::open(dir.path()).unwrap();
        store.write(3, b"sealed bytes").unwrap();
        assert!(store.contains(3));
        assert_eq!(store.read(3).unwrap(), b"sealed bytes");
        assert_eq!(store.bytes_written(), 12);
        assert_eq!(store.bytes_read(), 12);
    }

    #[test]
    fn missing_partition_is_not_found() {
        let dir = tempfile::tempdir().unwrap();
        let store = DiskStore::open(dir.path()).unwrap();
        assert!(!store.contains(9));
        assert!(matches!(store.read(9), Err(StoreError::NotFound)));
    }

    #[test]
    fn disk_bytes_sums_files() {
        let dir = tempfile::tempdir().unwrap();
        let mut store = DiskStore::open(dir.path()).unwrap();
        store.write(1, &[0u8; 100]).unwrap();
        store.write(2, &[0u8; 50]).unwrap();
        assert_eq!(store.disk_bytes().unwrap(), 150);
        // Overwrite shrinks the file.
        store.write(1, &[0u8; 10]).unwrap();
        assert_eq!(store.disk_bytes().unwrap(), 60);
    }
}
